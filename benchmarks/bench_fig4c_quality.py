"""Figure 4c: coverage quality of all competitors on YC (Independent).

Sweeps k over {0.1n, ..., 0.9n} and reports the cover achieved by
Greedy, TopK-W, TopK-C and Random (best of 10), reproducing the paper's
ordering: Greedy on top, the TopK heuristics trailing, Random far
behind.  Row computation lives in ``repro.experiments``.
"""

import pytest

from _reporting import register_report
from repro.adaptation import build_preference_graph
from repro.core.greedy import greedy_solve
from repro.evaluation.ascii_plot import figure_4c_plot
from repro.evaluation.metrics import format_table
from repro.experiments import fig4c_rows
from repro.workloads.datasets import build_dataset

FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def yc_graph():
    clickstream, _model = build_dataset("YC", scale=0.05, seed=40)
    return build_preference_graph(clickstream, "independent").to_csr()


def test_fig4c_coverage_quality(benchmark, yc_graph):
    n = yc_graph.n_items
    benchmark.pedantic(
        lambda: greedy_solve(yc_graph, k=n // 2, variant="independent"),
        rounds=5, iterations=1,
    )

    rows = fig4c_rows(yc_graph, fractions=FRACTIONS, random_seed=41)
    text = format_table(
        rows,
        title=(
            f"Figure 4c: coverage quality of all competitors "
            f"(YC stand-in, n={n}, Independent)"
        ),
    ) + "\n\n" + figure_4c_plot(rows)
    register_report("Figure 4c", text, filename="fig4c_quality.txt")

    for row in rows:
        # The paper's ordering: greedy dominates every baseline.
        assert row["Greedy"] >= row["TopK-W"] - 1e-9
        assert row["Greedy"] >= row["TopK-C"] - 1e-9
        assert row["Greedy"] >= row["Random"] - 1e-9
    # Random lags substantially at small k.
    assert rows[0]["Greedy"] > rows[0]["Random"] * 1.5
