"""Table 2: the evaluation datasets (PE / PF / PM / YC).

The paper's Table 2 lists sessions, purchases, items and edges per
dataset.  The private datasets are simulated (DESIGN.md, substitution 1)
at a configurable scale; this bench generates each stand-in, runs it
through the Data Adaptation Engine, and prints the published statistics
next to the generated ones, with the per-item ratios that the stand-ins
are tuned to preserve.
"""

import pytest

from _reporting import register_report
from repro.evaluation.metrics import format_table
from repro.workloads.datasets import PAPER_DATASETS, build_dataset, dataset_table

SCALE = 0.001


def test_table2_dataset_statistics(benchmark):
    """Generate all four dataset stand-ins and tabulate Table 2."""
    # Benchmark one dataset build (clickstream generation + stats).
    benchmark.pedantic(
        lambda: build_dataset("YC", scale=SCALE, seed=0),
        rounds=3, iterations=1,
    )

    rows = dataset_table(scale=SCALE, seed=0)
    display = []
    for row in rows:
        spec = PAPER_DATASETS[row["dataset"]]
        display.append(
            {
                "DS": row["dataset"],
                "variant": row["variant"],
                "paper_sessions": f"{row['paper_sessions']:,}",
                "paper_items": f"{row['paper_items']:,}",
                "paper_edges": f"{row['paper_edges']:,}",
                "gen_sessions": f"{row['generated_sessions']:,}",
                "gen_items": f"{row['generated_items']:,}",
                "gen_edges": f"{row['generated_edges']:,}",
                "paper_edges/item": row["paper_edges"] / row["paper_items"],
                "gen_edges/item": (
                    row["generated_edges"] / row["generated_items"]
                ),
            }
        )
    text = format_table(
        display,
        title=(
            f"Table 2: datasets (paper full scale vs synthetic stand-ins "
            f"at scale={SCALE})"
        ),
        float_format="{:.2f}",
    )
    register_report("Table 2", text, filename="table2_datasets.txt")

    for row in rows:
        # Stand-ins must preserve the order-of-magnitude shape: a few
        # edges per item, sessions >> items.
        paper_ratio = row["paper_edges"] / row["paper_items"]
        gen_ratio = row["generated_edges"] / row["generated_items"]
        assert gen_ratio == pytest.approx(paper_ratio, rel=0.8)
        assert row["generated_sessions"] > row["generated_items"]
