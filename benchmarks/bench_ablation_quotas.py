"""Ablation: the price of department coverage (category quotas).

Compares the unconstrained greedy with the partition-matroid greedy at
equal assortment size across progressively tighter per-category quotas.
The cover lost to the constraint is the "price" merchandising pays for
guaranteed department representation.
"""


from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.extensions.quotas import category_counts, quota_greedy_solve
from repro.workloads.graphs import random_preference_graph

N_ITEMS = 2_000
N_CATEGORIES = 10
K = 100


def test_ablation_category_quotas(benchmark):
    graph = random_preference_graph(N_ITEMS, seed=120)
    categories = {
        item: f"dept{i % N_CATEGORIES}"
        for i, item in enumerate(graph.items)
    }
    free = greedy_solve(graph, k=K, variant="independent")

    def run_tightest():
        quotas = {f"dept{i}": K // N_CATEGORIES
                  for i in range(N_CATEGORIES)}
        return quota_greedy_solve(
            graph, variant="independent", categories=categories,
            quotas=quotas, k=K
        )

    benchmark.pedantic(run_tightest, rounds=3, iterations=1)

    rows = [
        {
            "per_dept_quota": "unbounded",
            "cover": free.cover,
            "max_dept_share": max(
                category_counts(free, categories).values()
            ),
            "price": 0.0,
        }
    ]
    for quota in (K // 2, K // 4, K // N_CATEGORIES):
        quotas = {f"dept{i}": quota for i in range(N_CATEGORIES)}
        result = quota_greedy_solve(
            graph, variant="independent", categories=categories,
            quotas=quotas, k=K
        )
        rows.append(
            {
                "per_dept_quota": quota,
                "cover": result.cover,
                "max_dept_share": max(
                    category_counts(result, categories).values()
                ),
                "price": free.cover - result.cover,
            }
        )

    text = format_table(
        rows,
        title=(
            f"Ablation: price of department coverage "
            f"(n={N_ITEMS}, k={K}, {N_CATEGORIES} departments)"
        ),
    )
    register_report(
        "Ablation: category quotas", text, filename="ablation_quotas.txt"
    )

    # Tighter quotas never help, and the constraint is actually enforced.
    covers = [row["cover"] for row in rows]
    assert covers == sorted(covers, reverse=True)
    assert rows[-1]["max_dept_share"] <= K // N_CATEGORIES
    # On substitution-rich graphs the price stays small.
    assert rows[-1]["price"] < 0.1
