"""Benchmark-harness configuration.

Prints every table registered through ``_reporting.register_report`` in
the terminal summary, so the reproduced paper figures appear in the
output of ``pytest benchmarks/ --benchmark-only``.

``--bench-full`` escalates the scalability experiments to the paper's
full sizes (n up to 1M); without it they run at container-friendly
scale.

Benchmarks that accept the session-scoped ``bench_metrics`` registry
contribute solver counters/timers to it; the harness prints the merged
table after the run and writes it to ``benchmarks/results/metrics.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _reporting import RESULTS_DIR, drain_reports  # noqa: E402

from repro.observability import MetricsRegistry  # noqa: E402

_BENCH_METRICS = MetricsRegistry()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-full",
        action="store_true",
        default=False,
        help="run scalability benchmarks at the paper's full sizes",
    )


@pytest.fixture(scope="session")
def bench_full(request) -> bool:
    """Whether the full-scale benchmark sizes were requested."""
    return request.config.getoption("--bench-full")


@pytest.fixture(scope="session")
def bench_metrics() -> MetricsRegistry:
    """Session-wide registry benchmarks dump solver metrics into."""
    return _BENCH_METRICS


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = drain_reports()
    if reports:
        terminalreporter.write_sep(
            "=", "reproduced paper tables and figures"
        )
        for title, table_text in reports:
            terminalreporter.write_line("")
            terminalreporter.write_line(table_text)
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "(tables also written to benchmarks/results/)"
        )
    if _BENCH_METRICS:
        import json

        RESULTS_DIR.mkdir(exist_ok=True)
        metrics_path = RESULTS_DIR / "metrics.json"
        # The canonical snapshot() schema — same dump the Prometheus
        # exposition renders, so offline results and live scrapes agree.
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(_BENCH_METRICS.snapshot(), handle, indent=2)
            handle.write("\n")
        terminalreporter.write_sep("=", "solver metrics")
        terminalreporter.write_line(_BENCH_METRICS.summary())
        terminalreporter.write_line(f"(written to {metrics_path})")
