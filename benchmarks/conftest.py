"""Benchmark-harness configuration.

Prints every table registered through ``_reporting.register_report`` in
the terminal summary, so the reproduced paper figures appear in the
output of ``pytest benchmarks/ --benchmark-only``.

``--bench-full`` escalates the scalability experiments to the paper's
full sizes (n up to 1M); without it they run at container-friendly
scale.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _reporting import drain_reports  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--bench-full",
        action="store_true",
        default=False,
        help="run scalability benchmarks at the paper's full sizes",
    )


@pytest.fixture(scope="session")
def bench_full(request) -> bool:
    """Whether the full-scale benchmark sizes were requested."""
    return request.config.getoption("--bench-full")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "reproduced paper tables and figures")
    for title, table_text in reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(table_text)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "(tables also written to benchmarks/results/)"
    )
