"""Ablation: LP + pipage rounding vs the greedy (the paper's trade-off).

Section 3.2 argues the LP/SDP algorithms with better worst-case factors
"are not scalable... even for medium sized programs" and picks the
greedy.  This bench measures that trade-off directly: solution quality
is comparable on NPC instances, while the LP's runtime explodes with
instance size (the LP has ``n + m`` variables and ``m`` constraints and
the pipage pass re-evaluates a quadratic objective per step).
"""

import time


from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.reductions.lp_rounding import lp_round_solve
from repro.workloads.graphs import random_preference_graph

SIZES = (50, 150, 400, 1000)


def test_ablation_lp_vs_greedy(benchmark):
    small = random_preference_graph(SIZES[0], variant="normalized", seed=130)
    benchmark.pedantic(
        lambda: lp_round_solve(small, k=SIZES[0] // 5),
        rounds=3, iterations=1,
    )

    rows = []
    for n in SIZES:
        graph = random_preference_graph(n, variant="normalized", seed=130)
        k = n // 5

        start = time.perf_counter()
        greedy = greedy_solve(graph, k=k, variant="normalized")
        greedy_time = time.perf_counter() - start

        start = time.perf_counter()
        lp = lp_round_solve(graph, k=k)
        lp_time = time.perf_counter() - start

        rows.append(
            {
                "n": n,
                "k": k,
                "greedy_cover": greedy.cover,
                "lp_cover": lp.cover,
                "greedy_s": greedy_time,
                "lp_s": lp_time,
                "lp/greedy_time": lp_time / max(greedy_time, 1e-9),
            }
        )

    text = format_table(
        rows,
        title=(
            "Ablation: LP+pipage (0.75 guarantee) vs greedy — quality "
            "comparable, runtime diverges (the paper's scalability "
            "argument, measured)"
        ),
        float_format="{:.4f}",
    )
    register_report(
        "Ablation: LP vs greedy", text, filename="ablation_lp_vs_greedy.txt"
    )

    for row in rows:
        # Quality: both land in the same band.
        assert row["lp_cover"] >= 0.75 * row["greedy_cover"] - 1e-9
        assert row["greedy_cover"] >= 0.8 * row["lp_cover"] - 1e-9
    # Scalability: the LP's relative cost grows with n.
    ratios = [row["lp/greedy_time"] for row in rows]
    assert ratios[-1] > ratios[0]
    assert rows[-1]["lp_s"] > rows[-1]["greedy_s"] * 10
