"""Figure 4a: coverage of Greedy vs the brute-force optimum.

The paper compares Greedy against BF on a 30-product subset of YC
(Normalized variant) and finds the greedy cover "very close to optimal".
Full n=30 enumeration is infeasible for mid-range k (the paper makes the
same point: C(30, 15) = 155M subsets), so the measured sweep runs on a
16-item YC-style subset where the optimum is computable for every k; a
second test extends the optimality comparison to n=200 through the
exact MILP oracle.  Row computation lives in ``repro.experiments``.
"""


from _reporting import register_report
from repro.evaluation.metrics import format_table
from repro.experiments import fig4a_milp_rows, fig4a_rows
from repro.workloads.graphs import random_preference_graph

N_ITEMS = 16
K_VALUES = (2, 4, 6, 8, 10)


def test_fig4a_greedy_vs_bruteforce_coverage(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4a_rows(n_items=N_ITEMS, k_values=K_VALUES),
        rounds=1, iterations=1,
    )
    text = format_table(
        rows,
        title=(
            f"Figure 4a: Greedy vs BF coverage, YC-style subset "
            f"(n={N_ITEMS}, Normalized)"
        ),
    )
    register_report("Figure 4a", text, filename="fig4a_greedy_vs_bf.txt")

    # The figure's takeaway: greedy within a whisker of optimal.
    assert all(row["ratio"] >= 0.97 for row in rows)
    # And coverage grows with k.
    covers = [row["greedy_cover"] for row in rows]
    assert covers == sorted(covers)


def test_fig4a_milp_oracle_at_scale(benchmark):
    """Figure 4a strengthened: exact optima via MILP far beyond n=30."""
    from repro.reductions.exact_milp import milp_solve_npc

    graph = random_preference_graph(200, variant="normalized", seed=22)
    benchmark.pedantic(
        lambda: milp_solve_npc(graph, k=40), rounds=3, iterations=1
    )

    rows = fig4a_milp_rows(n_items=200, seed=22)
    text = format_table(
        rows,
        title=(
            "Figure 4a (extended): Greedy vs exact MILP optimum "
            "(n=200, Normalized)"
        ),
    )
    register_report(
        "Figure 4a (MILP oracle)", text, filename="fig4a_milp_oracle.txt"
    )
    assert all(row["ratio"] >= 0.97 for row in rows)
