"""Table 1: greedy vs best-known approximation ratios for VC_k / NPC_k.

Regenerates the paper's Table 1 from the formulas in
``repro.reductions.bounds`` and augments it with what the paper only
claims in prose: the greedy's *measured* ratio against the brute-force
optimum across the k/n spectrum, which lands far above the worst-case
bound.  Row computation lives in ``repro.experiments``.
"""


from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.experiments import table1_measured_rows
from repro.reductions.bounds import table1_rows
from repro.workloads.graphs import small_dense_graph

N_SMALL = 12
SEEDS = (0, 1, 2)


def test_table1_bounds_and_empirical_ratios(benchmark):
    """Reproduce Table 1 and measure actual greedy quality per k/n."""
    graph = small_dense_graph(N_SMALL, variant="normalized", seed=0)
    benchmark.pedantic(
        lambda: greedy_solve(graph, k=N_SMALL // 2, variant="normalized"),
        rounds=10, iterations=1,
    )

    rows = table1_measured_rows(n=N_SMALL, seeds=SEEDS)
    for row in rows:
        # The measured ratio must respect the worst-case bound.
        assert row["greedy_measured"] >= row["greedy_bound"] - 1e-9

    static = [
        {
            "k/n range": row.k_over_n,
            "greedy bound": row.greedy_bound,
            "best known": row.best_known,
            "method": row.method,
        }
        for row in table1_rows()
    ]
    text = (
        format_table(static, title="Table 1 (paper): approximation ratios "
                                   "for VC_k by k/n range")
        + "\n\n"
        + format_table(
            rows,
            title=(
                f"Table 1 (measured): greedy vs brute-force optimum, "
                f"n={N_SMALL}, worst over {len(SEEDS)} NPC instances"
            ),
        )
    )
    register_report("Table 1", text, filename="table1_ratios.txt")

    # The paper's observation: in practice greedy is near-optimal
    # everywhere, not just at its worst-case bound.
    assert all(row["greedy_measured"] >= 0.90 for row in rows)
