"""Figure 4e: parallelizability of Greedy across cores {1, 4, 8, 16, 32}.

The paper measures near-perfect scaling (about 20x on 32 cores) on a
32-core server.  This container has one core, so the figure is
reproduced with the calibrated work-span cost model of
``repro.core.parallel`` (DESIGN.md, substitution 3): per-iteration work
is counted exactly from the naive strategy's execution, the per-op cost
is measured on this host, and the paper's ``O(k + nkD/N)`` bound is
applied.  The real process-pool executor is additionally validated to
produce bit-identical selections to the serial run.
"""

import pytest

from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.core.parallel import (
    ParallelGainEvaluator,
    calibrate_cost_model,
    speedup_curve,
)
from repro.evaluation.metrics import format_table
from repro.workloads.graphs import random_preference_graph

WORKERS = (1, 4, 8, 16, 32)
N_ITEMS = 200_000
K = 100


@pytest.fixture(scope="module")
def graph():
    return random_preference_graph(N_ITEMS, seed=60)


def test_fig4e_parallel_speedup_model(benchmark, graph):
    model = benchmark.pedantic(
        lambda: calibrate_cost_model(graph, K, "independent"),
        rounds=3, iterations=1,
    )
    rows = speedup_curve(model, workers=WORKERS)
    # (repro.experiments.fig4e_rows produces the same series standalone.)
    display = [
        {
            "cores": row["workers"],
            "modeled_runtime_s": row["runtime_s"],
            "modeled_speedup": row["speedup"],
        }
        for row in rows
    ]
    text = format_table(
        display,
        title=(
            f"Figure 4e: parallelizability (work-span cost model, "
            f"n={N_ITEMS}, k={K}; single-core host — see DESIGN.md "
            f"substitution 3)"
        ),
    )
    register_report("Figure 4e", text, filename="fig4e_parallel.txt")

    by_workers = {row["workers"]: row["speedup"] for row in rows}
    # The paper's shape: near-perfect scaling, ~20x at 32 cores.
    assert by_workers[4] > 3.0
    assert by_workers[8] > 6.0
    assert 10.0 < by_workers[32] < 32.0
    # Monotone in the worker count.
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)


def test_fig4e_process_pool_correctness(benchmark, graph):
    """The real executor returns the exact serial selection."""
    serial = greedy_solve(graph, k=20, variant="independent", strategy="naive")

    def run_parallel():
        with ParallelGainEvaluator(graph, "independent", n_workers=2) as pool:
            return greedy_solve(
                graph, k=20, variant="independent", strategy="naive",
                parallel=pool
            )

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    assert parallel.retained == serial.retained
    assert parallel.cover == pytest.approx(serial.cover, abs=1e-12)
