"""Figure 4f: the complementary minimization problem.

For thresholds {0.5 ... 0.9} on the YC stand-in (Independent variant),
reports the retained-set size produced by the direct greedy threshold
solver against the binary-search-adapted TopK-W and TopK-C baselines —
the paper's result that greedy needs a much smaller set carries over.
Row computation lives in ``repro.experiments``.
"""

import pytest

from _reporting import register_report
from repro.adaptation import build_preference_graph
from repro.core.threshold import greedy_threshold_solve
from repro.evaluation.metrics import format_table
from repro.experiments import fig4f_rows
from repro.workloads.datasets import build_dataset

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


@pytest.fixture(scope="module")
def yc_graph():
    clickstream, _model = build_dataset("YC", scale=0.05, seed=70)
    return build_preference_graph(clickstream, "independent").to_csr()


def test_fig4f_complementary_problem(benchmark, yc_graph):
    benchmark.pedantic(
        lambda: greedy_threshold_solve(yc_graph, threshold=0.7, variant="independent"),
        rounds=5, iterations=1,
    )

    rows = fig4f_rows(yc_graph, thresholds=THRESHOLDS)
    text = format_table(
        rows,
        title=(
            f"Figure 4f: smallest set reaching each coverage threshold "
            f"(YC stand-in, n={yc_graph.n_items}, Independent)"
        ),
    )
    register_report("Figure 4f", text, filename="fig4f_complementary.txt")

    for row in rows:
        # Greedy produces the smallest set at every threshold.
        assert row["Greedy_items"] <= row["TopK-W_items"]
        assert row["Greedy_items"] <= row["TopK-C_items"]
        assert row["greedy_cover"] >= row["threshold"] - 1e-9
    # Set sizes grow with the threshold.
    sizes = [row["Greedy_items"] for row in rows]
    assert sizes == sorted(sizes)
