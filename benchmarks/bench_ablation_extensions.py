"""Ablation: the future-work extensions against their plain counterparts.

* revenue-aware greedy vs count-based greedy, scored in expected revenue;
* incremental re-solve vs from-scratch greedy after a small weight drift;
* capacity (knapsack) greedy vs cardinality greedy at equal average cost.
"""

import time

import numpy as np
import pytest

from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.extensions.capacity import budget_spent, capacity_greedy_solve
from repro.extensions.incremental import IncrementalSolver
from repro.extensions.revenue import expected_revenue, revenue_greedy_solve
from repro.workloads.graphs import random_preference_graph

N_ITEMS = 5_000
K = 200


@pytest.fixture(scope="module")
def graph():
    return random_preference_graph(N_ITEMS, seed=110)


def test_ablation_revenue(benchmark, graph):
    rng = np.random.default_rng(111)
    revenues = rng.lognormal(mean=2.0, sigma=1.0, size=N_ITEMS)
    plain = greedy_solve(graph, k=K, variant="independent")
    aware = benchmark.pedantic(
        lambda: revenue_greedy_solve(graph, k=K, variant="independent", revenues=revenues),
        rounds=3, iterations=1,
    )
    plain_revenue = expected_revenue(
        graph, plain.retained, "independent", revenues
    )
    rows = [
        {
            "selector": "count-based greedy",
            "expected_revenue": plain_revenue,
            "cover": plain.cover,
        },
        {
            "selector": "revenue-aware greedy",
            "expected_revenue": aware.cover,
            "cover": float("nan"),
        },
    ]
    text = format_table(
        rows,
        title=f"Ablation: revenue extension (n={N_ITEMS}, k={K}, "
              f"lognormal revenues)",
        float_format="{:.2f}",
    )
    register_report(
        "Ablation: revenue", text, filename="ablation_revenue.txt"
    )
    # Optimizing the revenue objective cannot lose to ignoring it.
    assert aware.cover >= plain_revenue - 1e-9


def test_ablation_incremental(benchmark, graph):
    pg = graph.to_preference_graph()
    solver = IncrementalSolver(pg, k=K, variant="independent")
    solver.solve()
    items = list(pg.items())
    rng = np.random.default_rng(112)

    def drift_and_resolve():
        # Move 5% of the mass of three random items elsewhere.
        for _ in range(3):
            a, b = rng.choice(len(items), size=2, replace=False)
            delta = pg.node_weight(items[a]) * 0.05
            solver.update_node_weight(
                items[a], pg.node_weight(items[a]) - delta
            )
            solver.update_node_weight(
                items[b], pg.node_weight(items[b]) + delta
            )
        return solver.resolve()

    incremental = benchmark.pedantic(drift_and_resolve, rounds=3,
                                     iterations=1)
    start = time.perf_counter()
    fresh = greedy_solve(pg, k=K, variant="independent")
    fresh_time = time.perf_counter() - start
    assert incremental.retained == fresh.retained

    rows = [
        {
            "method": "incremental resolve",
            "runtime_s": incremental.wall_time_s,
            "reused_prefix": solver.last_reused_prefix,
            "cover": incremental.cover,
        },
        {
            "method": "from-scratch greedy",
            "runtime_s": fresh_time,
            "reused_prefix": 0,
            "cover": fresh.cover,
        },
    ]
    text = format_table(
        rows,
        title=f"Ablation: incremental maintenance after weight drift "
              f"(n={N_ITEMS}, k={K})",
    )
    register_report(
        "Ablation: incremental", text, filename="ablation_incremental.txt"
    )


def test_ablation_capacity(benchmark, graph):
    rng = np.random.default_rng(113)
    costs = rng.uniform(0.5, 2.0, N_ITEMS)
    budget = float(K)  # equals the cardinality budget at unit avg cost
    capped = benchmark.pedantic(
        lambda: capacity_greedy_solve(graph, budget=budget, variant="independent", costs=costs),
        rounds=1, iterations=1,
    )
    plain = greedy_solve(graph, k=K, variant="independent")
    plain_cost = budget_spent(graph, plain.retained, costs)
    rows = [
        {
            "selector": "cardinality greedy (cost-blind)",
            "items": plain.k,
            "storage_spent": plain_cost,
            "cover": plain.cover,
        },
        {
            "selector": "capacity greedy (cost-aware)",
            "items": capped.k,
            "storage_spent": budget_spent(graph, capped.retained, costs),
            "cover": capped.cover,
        },
    ]
    text = format_table(
        rows,
        title=f"Ablation: storage-budget extension "
              f"(budget={budget:.0f} units, heterogeneous costs)",
    )
    register_report(
        "Ablation: capacity", text, filename="ablation_capacity.txt"
    )
    # The cost-aware selection must respect the budget...
    assert budget_spent(graph, capped.retained, costs) <= budget + 1e-9
    # ...and with heterogeneous costs typically packs more items in.
    assert capped.k >= plain.k - 5
