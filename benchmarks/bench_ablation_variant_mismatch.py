"""Ablation: the cost of solving with the wrong variant.

Section 5.2 motivates choosing the variant from the data.  This bench
quantifies the penalty of skipping that step: on a population with known
behavior, solve the estimated graph under each variant and replay the
selections against the *true* population.  Matching the population's
semantics should never lose, and usually wins.
"""

import pytest

from _reporting import register_report
from repro.adaptation import build_preference_graph
from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.evaluation.replay import simulate_fulfillment

N_ITEMS = 300
K = 30


def _mismatch_rows(behavior: str, seed: int):
    model = ConsumerModel(
        ShopperConfig(n_items=N_ITEMS, behavior=behavior,
                      cluster_size=6, max_alternatives=5),
        seed=seed,
    )
    stream = model.generate(60_000, seed=seed + 1)
    rows = []
    for solve_variant in ("independent", "normalized"):
        graph = build_preference_graph(stream, solve_variant)
        result = greedy_solve(graph, k=K, variant=solve_variant)
        realized = simulate_fulfillment(
            model, result.retained, n_sessions=80_000, seed=seed + 2
        )
        rows.append(
            {
                "population": behavior,
                "solved_as": solve_variant,
                "matched": solve_variant == behavior,
                "predicted_cover": result.cover,
                "realized_sales": realized.match_rate,
            }
        )
    return rows


def test_ablation_variant_mismatch(benchmark):
    rows = benchmark.pedantic(
        lambda: _mismatch_rows("independent", seed=90)
        + _mismatch_rows("normalized", seed=95),
        rounds=1, iterations=1,
    )
    text = format_table(
        rows,
        title=(
            f"Ablation: solving under the wrong variant "
            f"(n={N_ITEMS}, k={K}; realized sales via ground-truth replay)"
        ),
    )
    register_report(
        "Ablation: variant mismatch", text,
        filename="ablation_variant_mismatch.txt",
    )

    for behavior in ("independent", "normalized"):
        subset = [r for r in rows if r["population"] == behavior]
        matched = next(r for r in subset if r["matched"])
        mismatched = next(r for r in subset if not r["matched"])
        # The matched variant's *prediction* must be honest: close to
        # the realized rate.  The mismatched prediction may be biased.
        assert matched["predicted_cover"] == pytest.approx(
            matched["realized_sales"], abs=0.02
        )
        # And matching the population never loses realized sales
        # materially.
        assert (
            matched["realized_sales"]
            >= mismatched["realized_sales"] - 0.01
        )
