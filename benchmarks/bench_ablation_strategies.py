"""Ablation: naive vs lazy (CELF) vs accelerated greedy strategies.

All three implement Algorithm 1's selection rule; this bench quantifies
the design choice DESIGN.md calls out — how much the lazy and
incremental formulations save over the paper's literal recomputation,
at identical output.
"""

import time

import pytest

from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.workloads.graphs import random_preference_graph

N_ITEMS = 30_000
K = 300
STRATEGIES = ("naive", "lazy", "accelerated")


@pytest.fixture(scope="module")
def graph():
    return random_preference_graph(N_ITEMS, seed=80)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_strategy_timing(benchmark, graph, strategy):
    result = benchmark.pedantic(
        lambda: greedy_solve(graph, k=K, variant="independent", strategy=strategy),
        rounds=3, iterations=1,
    )
    assert len(result.retained) == K


def test_ablation_strategy_table(benchmark, graph):
    rows = []
    covers = {}

    def measure_all():
        rows.clear()
        for strategy in STRATEGIES:
            start = time.perf_counter()
            result = greedy_solve(
                graph, k=K, variant="independent", strategy=strategy
            )
            elapsed = time.perf_counter() - start
            covers[strategy] = result.cover
            rows.append(
                {
                    "strategy": strategy,
                    "runtime_s": elapsed,
                    "gain_evaluations": result.gain_evaluations,
                    "cover": result.cover,
                }
            )
        return rows

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    text = format_table(
        rows,
        title=(
            f"Ablation: solver strategies (n={N_ITEMS}, k={K}, "
            f"Independent) — identical covers, very different work"
        ),
    )
    register_report(
        "Ablation: strategies", text, filename="ablation_strategies.txt"
    )

    assert covers["lazy"] == pytest.approx(covers["naive"], abs=1e-9)
    assert covers["accelerated"] == pytest.approx(covers["naive"], abs=1e-9)
    by_strategy = {row["strategy"]: row for row in rows}
    # Lazy evaluates dramatically fewer gains than naive's n*k.
    assert (
        by_strategy["lazy"]["gain_evaluations"]
        < by_strategy["naive"]["gain_evaluations"] / 10
    )
