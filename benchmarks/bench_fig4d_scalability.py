"""Figure 4d: scalability of Greedy with the number of items.

The paper times Greedy on PE subsets of n in {10K, 100K, 500K, 1M} with
k = 5K.  The default sweep uses container-friendly sizes with the
paper's k/n ratio (k = n/200); pass ``--bench-full`` to run the paper's
exact sizes.  Row computation lives in ``repro.experiments``.
"""

from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.experiments import fig4d_rows
from repro.observability import SolverTrace
from repro.workloads.graphs import random_preference_graph

DEFAULT_SIZES = (10_000, 50_000, 100_000, 250_000)
FULL_SIZES = (10_000, 100_000, 500_000, 1_000_000)


def test_fig4d_scalability(benchmark, bench_full, bench_metrics):
    sizes = FULL_SIZES if bench_full else DEFAULT_SIZES
    small = random_preference_graph(sizes[0], seed=50)
    # The timed runs stay untraced: the hot path must pay nothing.
    benchmark.pedantic(
        lambda: greedy_solve(small, k=sizes[0] // 200, variant="independent"),
        rounds=3, iterations=1,
    )
    # One instrumented run contributes solver counters to the session
    # metrics dump (benchmarks/results/metrics.json).
    tracer = SolverTrace(metrics=bench_metrics)
    with bench_metrics.time("fig4d.instrumented_solve"):
        greedy_solve(
            small, k=sizes[0] // 200, variant="independent", tracer=tracer
        )

    rows = fig4d_rows(sizes=sizes)
    text = format_table(
        rows,
        title=(
            "Figure 4d: scalability of Greedy (k = n/200"
            + (", paper sizes" if bench_full else
               ", container sizes; --bench-full for 1M")
            + ")"
        ),
    )
    register_report("Figure 4d", text, filename="fig4d_scalability.txt")

    # Near-linear growth: 25x more items should cost far less than the
    # quadratic 625x.
    first, last = rows[0], rows[-1]
    size_factor = last["n"] / first["n"]
    time_factor = last["accelerated_s"] / max(first["accelerated_s"], 1e-9)
    assert time_factor < size_factor ** 1.7
