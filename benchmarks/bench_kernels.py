"""Perf-regression harness for the solver hot paths.

Times the four perf-critical surfaces on seeded synthetic graphs at two
sizes and appends the medians to the machine-readable trajectory file
``BENCH_core.json`` at the repository root (see ``benchmarks/_perf.py``
for the schema):

* ``batch_gain.<kernels>.<size>`` — one full ``gains_all`` sweep;
* ``add_node.<kernels>.<size>`` — committing a block of nodes;
* ``strategy.<name>.<kernels>.<size>`` — full greedy solves with the
  naive / lazy / accelerated strategies;
* ``parallel.<mode>.large`` — naive greedy serial vs the pipe and
  shared-memory parallel backends (4 workers).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # tiny
    PYTHONPATH=src python benchmarks/bench_kernels.py --check    # verify

``--smoke`` uses tiny graphs and one repeat so CI can exercise the
harness end-to-end in seconds; ``--check`` validates that the trajectory
file parses and that its newest run contains every expected series —
the guard that keeps the harness itself from rotting.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.append(str(_SRC))

from _perf import (  # noqa: E402
    BENCH_CORE_PATH,
    append_run,
    load_trajectory,
    time_median,
)

VARIANT = "independent"

#: (label, n_items, k) for the two measured scales.
FULL_SIZES = {"small": (2_000, 30), "large": (20_000, 60)}
SMOKE_SIZES = {"small": (300, 8), "large": (800, 10)}

STRATEGIES = ("naive", "lazy", "accelerated")
PARALLEL_MODES = ("serial", "pipe", "shm")


def _build_graphs(sizes):
    from repro.workloads.graphs import random_preference_graph

    return {
        label: (random_preference_graph(n, variant=VARIANT, seed=1234), k)
        for label, (n, k) in sizes.items()
    }


def run_benchmarks(args) -> dict:
    from repro.core.gain import GreedyState
    from repro.core.greedy import greedy_solve
    from repro.core.kernels import available_backends, get_kernels
    from repro.core.parallel import ParallelGainEvaluator

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    repeats = 1 if args.smoke else args.repeats
    graphs = _build_graphs(sizes)
    backends = available_backends()
    series: dict = {}

    def record(name, fn):
        series[name] = time_median(fn, repeats=repeats,
                                   warmup=0 if args.smoke else 1)
        print(f"  {name:40s} {series[name]['median_s'] * 1e3:10.3f} ms")

    for label, (graph, k) in graphs.items():
        n = graph.n_items
        print(f"[{label}] n_items={n} n_edges={graph.n_edges} k={k}")
        add_block = list(range(0, n, max(1, n // min(n, 300))))

        for backend_name in backends:
            kernels = get_kernels(backend_name)

            def batch(graph=graph, kernels=kernels):
                GreedyState(graph, VARIANT, kernels=kernels).gains_all()

            record(f"batch_gain.{backend_name}.{label}", batch)

            def add_nodes(graph=graph, kernels=kernels):
                state = GreedyState(graph, VARIANT, kernels=kernels)
                for v in add_block:
                    state.add_node(v)

            record(f"add_node.{backend_name}.{label}", add_nodes)

            for strategy in STRATEGIES:
                def solve(graph=graph, k=k, strategy=strategy,
                          kernels=kernels):
                    greedy_solve(graph, k=k, variant=VARIANT,
                                 strategy=strategy, kernels=kernels)

                record(f"strategy.{strategy}.{backend_name}.{label}", solve)

    # Serial vs parallel on the larger instance only: worker pools are
    # pure overhead at toy sizes and the paper's claim is about scale.
    graph, k = graphs["large"]
    for mode in PARALLEL_MODES:
        if mode == "serial":
            def run_parallel(graph=graph, k=k):
                greedy_solve(graph, k=k, variant=VARIANT, strategy="naive")
        else:
            def run_parallel(graph=graph, k=k, mode=mode):
                with ParallelGainEvaluator(
                    graph, VARIANT, n_workers=args.workers, backend=mode
                ) as pool:
                    greedy_solve(graph, k=k, variant=VARIANT,
                                 strategy="naive", parallel=pool)

        name = "serial" if mode == "serial" else f"{mode}{args.workers}"
        record(f"parallel.{name}.large", run_parallel)

    size_meta = {
        label: {"n_items": graph.n_items, "n_edges": graph.n_edges, "k": k}
        for label, (graph, k) in graphs.items()
    }
    append_run(
        series,
        sizes=size_meta,
        kernel_backends=backends,
        label=args.label,
        smoke=args.smoke,
        path=args.out,
    )
    print(f"appended {len(series)} series to {args.out}")
    return series


def expected_series_keys(run: dict) -> list:
    """Series every valid run must contain (numpy backend is mandatory;
    compiled-backend series are welcome extras)."""
    sizes = list(run.get("sizes", {}))
    workers = set()
    for name in run.get("series", {}):
        if name.startswith("parallel.") and not name.startswith(
            "parallel.serial"
        ):
            workers.add(name.split(".")[1].lstrip("pipeshm") or "4")
    n_workers = sorted(workers)[0] if workers else "4"
    required = []
    for label in sizes:
        required.append(f"batch_gain.numpy.{label}")
        required.append(f"add_node.numpy.{label}")
        for strategy in STRATEGIES:
            required.append(f"strategy.{strategy}.numpy.{label}")
    required += [
        "parallel.serial.large",
        f"parallel.pipe{n_workers}.large",
        f"parallel.shm{n_workers}.large",
    ]
    return required


def check_trajectory(path: Path) -> int:
    """Validate the trajectory file; return a process exit code."""
    try:
        data = load_trajectory(path)
    except (ValueError, OSError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if not data["runs"]:
        print(f"FAIL: {path} contains no runs", file=sys.stderr)
        return 1
    run = data["runs"][-1]
    missing = []
    for key in expected_series_keys(run):
        entry = run.get("series", {}).get(key)
        if not isinstance(entry, dict) or not (
            isinstance(entry.get("median_s"), (int, float))
            and entry["median_s"] > 0
        ):
            missing.append(key)
    if missing:
        print(
            f"FAIL: newest run in {path} is missing/invalid series: "
            f"{missing}",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {path} — {len(data['runs'])} run(s), newest has "
        f"{len(run['series'])} series, all expected keys present"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, one repeat (CI harness check)")
    parser.add_argument("--check", action="store_true",
                        help="validate the trajectory file and exit")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the parallel series")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded with the run")
    parser.add_argument("--out", type=Path, default=BENCH_CORE_PATH,
                        help="trajectory file (default: repo BENCH_core.json)")
    args = parser.parse_args(argv)

    if args.check:
        return check_trajectory(args.out)
    run_benchmarks(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
