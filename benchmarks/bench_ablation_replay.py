"""Ablation: closed-form C(S) vs Monte-Carlo behavioral replay.

Definitions 2.1/2.2 are validated numerically: for both variants, the
simulated match rate (sampling actual acceptance events, never using the
formula) agrees with the exact cover within Monte-Carlo error.
"""


from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.metrics import format_table
from repro.evaluation.replay import replay_match_rate
from repro.workloads.graphs import random_preference_graph

N_ITEMS = 2_000
N_REQUESTS = 300_000


def test_ablation_replay_agreement(benchmark):
    rows = []
    for variant in ("independent", "normalized"):
        graph = random_preference_graph(N_ITEMS, variant=variant, seed=100)
        for k in (100, 400, 1000):
            result = greedy_solve(graph, k=k, variant=variant)
            report = replay_match_rate(
                graph, result.retained, variant,
                n_requests=N_REQUESTS, seed=101,
            )
            lo, hi = report.confidence_interval()
            rows.append(
                {
                    "variant": variant,
                    "k": k,
                    "closed_form_C(S)": result.cover,
                    "replay_rate": report.match_rate,
                    "abs_error": abs(result.cover - report.match_rate),
                    "within_99%_CI": lo <= result.cover <= hi,
                }
            )

    # Benchmark one replay.
    graph = random_preference_graph(N_ITEMS, seed=100)
    result = greedy_solve(graph, k=400, variant="independent")
    benchmark.pedantic(
        lambda: replay_match_rate(
            graph, result.retained, "independent",
            n_requests=50_000, seed=1,
        ),
        rounds=3, iterations=1,
    )

    text = format_table(
        rows,
        title=(
            f"Ablation: cover formula vs Monte-Carlo replay "
            f"(n={N_ITEMS}, {N_REQUESTS:,} simulated requests)"
        ),
    )
    register_report(
        "Ablation: replay validation", text, filename="ablation_replay.txt"
    )

    assert all(row["within_99%_CI"] for row in rows)
    assert all(row["abs_error"] < 0.01 for row in rows)
