"""Figure 4b: running time (log scale) of Greedy vs BF, Normalized.

The paper plots runtimes to show exact solving explodes while greedy
stays flat.  The sweep grows n with k = n/2 — the combinatorial worst
case — and reports both runtimes and their ratio; by n = 18 brute force
is already five-plus orders of magnitude slower.  Row computation lives
in ``repro.experiments``.
"""


from _reporting import register_report
from repro.core.greedy import greedy_solve
from repro.evaluation.ascii_plot import bar_chart
from repro.evaluation.metrics import format_table
from repro.experiments import fig4b_rows
from repro.workloads.graphs import small_dense_graph

SIZES = (10, 12, 14, 16, 18)


def test_fig4b_runtime_greedy_vs_bruteforce(benchmark):
    graph = small_dense_graph(18, variant="normalized", seed=48)
    benchmark.pedantic(
        lambda: greedy_solve(graph, k=9, variant="normalized"),
        rounds=10, iterations=1,
    )

    rows = fig4b_rows(sizes=SIZES)
    text = format_table(
        rows,
        title="Figure 4b: running time of Greedy vs BF "
              "(Normalized variant, k = n/2)",
        float_format="{:.5f}",
    ) + "\n\n" + bar_chart(
        [f"n={row['n']}" for row in rows],
        [row["bf_s"] for row in rows],
        log_scale=True,
        title="BF runtime, seconds (log scale)",
    )
    register_report("Figure 4b", text, filename="fig4b_bf_runtime.txt")

    # BF time grows super-exponentially with n, greedy stays negligible.
    bf_times = [row["bf_s"] for row in rows]
    assert bf_times[-1] > bf_times[0] * 50
    assert all(row["greedy_s"] < 0.05 for row in rows)
    assert all(row["cover_ratio"] >= 0.97 for row in rows)
