"""Ablation: out-of-sample (holdout) evaluation of the selectors.

The paper scores selections with the model's own cover function; this
ablation removes that circularity with a train/test split — the graph
is built on 80% of the sessions, and each selector's retained set is
scored on the held-out 20% by *revealed* behavior only (purchase
retained = fulfilled; clicked-a-retained-item = substituted).  The
paper's ordering must survive out of sample.
"""


from _reporting import register_report
from repro.adaptation import build_preference_graph
from repro.core.baselines import random_solve, top_k_weight_solve
from repro.core.greedy import greedy_solve
from repro.evaluation.holdout import evaluate_holdout, split_clickstream
from repro.evaluation.metrics import format_table
from repro.workloads.datasets import build_dataset

K_FRACTION = 0.15


def test_ablation_holdout_evaluation(benchmark):
    clickstream, _model = build_dataset("PE", scale=0.0008, seed=140)
    train, test = split_clickstream(clickstream, train_fraction=0.8,
                                    seed=141)
    graph = build_preference_graph(train, "independent").to_csr()
    k = max(1, int(graph.n_items * K_FRACTION))

    def run_all():
        return {
            "greedy": greedy_solve(graph, k=k, variant="independent"),
            "topk-weight": top_k_weight_solve(graph, k=k, variant="independent"),
            "random(best-of-10)": random_solve(
                graph, k=k, variant="independent", seed=142, draws=10
            ),
        }

    selections = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, result in selections.items():
        report = evaluate_holdout(result.retained, test)
        rows.append(
            {
                "selector": name,
                "in_sample_cover": result.cover,
                "holdout_service_rate": report.service_rate,
                "holdout_fulfilled": report.fulfilled,
                "holdout_substituted": report.substituted,
                "holdout_lost": report.lost,
            }
        )

    text = format_table(
        rows,
        title=(
            f"Ablation: out-of-sample evaluation "
            f"(PE stand-in, n={graph.n_items}, k={k}, "
            f"80/20 session split)"
        ),
    )
    register_report(
        "Ablation: holdout", text, filename="ablation_holdout.txt"
    )

    by_name = {row["selector"]: row for row in rows}
    # The in-model ordering survives revealed-preference scoring.
    assert (
        by_name["greedy"]["holdout_service_rate"]
        >= by_name["random(best-of-10)"]["holdout_service_rate"]
    )
    assert (
        by_name["greedy"]["holdout_service_rate"]
        >= by_name["topk-weight"]["holdout_service_rate"] - 0.01
    )
