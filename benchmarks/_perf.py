"""Timing primitives and the ``BENCH_core.json`` trajectory file.

The perf-regression harness (``bench_kernels.py``) measures each series
as the *median* of several repeats — medians are robust to the one-off
scheduler hiccups that plague shared CI runners — and records them in a
machine-readable trajectory file at the repository root.  Every run
*appends* an entry, so the file accumulates a perf history across PRs
that future changes can be diffed against.

Schema (``BENCH_core.json``)::

    {
      "schema": "repro-bench-core/1",
      "runs": [
        {
          "created_at": "2026-08-06T12:00:00Z",
          "label": "...", "smoke": false,
          "host": {"python": "3.11.7", "cpus": 1,
                   "kernel_backends": ["numpy"]},
          "sizes": {"small": {"n_items": ..., "n_edges": ...},
                    "large": {...}},
          "series": {"batch_gain.numpy.small":
                         {"median_s": ..., "repeats": 5}, ...}
        }
      ]
    }

The newest run is last.  Consumers should key on ``series`` names, which
follow ``<metric>.<backend-or-strategy>.<size>``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from statistics import median
from typing import Callable, Dict, List, Optional

#: Trajectory file at the repository root.
BENCH_CORE_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

SCHEMA = "repro-bench-core/1"


def time_median(
    fn: Callable[[], object],
    *,
    repeats: int = 5,
    warmup: int = 1,
) -> Dict[str, float]:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    ``warmup`` uncounted calls absorb one-time costs (page faults,
    JIT compilation for compiled kernel backends) so the medians
    measure steady state.
    """
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "median_s": median(times),
        "min_s": min(times),
        "max_s": max(times),
        "repeats": repeats,
    }


def host_fingerprint(kernel_backends) -> Dict:
    """Environment details recorded next to every run."""
    return {
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
        "machine": platform.machine(),
        "kernel_backends": list(kernel_backends),
    }


def load_trajectory(
    path: Optional[Path] = None, *, schema: str = SCHEMA
) -> Dict:
    """Read a trajectory file, or an empty skeleton when absent.

    ``schema`` selects which trajectory family the file must belong to
    (``repro-bench-core/1`` for the kernel harness, ``repro-bench-serve/1``
    for the serving harness); a mismatch is an error, not a silent reset.
    """
    path = path or BENCH_CORE_PATH
    if not path.exists():
        return {"schema": schema, "runs": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != schema or not isinstance(data.get("runs"), list):
        raise ValueError(
            f"{path} is not a {schema} trajectory file"
        )
    return data


def append_run(
    series: Dict[str, Dict],
    *,
    sizes: Dict[str, Dict],
    kernel_backends,
    label: str = "",
    smoke: bool = False,
    path: Optional[Path] = None,
    schema: str = SCHEMA,
) -> Dict:
    """Append one run to the trajectory file and return the run row."""
    path = path or BENCH_CORE_PATH
    data = load_trajectory(path, schema=schema)
    run = {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": label,
        "smoke": bool(smoke),
        "host": host_fingerprint(kernel_backends),
        "sizes": sizes,
        "series": series,
    }
    data["runs"].append(run)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return run
