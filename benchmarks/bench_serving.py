"""Perf harness for the assortment serving layer.

Measures the serving layer's reason for existing — a warm cached query
must be orders of magnitude cheaper than a cold solve — and appends the
medians to the machine-readable trajectory file ``BENCH_serve.json`` at
the repository root (schema ``repro-bench-serve/1``; see
``benchmarks/_perf.py``):

* ``cold_solve.<size>`` — ``repro.solve`` from scratch on the instance;
* ``warm_query.<size>`` — one ``covered_probability`` point read from
  the active snapshot;
* ``warm_query_batch.<size>`` — a 256-item vectorized batch read;
* ``ensure_hit.<size>`` — a cache-hit ``ensure()`` round trip;
* ``refresh_delta.<size>`` — applying a drift delta including the
  incremental re-solve and hot swap;
* ``frontend_workload.<size>`` — 512 async queries through the
  micro-batching front end.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke    # tiny
    PYTHONPATH=src python benchmarks/bench_serving.py --check    # verify

``--check`` validates the trajectory file, that its newest run carries
every expected series, and that the warm/cold speedup clears the floor
(100x at full size — the fig4d-scale serving claim — 20x at smoke
size, where the cold solve itself is only milliseconds).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.append(str(_SRC))

from _perf import (  # noqa: E402
    append_run,
    load_trajectory,
    time_median,
)

VARIANT = "independent"

BENCH_SERVE_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
SCHEMA = "repro-bench-serve/1"

#: (n_items, k) per measured scale; "large" matches the fig4d scalability
#: regime (tens of thousands of items).
FULL_SIZES = {"small": (2_000, 30), "large": (20_000, 100)}
SMOKE_SIZES = {"small": (300, 8), "large": (800, 10)}

#: Required warm-query speedup over the cold solve (--check).
SPEEDUP_FLOOR_FULL = 100.0
SPEEDUP_FLOOR_SMOKE = 20.0

EXPECTED_METRICS = (
    "cold_solve",
    "warm_query",
    "warm_query_batch",
    "ensure_hit",
    "refresh_delta",
    "frontend_workload",
)

FRONTEND_REQUESTS = 512


def run_benchmarks(args) -> dict:
    import numpy as np

    from repro import solve
    from repro.clickstream.drift import random_delta
    from repro.serving import AssortmentService, ServingFrontend
    from repro.workloads.graphs import random_preference_graph

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    repeats = 1 if args.smoke else args.repeats
    series: dict = {}
    size_meta: dict = {}

    def record(name, fn, *, warmup=None):
        series[name] = time_median(
            fn, repeats=repeats,
            warmup=(0 if args.smoke else 1) if warmup is None else warmup,
        )
        print(f"  {name:40s} {series[name]['median_s'] * 1e3:10.3f} ms")

    for label, (n, k) in sizes.items():
        graph = random_preference_graph(n, variant=VARIANT, seed=1234)
        size_meta[label] = {
            "n_items": graph.n_items, "n_edges": graph.n_edges, "k": k,
        }
        print(f"[{label}] n_items={graph.n_items} "
              f"n_edges={graph.n_edges} k={k}")

        record(
            f"cold_solve.{label}",
            lambda graph=graph, k=k: solve(graph, variant=VARIANT, k=k),
        )

        service = AssortmentService(graph, variant=VARIANT, k=k)
        snapshot = service.ensure()
        item_ids = snapshot.graph.items
        rng = np.random.default_rng(99)
        points = [item_ids[i] for i in
                  rng.integers(0, len(item_ids), size=64).tolist()]
        batch = [item_ids[i] for i in
                 rng.integers(0, len(item_ids), size=256).tolist()]

        def warm(service=service, points=points):
            for item in points:
                service.covered_probability(item)

        probe = time_median(warm, repeats=repeats,
                            warmup=0 if args.smoke else 1)
        # Report the per-query cost: the loop above amortizes timer
        # granularity over 64 point reads.
        series[f"warm_query.{label}"] = {
            **{key: value / len(points)
               for key, value in probe.items() if key.endswith("_s")},
            "repeats": probe["repeats"],
            "queries_per_repeat": len(points),
        }
        print(f"  {f'warm_query.{label}':40s} "
              f"{series[f'warm_query.{label}']['median_s'] * 1e6:10.3f} us")

        record(
            f"warm_query_batch.{label}",
            lambda service=service, batch=batch:
                service.covered_probability_many(batch),
        )
        record(f"ensure_hit.{label}", service.ensure)

        sequence = [service.stats()["sequence"]]

        def refresh(service=service, sequence=sequence):
            sequence[0] += 1
            delta = random_delta(
                service.graph, sigma=0.05, seed=sequence[0],
                sequence=sequence[0],
            )
            service.apply_delta(delta)

        record(f"refresh_delta.{label}", refresh, warmup=0)

        async def drive(service=service, batch=batch):
            async with ServingFrontend(
                service, batch_window_s=0.001
            ) as frontend:
                for start in range(0, FRONTEND_REQUESTS, 64):
                    wave = [
                        frontend.covered_probability(
                            batch[(start + j) % len(batch)]
                        )
                        for j in range(64)
                    ]
                    await asyncio.gather(*wave)

        record(
            f"frontend_workload.{label}",
            lambda drive=drive: asyncio.run(drive()),
            warmup=0,
        )

        speedup = (
            series[f"cold_solve.{label}"]["median_s"]
            / max(series[f"warm_query.{label}"]["median_s"], 1e-12)
        )
        series[f"speedup.{label}"] = {
            "median_s": speedup, "repeats": repeats,
            "note": "cold_solve median over warm_query median (ratio, "
                    "not seconds)",
        }
        print(f"  {f'speedup.{label}':40s} {speedup:10.1f} x")

    append_run(
        series,
        sizes=size_meta,
        kernel_backends=["numpy"],
        label=args.label,
        smoke=args.smoke,
        path=args.out,
        schema=SCHEMA,
    )
    print(f"appended {len(series)} series to {args.out}")
    return series


def check_trajectory(path: Path) -> int:
    """Validate the trajectory file; return a process exit code."""
    try:
        data = load_trajectory(path, schema=SCHEMA)
    except (ValueError, OSError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if not data["runs"]:
        print(f"FAIL: {path} contains no runs", file=sys.stderr)
        return 1
    run = data["runs"][-1]
    sizes = list(run.get("sizes", {}))
    missing = []
    for label in sizes:
        for metric in EXPECTED_METRICS:
            key = f"{metric}.{label}"
            entry = run.get("series", {}).get(key)
            if not isinstance(entry, dict) or not (
                isinstance(entry.get("median_s"), (int, float))
                and entry["median_s"] > 0
            ):
                missing.append(key)
    if missing:
        print(
            f"FAIL: newest run in {path} is missing/invalid series: "
            f"{missing}",
            file=sys.stderr,
        )
        return 1
    floor = SPEEDUP_FLOOR_SMOKE if run.get("smoke") else SPEEDUP_FLOOR_FULL
    verdicts = []
    for label in sizes:
        cold = run["series"][f"cold_solve.{label}"]["median_s"]
        warm = run["series"][f"warm_query.{label}"]["median_s"]
        speedup = cold / max(warm, 1e-12)
        verdicts.append(f"{label}: {speedup:.0f}x")
        if speedup < floor:
            print(
                f"FAIL: warm query speedup on '{label}' is "
                f"{speedup:.1f}x, below the {floor:.0f}x floor "
                f"(cold={cold:.6f}s warm={warm * 1e6:.3f}us)",
                file=sys.stderr,
            )
            return 1
    print(
        f"OK: {path} — {len(data['runs'])} run(s), newest has "
        f"{len(run['series'])} series; warm/cold speedup "
        f"{', '.join(verdicts)} (floor {floor:.0f}x)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, one repeat (CI harness check)")
    parser.add_argument("--check", action="store_true",
                        help="validate the trajectory file and exit")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--label", default="",
                        help="free-form tag recorded with the run")
    parser.add_argument("--out", type=Path, default=BENCH_SERVE_PATH,
                        help="trajectory file (default: repo "
                             "BENCH_serve.json)")
    args = parser.parse_args(argv)

    if args.check:
        return check_trajectory(args.out)
    run_benchmarks(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
