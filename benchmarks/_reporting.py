"""Shared result reporting for the benchmark harness.

Each benchmark registers the table(s) it reproduces; the conftest's
``pytest_terminal_summary`` hook prints every registered table after the
pytest-benchmark timing summary, so ``pytest benchmarks/
--benchmark-only`` emits the paper-figure data without needing ``-s``.
Tables are also written to ``benchmarks/results/`` for later inspection.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

RESULTS_DIR = Path(__file__).parent / "results"

#: (title, rendered_table) pairs registered during the run.
_REPORTS: List[Tuple[str, str]] = []


def register_report(title: str, table_text: str, *, filename: str) -> None:
    """Record a reproduced table for the end-of-run summary."""
    _REPORTS.append((title, table_text))
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{title}\n\n{table_text}\n")


def drain_reports() -> List[Tuple[str, str]]:
    """Return and clear all registered reports."""
    reports = list(_REPORTS)
    _REPORTS.clear()
    return reports
