"""Setup shim: metadata lives in pyproject.toml.

Kept so `pip install -e .` works on environments without the `wheel`
package (legacy editable-install path).
"""

from setuptools import setup

setup()
