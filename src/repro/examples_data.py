"""Canonical example graphs and clickstreams from the paper.

* :func:`figure1_graph` — the five-item preference graph of Figure 1,
  used by Examples 1.1 and 3.2: selecting the two top sellers (A, B)
  covers ~77% of requests, while the optimal pair {B, D} — D being the
  *least*-sold item — covers 87.3%.
* :func:`figure3_sessions` / :func:`figure3_graph` — the iPhone-color
  clickstream of Figure 3 and the preference graph its adaptation must
  produce, the reference case for the Data Adaptation Engine.
"""

from __future__ import annotations

from typing import List

from .core.graph import PreferenceGraph

#: Expected optimal retained pair and cover for Figure 1 with k=2.
FIGURE1_OPTIMAL_PAIR = ("B", "D")
FIGURE1_OPTIMAL_COVER = 0.873
#: Cover achieved by the naive top-2-sellers choice {A, B}.
FIGURE1_TOP2_COVER = 0.77


def figure1_graph() -> PreferenceGraph:
    """The Figure 1 preference graph.

    Node weights (purchase popularity): A 33%, B 22%, C 22%, E 17%, D 6%.
    Edges: requests for A accept B with probability 2/3; B and C fully
    substitute each other; requests for E accept D with probability 0.9.
    These values reproduce every number quoted in Examples 1.1 and 3.2
    and in the Figure 2 walkthrough:

    * greedy first picks B (gain 0.66 = W(B) + W(C) + 2/3 * W(A)),
    * then D (gain 0.213 = W(D) + 0.9 * W(E)),
    * total cover 0.873, which brute force confirms optimal for k=2,
    * after retaining B the marginal gains quoted in Example 3.2 hold
      exactly: A 11%, C 0%, D 21.3% — the 0% for C requires that no
      A -> C edge exists (any such edge would let C gain by covering
      part of A), so despite the prose "B is a more likely replacement
      for A than C" we model A's only alternative as B,
    * per-item coverage of the non-retained items: A 67%, C 100%, E 90%.
    """
    graph = PreferenceGraph.from_weights(
        {"A": 0.33, "B": 0.22, "C": 0.22, "D": 0.06, "E": 0.17},
        edges=[
            ("A", "B", 2.0 / 3.0),
            ("B", "C", 1.0),
            ("C", "B", 1.0),
            ("E", "D", 0.9),
        ],
    )
    return graph


#: Item ids of the Figure 3 iPhone example.
IPHONE_SILVER = "iphone8-256-silver"
IPHONE_GOLD = "iphone8-256-gold"
IPHONE_GRAY = "iphone8-256-space-gray"


def figure3_sessions() -> List[dict]:
    """The five Figure 3a sessions as plain dictionaries.

    Each session records the clicked items and the single purchased item.
    Purchases: 2x Space Gray, 2x Silver, 1x Gold.  The session structure
    matches Figure 3a: of the two Silver purchases, one session also
    clicked Gold and the other also clicked Space Gray; one Space Gray
    purchase had a click on Silver and the other no clicks; the Gold
    purchase had a click on Space Gray.
    """
    return [
        {"clicks": [IPHONE_GOLD], "purchase": IPHONE_SILVER},
        {"clicks": [IPHONE_GRAY], "purchase": IPHONE_SILVER},
        {"clicks": [IPHONE_SILVER], "purchase": IPHONE_GRAY},
        {"clicks": [], "purchase": IPHONE_GRAY},
        {"clicks": [IPHONE_GRAY], "purchase": IPHONE_GOLD},
    ]


def figure3_graph() -> PreferenceGraph:
    """The preference graph of Figure 3b.

    Node weights 0.4 / 0.4 / 0.2 for Silver / Space Gray / Gold; edges
    Silver->Gold 1/2, Silver->Space Gray 1/2, Space Gray->Silver 1/2,
    Gold->Space Gray 1.  The adaptation-engine tests assert that building
    a graph from :func:`figure3_sessions` reproduces this exactly.
    """
    return PreferenceGraph.from_weights(
        {IPHONE_SILVER: 0.4, IPHONE_GRAY: 0.4, IPHONE_GOLD: 0.2},
        edges=[
            (IPHONE_SILVER, IPHONE_GOLD, 0.5),
            (IPHONE_SILVER, IPHONE_GRAY, 0.5),
            (IPHONE_GRAY, IPHONE_SILVER, 0.5),
            (IPHONE_GOLD, IPHONE_GRAY, 1.0),
        ],
    )
