"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands mirror the system architecture:

* ``generate``   — synthesize a clickstream from a dataset spec or a
  custom consumer model, writing JSONL (optionally YooChoose CSV).
* ``build-graph`` — run the Data Adaptation Engine on a clickstream file
  and write the preference graph as JSON.
* ``solve``       — run the Preference Cover Solver on a graph file
  (fixed ``k`` or coverage ``--threshold``).
* ``pipeline``    — the end-to-end Figure 2 flow from a clickstream file.
* ``stats``       — dataset/graph statistics (Table 2-style).
* ``check``       — correctness harnesses; ``--differential`` proves all
  strategy x backend combinations select identical sets on random
  instances, ``--resilience`` proves killed+resumed solves match clean
  ones, ``--serving`` proves served answers equal offline recomputation,
  ``--fuzz`` runs the metamorphic fuzzer (adversarial instances checked
  against the invariant registry, failures shrunk to replayable JSON
  artifacts that ``--replay`` re-executes).  CI runs all of them at
  ``--smoke`` size.
* ``serve``       — the assortment serving layer: solve once, then
  answer a synthetic async query workload from the cached snapshot with
  micro-batching, optional drift periods and a telemetry report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .adaptation.engine import build_preference_graph
from .adaptation.variant_selection import recommend_variant
from .clickstream.io import read_jsonl, write_jsonl, write_yoochoose
from .facade import solve
from .graphio import read_graph_json, write_graph_json
from .core.variants import Variant
from .errors import ReproError
from .observability import SolverTrace
from .pipeline import InventoryReducer
from .workloads.datasets import PAPER_DATASETS, build_dataset


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset:
        clickstream, _model = build_dataset(
            args.dataset, scale=args.scale, seed=args.seed
        )
    else:
        from .clickstream.generator import ConsumerModel, ShopperConfig

        model = ConsumerModel(
            ShopperConfig(n_items=args.items, behavior=args.behavior),
            seed=args.seed,
        )
        clickstream = model.generate(args.sessions, seed=args.seed + 1)
    write_jsonl(clickstream, args.output)
    if args.yoochoose_prefix:
        write_yoochoose(
            clickstream,
            f"{args.yoochoose_prefix}-clicks.dat",
            f"{args.yoochoose_prefix}-buys.dat",
        )
    stats = clickstream.stats()
    print(
        f"wrote {stats['sessions']} sessions "
        f"({stats['purchases']} purchases, {stats['items']} items) "
        f"to {args.output}"
    )
    return 0


def _read_clickstream(args: argparse.Namespace):
    """Read the clickstream honoring the --lenient ingestion flags."""
    clickstream = read_jsonl(
        args.clickstream,
        on_error="quarantine" if args.lenient else "raise",
        error_budget=args.error_budget,
    )
    report = getattr(clickstream, "quarantine", None)
    if report is not None and report.quarantined:
        print(f"warning: {report.summary()}", file=sys.stderr)
    return clickstream


def _cmd_build_graph(args: argparse.Namespace) -> int:
    clickstream = _read_clickstream(args)
    if args.variant == "auto":
        recommendation = recommend_variant(clickstream)
        variant = recommendation.variant
        print(f"variant selected from data: {variant.value}")
    else:
        variant = Variant.coerce(args.variant)
    graph = build_preference_graph(
        clickstream, variant,
        min_edge_sessions=args.min_edge_sessions,
    )
    write_graph_json(graph, args.output)
    print(
        f"wrote graph with {graph.n_items} items / {graph.n_edges} edges "
        f"to {args.output}"
    )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = read_graph_json(args.graph)
    variant = Variant.coerce(args.variant)
    graph.validate(variant)
    if args.k is None and args.threshold is None:
        print("error: provide -k or --threshold", file=sys.stderr)
        return 2
    tracer = SolverTrace() if (args.trace or args.metrics) else None
    constraints = {}
    if args.must_retain:
        constraints["must_retain"] = args.must_retain
    if args.exclude:
        constraints["exclude"] = args.exclude
    checkpoint = None
    if args.checkpoint_dir:
        from .resilience import Checkpointer

        checkpoint = Checkpointer(
            args.checkpoint_dir,
            every_rounds=args.checkpoint_every,
            resume=args.resume,
        )
    guard = None
    if args.deadline_s is not None or args.max_rss_mb is not None:
        from .resilience import RunGuard

        guard = RunGuard(
            deadline_s=args.deadline_s,
            max_rss_mb=args.max_rss_mb,
            on_trigger="partial" if args.on_partial == "keep" else "raise",
        )
    result = solve(
        graph,
        variant=variant,
        k=args.k,
        threshold=args.threshold,
        strategy=args.strategy,
        constraints=constraints or None,
        tracer=tracer,
        workers=args.workers,
        parallel_backend=args.parallel_backend,
        kernels=args.kernels,
        checkpoint=checkpoint,
        guard=guard,
    )
    if result.interrupted:
        print(
            f"warning: solve interrupted ({result.interrupted_reason}); "
            f"the retained set below is the valid partial prefix",
            file=sys.stderr,
        )
    print(f"cover C(S) = {result.cover:.6f} with {len(result.retained)} items")
    for rank, item in enumerate(result.retained[: args.show], start=1):
        print(f"  {rank:4d}. {item}")
    if args.trace:
        try:
            tracer.write_jsonl(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 1
        iterations = len(tracer.events_of("iteration"))
        print(
            f"trace with {len(tracer)} events ({iterations} iterations) "
            f"written to {args.trace}"
        )
    if args.metrics:
        print(result.telemetry.summary())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle)
        print(f"full result written to {args.output}")
    # Exit 3 distinguishes a valid-but-partial result from success (0)
    # and errors (1/2) so batch schedulers can tell the cases apart.
    return 3 if result.interrupted else 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    clickstream = _read_clickstream(args)
    reducer = InventoryReducer(
        k=args.k,
        threshold=args.threshold,
        variant=args.variant,
        min_edge_sessions=args.min_edge_sessions,
    )
    report = reducer.run(clickstream)
    print(report.summary())
    print()
    print("top retained items:")
    for rank, item in enumerate(report.retained[: args.show], start=1):
        print(f"  {rank:4d}. {item}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.result.to_dict(), handle)
        print(f"full result written to {args.output}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .evaluation.audit import audit_retained_set
    from .evaluation.metrics import format_table

    graph = read_graph_json(args.graph)
    variant = Variant.coerce(args.variant)
    graph.validate(variant)
    if args.result:
        with open(args.result, "r", encoding="utf-8") as handle:
            retained = json.load(handle)["retained"]
    else:
        retained = args.items
    if not retained:
        print("error: provide --result or --items", file=sys.stderr)
        return 2
    audit = audit_retained_set(graph, retained, variant, top=args.top)
    print(audit.summary())
    print()
    print(format_table(
        [
            {
                "item": str(row.item),
                "requested": row.request_probability,
                "covered": row.covered,
                "lost": row.lost,
            }
            for row in audit.lost_demand
        ],
        title="largest demand losses",
    ))
    print()
    print(format_table(
        [
            {
                "item": str(row.item),
                "own_demand": row.own_demand,
                "absorbed": row.absorbed_demand,
                "contribution": row.total_contribution,
            }
            for row in audit.load_bearing
        ],
        title="load-bearing retained items",
    ))
    return 0


#: ``repro serve`` exit codes: 0 healthy (tier fresh), 3 finished on a
#: degraded tier (stale/static), 4 shed or unrecoverable.
SERVE_EXIT_DEGRADED = 3
SERVE_EXIT_SHED = 4


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import time as _time

    import numpy as np

    from .clickstream.drift import random_delta
    from .errors import DeadlineExceeded, ServingError
    from .serving import (
        AssortmentService, RetryPolicy, ServingFrontend, ServingRuntime,
        Tier,
    )

    if args.graph:
        graph = read_graph_json(args.graph)
    else:
        from .workloads.graphs import random_preference_graph

        graph = random_preference_graph(
            args.items, variant=args.variant, seed=args.seed
        )
    if args.k is None and args.threshold is None:
        args.k = min(50, max(1, graph.n_items // 2))
    service = AssortmentService(
        graph,
        variant=args.variant,
        k=args.k,
        threshold=args.threshold,
    )
    runtime = ServingRuntime(
        service,
        retry=RetryPolicy(max_attempts=args.retries, seed=args.seed),
        persist_dir=args.persist_dir,
        static_fallback=not args.no_static_fallback,
    )
    frontend = ServingFrontend(
        runtime,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
    )
    if args.log:
        from .observability import configure_logging

        configure_logging(args.log)
    exporter = None
    if args.metrics_port is not None:
        from .observability import MetricsExporter

        exporter = MetricsExporter(
            service.metrics,
            port=args.metrics_port,
            readiness=runtime.readiness,
        )
        exporter.start()
        # Announced on stderr so stdout stays a single JSON report;
        # harnesses scrape this line to learn the ephemeral port.
        print(f"metrics: {exporter.url}/metrics", file=sys.stderr)
    rng = np.random.default_rng(args.seed)
    item_ids = list(service.graph.items())
    periods = args.drift_periods + 1
    per_period = max(1, args.requests // periods)

    async def run() -> dict:
        rejected = 0
        answered = 0
        expired = 0
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, runtime.ensure)  # warm start
        start = _time.perf_counter()
        async with frontend:
            for period in range(periods):
                sent = 0
                while sent < per_period:
                    wave = min(args.concurrency, per_period - sent)
                    picks = rng.choice(len(item_ids), size=wave)
                    coros = []
                    for index in picks.tolist():
                        try:
                            coros.append(
                                frontend.covered_probability(
                                    item_ids[index]
                                )
                            )
                        except ReproError:
                            rejected += 1
                    answers = await asyncio.gather(
                        *coros, return_exceptions=True
                    )
                    answered += sum(
                        1 for a in answers if not isinstance(a, Exception)
                    )
                    expired += sum(
                        1 for a in answers
                        if isinstance(a, DeadlineExceeded)
                    )
                    rejected += sum(
                        1 for a in answers
                        if isinstance(a, Exception)
                        and not isinstance(a, DeadlineExceeded)
                    )
                    sent += wave
                if period < args.drift_periods:
                    delta = random_delta(
                        service.graph, sigma=args.drift_sigma,
                        seed=int(rng.integers(0, 2**31 - 1)),
                        sequence=period + 1,
                    )
                    await frontend._apply_delta(delta)
        elapsed = _time.perf_counter() - start
        return {
            "answered": answered,
            "rejected": rejected,
            "deadline_exceeded": expired,
            "elapsed_s": elapsed,
            "throughput_rps": answered / elapsed if elapsed > 0 else 0.0,
        }

    def _linger() -> None:
        # Keep the exporter scrapeable after the workload so harnesses
        # (CI obs-smoke, `repro top`) can observe the final state.
        if exporter is not None and args.linger_s > 0:
            _time.sleep(args.linger_s)

    try:
        try:
            workload = asyncio.run(run())
        except ServingError as exc:
            print(f"error: serving unrecoverable: {exc}", file=sys.stderr)
            _linger()
            return SERVE_EXIT_SHED
        return _serve_report(args, service, runtime, workload, _linger)
    finally:
        if exporter is not None:
            exporter.close()


def _serve_report(args, service, runtime, workload, linger) -> int:
    from .serving import Tier

    metrics = service.metrics
    latency = metrics.histogram("serving.request_latency_s")
    batches = metrics.histogram("serving.batch_size")
    report = {
        "variant": Variant.coerce(args.variant).value,
        "k": args.k,
        "threshold": args.threshold,
        "n_items": service.graph.n_items,
        "workload": workload,
        "latency_s": {"p50": latency.p50, "p99": latency.p99,
                      "mean": latency.mean},
        "batch_size": {"p50": batches.p50, "p99": batches.p99,
                       "mean": batches.mean, "max": batches.max},
        "store": service.stats(),
        "refresh_failures": service.refresh_failures,
        "runtime": {
            "tier": runtime.tier.label,
            "tier_transitions": runtime.tier_transitions,
            "breaker": runtime.breaker.snapshot(),
            "restored": runtime.restored,
            "shed_count": runtime.shed_count,
        },
    }
    payload = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    print(payload)
    sys.stdout.flush()
    linger()
    if runtime.tier is Tier.SHED or (
        workload["answered"] == 0 and args.requests > 0
    ):
        return SERVE_EXIT_SHED
    if runtime.tier is not Tier.FRESH:
        return SERVE_EXIT_DEGRADED
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .observability.console import top

    return top(
        args.url,
        interval_s=args.interval_s,
        iterations=args.iterations,
        color=not args.no_color,
    )


def _cmd_events(args: argparse.Namespace) -> int:
    from .observability.console import tail_events

    return tail_events(
        args.path,
        follow=args.follow,
        trace_id=args.trace_id,
        component=args.component,
        color=not args.no_color,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    if args.replay is not None:
        from .evaluation.fuzz import replay_artifact

        violations = replay_artifact(args.replay)
        if violations:
            print(f"replay {args.replay}: still failing")
            for violation in violations:
                print(f"  {violation}")
            return 1
        print(f"replay {args.replay}: no longer reproduces")
        return 0
    if not (
        args.differential or args.resilience or args.serving
        or args.serving_chaos or args.fuzz
    ):
        print(
            "error: nothing to check; pass --differential, --resilience, "
            "--serving, --serving-chaos and/or --fuzz "
            "(or --replay ARTIFACT)",
            file=sys.stderr,
        )
        return 2
    instances = args.instances
    max_items = args.max_items
    ok = True
    if args.differential:
        from .evaluation.differential import run_differential

        if args.smoke:
            d_instances = instances if instances is not None else 6
            d_max_items = max_items if max_items is not None else 60
        else:
            d_instances = instances if instances is not None else 50
            d_max_items = max_items if max_items is not None else 140
        report = run_differential(
            instances=d_instances,
            max_items=d_max_items,
            workers=args.workers,
            seed=args.seed,
            kernels=args.kernels,
            log=print if args.verbose else None,
        )
        print(report.summary())
        ok = ok and report.ok
    if args.resilience:
        from .evaluation.resilience import run_resilience_differential

        if args.smoke:
            r_instances = instances if instances is not None else 3
            r_max_items = max_items if max_items is not None else 48
        else:
            r_instances = instances if instances is not None else 25
            r_max_items = max_items if max_items is not None else 96
        report = run_resilience_differential(
            instances=r_instances,
            max_items=r_max_items,
            workers=args.workers,
            seed=args.seed,
            log=print if args.verbose else None,
        )
        print("resilience " + report.summary())
        ok = ok and report.ok
    if args.serving:
        from .evaluation.serving_check import run_serving_differential

        if args.smoke:
            s_instances = instances if instances is not None else 8
            s_max_items = max_items if max_items is not None else 60
        else:
            s_instances = instances if instances is not None else 50
            s_max_items = max_items if max_items is not None else 140
        report = run_serving_differential(
            instances=s_instances,
            max_items=s_max_items,
            seed=args.seed,
            log=print if args.verbose else None,
        )
        print(report.summary())
        ok = ok and report.ok
    if args.serving_chaos:
        from .evaluation.serving_chaos import run_serving_chaos

        if args.smoke:
            c_instances = instances if instances is not None else 4
            c_max_items = max_items if max_items is not None else 48
        else:
            c_instances = instances if instances is not None else 20
            c_max_items = max_items if max_items is not None else 96
        report = run_serving_chaos(
            instances=c_instances,
            max_items=c_max_items,
            seed=args.seed,
            log=print if args.verbose else None,
        )
        print(report.summary())
        ok = ok and report.ok
    if args.fuzz:
        from .evaluation.fuzz import run_fuzz

        if args.smoke:
            f_rounds = args.rounds if args.rounds is not None else 25
            f_max_items = max_items if max_items is not None else 32
        else:
            f_rounds = args.rounds if args.rounds is not None else 50
            f_max_items = max_items if max_items is not None else 48
        report = run_fuzz(
            rounds=f_rounds,
            seed=args.seed,
            max_items=f_max_items,
            artifact_dir=args.artifact_dir,
            log=print if args.verbose else None,
        )
        print(report.summary())
        ok = ok and report.ok
    return 0 if ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.graph:
        from .core.stats import graph_stats

        graph = read_graph_json(args.graph)
        print(json.dumps(graph_stats(graph).to_dict(), indent=2))
    elif args.clickstream:
        clickstream = read_jsonl(args.clickstream)
        stats = clickstream.stats()
        recommendation = recommend_variant(clickstream)
        print(json.dumps(
            {
                **stats,
                "recommended_variant": recommendation.variant.value,
                "normalized_fit": recommendation.normalized_fit,
                "independence_score": recommendation.independence_score,
            },
            indent=2,
        ))
    else:
        print("known dataset specs (paper Table 2):")
        for name, spec in PAPER_DATASETS.items():
            print(
                f"  {name}: sessions={spec.paper.sessions:,} "
                f"purchases={spec.paper.purchases:,} "
                f"items={spec.paper.items:,} edges={spec.paper.edges:,} "
                f"variant={spec.variant().value}"
            )
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Preference Cover inventory reduction (EDBT 2020)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a clickstream")
    generate.add_argument("--dataset", choices=sorted(PAPER_DATASETS),
                          help="paper dataset spec to emulate")
    generate.add_argument("--scale", type=float, default=0.002,
                          help="scale factor for dataset specs")
    generate.add_argument("--items", type=int, default=1000)
    generate.add_argument("--sessions", type=int, default=20000)
    generate.add_argument("--behavior",
                          choices=["independent", "normalized"],
                          default="independent")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--yoochoose-prefix", default=None,
                          help="also write YooChoose-format CSVs")
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build-graph",
                           help="clickstream -> preference graph")
    build.add_argument("clickstream")
    build.add_argument("--variant",
                       choices=["independent", "normalized", "auto"],
                       default="auto")
    build.add_argument("--min-edge-sessions", type=int, default=1)
    build.add_argument("--lenient", action="store_true",
                       help="quarantine malformed clickstream records "
                            "instead of failing on the first one")
    build.add_argument("--error-budget", type=float, default=0.05,
                       metavar="FRAC",
                       help="with --lenient, abort when more than this "
                            "fraction of records is bad (default: 0.05)")
    build.add_argument("-o", "--output", required=True)
    build.set_defaults(func=_cmd_build_graph)

    solve_cmd = sub.add_parser("solve", help="solve a preference graph")
    solve_cmd.add_argument("graph")
    solve_cmd.add_argument("--variant",
                           choices=["independent", "normalized"],
                           required=True)
    solve_cmd.add_argument("-k", type=int, default=None)
    solve_cmd.add_argument("--threshold", type=float, default=None)
    solve_cmd.add_argument("--strategy", default="auto")
    solve_cmd.add_argument("--workers", type=int, default=None,
                           help="worker processes for gain evaluation "
                                "(naive k solves and threshold solves)")
    solve_cmd.add_argument("--parallel-backend",
                           choices=["auto", "shm", "pipe", "serial"],
                           default="auto",
                           help="worker wire protocol (auto prefers "
                                "shared memory)")
    solve_cmd.add_argument("--kernels",
                           choices=["auto", "numpy", "numba"],
                           default=None,
                           help="arithmetic backend for the solver hot "
                                "loops (default: REPRO_KERNELS or auto)")
    solve_cmd.add_argument("--must-retain", nargs="*", default=[],
                           help="items that must stay in the assortment")
    solve_cmd.add_argument("--exclude", nargs="*", default=[],
                           help="items that may never be retained")
    solve_cmd.add_argument("--show", type=int, default=10,
                           help="how many retained items to print")
    solve_cmd.add_argument("--trace", default=None, metavar="PATH",
                           help="write the solver event stream (one JSONL "
                                "event per greedy iteration) to PATH")
    solve_cmd.add_argument("--metrics", action="store_true",
                           help="print the run's metrics summary")
    solve_cmd.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                           help="snapshot greedy state into DIR and resume "
                                "an interrupted solve from the longest "
                                "valid prefix")
    solve_cmd.add_argument("--checkpoint-every", type=int, default=8,
                           metavar="N",
                           help="snapshot cadence in committed selections "
                                "(default: 8)")
    solve_cmd.add_argument("--resume", dest="resume", action="store_true",
                           default=True,
                           help="resume from existing checkpoints "
                                "(default)")
    solve_cmd.add_argument("--no-resume", dest="resume",
                           action="store_false",
                           help="ignore existing checkpoints; write only")
    solve_cmd.add_argument("--deadline-s", type=float, default=None,
                           metavar="S",
                           help="wall-clock budget; the solve stops after "
                                "the round that crosses it")
    solve_cmd.add_argument("--max-rss-mb", type=float, default=None,
                           metavar="MB",
                           help="peak-RSS ceiling for the solve")
    solve_cmd.add_argument("--on-partial", choices=["keep", "error"],
                           default="keep",
                           help="tripped deadline/RSS guard: 'keep' prints "
                                "the valid partial prefix and exits 3, "
                                "'error' fails the run (default: keep)")
    solve_cmd.add_argument("-o", "--output", default=None)
    solve_cmd.set_defaults(func=_cmd_solve)

    pipe = sub.add_parser("pipeline", help="end-to-end Figure 2 flow")
    pipe.add_argument("clickstream")
    pipe.add_argument("--variant",
                      choices=["independent", "normalized", "auto"],
                      default="auto")
    pipe.add_argument("-k", type=int, default=None)
    pipe.add_argument("--threshold", type=float, default=None)
    pipe.add_argument("--min-edge-sessions", type=int, default=1)
    pipe.add_argument("--lenient", action="store_true",
                      help="quarantine malformed clickstream records "
                           "instead of failing on the first one")
    pipe.add_argument("--error-budget", type=float, default=0.05,
                      metavar="FRAC",
                      help="with --lenient, abort when more than this "
                           "fraction of records is bad (default: 0.05)")
    pipe.add_argument("--show", type=int, default=10)
    pipe.add_argument("-o", "--output", default=None)
    pipe.set_defaults(func=_cmd_pipeline)

    audit = sub.add_parser(
        "audit", help="lost-demand / load-bearing audit of a retained set"
    )
    audit.add_argument("graph")
    audit.add_argument("--variant",
                       choices=["independent", "normalized"],
                       required=True)
    audit.add_argument("--result", default=None,
                       help="result JSON from 'repro solve -o'")
    audit.add_argument("--items", nargs="*", default=[],
                       help="retained item ids (alternative to --result)")
    audit.add_argument("--top", type=int, default=10)
    audit.set_defaults(func=_cmd_audit)

    check = sub.add_parser(
        "check",
        help="correctness harnesses (differential strategy x backend)",
    )
    check.add_argument("--differential", action="store_true",
                       help="run the differential correctness harness")
    check.add_argument("--resilience", action="store_true",
                       help="run the crash/resume differential harness "
                            "(kill at a random round, resume from "
                            "checkpoints, compare with the clean solve)")
    check.add_argument("--serving", action="store_true",
                       help="run the serving differential harness "
                            "(served answers must equal offline "
                            "cover recomputation exactly)")
    check.add_argument("--serving-chaos", action="store_true",
                       help="run the serving chaos harness (runtime "
                            "invariants — bitwise answers, monotone "
                            "degradation, recovery, warm restart — "
                            "under injected refresh crashes/latency)")
    check.add_argument("--fuzz", action="store_true",
                       help="run the metamorphic fuzzer (adversarial "
                            "instances checked against the invariant "
                            "registry; failures shrink to minimal "
                            "replayable JSON artifacts)")
    check.add_argument("--rounds", type=int, default=None,
                       help="fuzz rounds (default: 50, or 25 with "
                            "--smoke)")
    check.add_argument("--replay", default=None, metavar="PATH",
                       help="re-execute one dumped fuzz artifact "
                            "instead of sweeping")
    check.add_argument("--artifact-dir", default=None, metavar="DIR",
                       help="where --fuzz dumps shrunken failure "
                            "artifacts (default: no dumping)")
    check.add_argument("--smoke", action="store_true",
                       help="CI-sized sweep (fewer/smaller instances)")
    check.add_argument("--instances", type=int, default=None,
                       help="random instances per variant "
                            "(default: 50, or 6 with --smoke)")
    check.add_argument("--max-items", type=int, default=None,
                       help="largest instance size "
                            "(default: 140, or 60 with --smoke)")
    check.add_argument("--workers", type=int, default=2,
                       help="worker processes per parallel pool")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--kernels",
                       choices=["auto", "numpy", "numba"],
                       default=None,
                       help="kernel backend forwarded to every solver")
    check.add_argument("--verbose", action="store_true",
                       help="print one progress line per instance")
    check.set_defaults(func=_cmd_check)

    serve = sub.add_parser(
        "serve",
        help="serve assortment queries from a cached solve snapshot",
    )
    serve.add_argument("graph", nargs="?", default=None,
                       help="preference-graph JSON (omit for a synthetic "
                            "instance)")
    serve.add_argument("--variant",
                       choices=["independent", "normalized"],
                       default="independent")
    serve.add_argument("-k", type=int, default=None,
                       help="retained-set size (default 50 when neither "
                            "-k nor --threshold is given)")
    serve.add_argument("--threshold", type=float, default=None,
                       help="cover target instead of -k")
    serve.add_argument("--items", type=int, default=500,
                       help="synthetic instance size (no graph file)")
    serve.add_argument("--requests", type=int, default=2000,
                       help="total queries in the synthetic workload")
    serve.add_argument("--concurrency", type=int, default=64,
                       help="concurrent in-flight queries per wave")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="micro-batching window in milliseconds")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="max queries answered per vectorized call")
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="admission-control queue ceiling")
    serve.add_argument("--persist-dir", default=None, metavar="DIR",
                       help="persist the last good snapshot into DIR "
                            "(and warm-restart from it on startup)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="per-query deadline; expired queries fail "
                            "fast with DeadlineExceeded")
    serve.add_argument("--retries", type=int, default=4,
                       help="refresh attempts per episode (exponential "
                            "backoff with seeded jitter; default: 4)")
    serve.add_argument("--no-static-fallback", action="store_true",
                       help="shed load instead of serving the static "
                            "top-K-by-weight fallback when no solved "
                            "snapshot exists")
    serve.add_argument("--drift-periods", type=int, default=0,
                       help="apply this many graph deltas mid-workload "
                            "(exercises incremental refresh + hot swap)")
    serve.add_argument("--drift-sigma", type=float, default=0.15,
                       help="popularity shock size per drift period")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="N",
                       help="expose /metrics, /healthz and /readyz on "
                            "127.0.0.1:N (0 picks an ephemeral port, "
                            "announced on stderr)")
    serve.add_argument("--log", default=None, metavar="PATH",
                       help="write JSON-lines structured events to PATH "
                            "('-' for stderr); also honours $REPRO_LOG")
    serve.add_argument("--linger-s", type=float, default=0.0,
                       metavar="S",
                       help="after the workload, keep the metrics "
                            "exporter scrapeable for S seconds")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("-o", "--output", default=None,
                       help="also write the JSON report to this file")
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live serving dashboard polling a /metrics endpoint",
    )
    top.add_argument("url", help="exporter base URL, e.g. "
                                 "http://127.0.0.1:9464")
    top.add_argument("--interval-s", type=float, default=2.0,
                     help="refresh period (default 2s)")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N frames (default: until Ctrl-C)")
    top.add_argument("--no-color", action="store_true",
                     help="plain ASCII output (no ANSI escapes)")
    top.set_defaults(func=_cmd_top)

    events = sub.add_parser(
        "events",
        help="pretty-print a structured event log (JSON lines)",
    )
    events.add_argument("path", help="event log file written via --log "
                                     "or $REPRO_LOG")
    events.add_argument("--follow", "-f", action="store_true",
                        help="keep reading as the file grows (tail -f)")
    events.add_argument("--trace-id", default=None,
                        help="only events belonging to this trace "
                             "(matches fan-in batch groups too)")
    events.add_argument("--component", default=None,
                        help="only events from this component")
    events.add_argument("--no-color", action="store_true",
                        help="plain ASCII output (no ANSI escapes)")
    events.set_defaults(func=_cmd_events)

    stats = sub.add_parser("stats", help="dataset statistics")
    stats.add_argument("--clickstream", default=None)
    stats.add_argument("--graph", default=None,
                       help="preference-graph JSON to summarize")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
