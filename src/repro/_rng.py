"""Shared random-number-generator plumbing.

Every stochastic component in this library (clickstream generators, the
Random baseline, Monte-Carlo replay) accepts a ``seed`` argument of type
:data:`SeedLike` and resolves it through :func:`resolve_rng`, so results
are reproducible end to end from a single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted as a seed: ``None`` (fresh entropy), an ``int``, or an
#: already-constructed :class:`numpy.random.Generator` (used as-is).
SeedLike = Union[None, int, np.random.Generator]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a ``Generator`` returns it unchanged, which lets callers thread
    one generator through a whole pipeline; an ``int`` gives a fresh,
    deterministic generator; ``None`` gives a nondeterministic one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a component needs to hand out generators to sub-components
    without correlating their streams.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
