"""Atomic greedy-state checkpoints and prefix-based resume.

The greedy algorithm's prefix property (paper Section 3.2) makes
checkpointing unusually clean: the solver's entire resumable state is
the ordered list of selections committed so far, and *any* saved prefix
is itself a valid greedy state.  A snapshot is therefore a small JSON
document::

    {"version": 1, "context": "<hex>", "epoch": 17, "digest": 123456,
     "order": [4, 0, 9, ...], "cover": 0.8312}

* ``context`` fingerprints the solve — graph structure and weights,
  variant, must-retain and exclude sets — so a checkpoint can never be
  replayed against a different instance;
* ``epoch``/``digest`` are PR 3's epoch-stamped protocol values: the
  selection count and the CRC-32 of the exact order, revalidated on
  load;
* ``order`` is the selection prefix replayed through ``AddNode`` on
  resume.

Writes are atomic (write temp file, flush, ``fsync``, ``os.replace``)
so a crash mid-write can never corrupt the latest snapshot — at worst
it leaves a stale ``.tmp`` file that the writer cleans up and the
loader ignores.  :meth:`Checkpointer.load` scans the directory for the
**longest valid prefix**: snapshots are tried newest-first and a
corrupt or mismatching file falls back to the next older one instead
of failing the resume.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Union

import numpy as np

from ..core.variants import Variant
from ..errors import ReproError
from ..observability import NULL_TRACER
from .faults import active_faults

#: Snapshot schema version.
CHECKPOINT_VERSION = 1

#: Filename shape: ``ckpt-<context>-<epoch>.json``.
_FILE_PREFIX = "ckpt-"


class CheckpointError(ReproError):
    """A checkpoint could not be written (write path only).

    Load-side problems — corrupt files, foreign contexts — are *not*
    errors: the loader simply skips to the next older snapshot, and a
    directory with no usable snapshot resumes from scratch.
    """


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    *,
    fail_hook: Optional[Callable[[], bool]] = None,
) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace).

    The payload is written to a same-directory temp file, flushed and
    ``fsync``-ed, then moved into place with ``os.replace`` — a crash
    at any point leaves either the old file or the new one, never a
    torn mix.  ``fail_hook`` is the fault-injection seam: when it
    returns ``True`` the write fails (:class:`CheckpointError`)
    *before* the rename, exactly where a real ``ENOSPC`` would bite.
    On any failure the temp file is removed and the error propagates;
    callers decide whether a lost snapshot is fatal (it usually is
    not).  Shared by :class:`Checkpointer` and the serving runtime's
    warm-restart snapshot persistence.
    """
    path = Path(path)
    tmp = path.with_name(f".tmp-{path.name}-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if fail_hook is not None and fail_hook():
            raise CheckpointError(
                "injected write failure (fault injection)"
            )
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def order_crc(order) -> int:
    """CRC-32 of a selection order (mirrors ``GreedyState.order_digest``)."""
    digest = 0
    for node in order:
        digest = zlib.crc32(struct.pack("<q", int(node)), digest)
    return digest


def solve_context(
    csr,
    variant,
    seed_indices: Optional[np.ndarray] = None,
    exclude_indices: Optional[np.ndarray] = None,
) -> str:
    """Fingerprint of one solve's inputs, as a hex string.

    Covers the graph structure (``in_ptr``/``in_src``), the edge and
    node weights, the variant, and the constraint sets — everything
    that determines the greedy selection order.  ``k`` and
    ``threshold`` are deliberately *excluded*: the prefix property
    makes a snapshot valid for any stopping rule over the same
    ordering, so a checkpoint taken during a ``k=500`` solve also
    resumes a ``k=200`` or threshold solve of the same instance.
    """
    digest = zlib.crc32(struct.pack("<qq", csr.n_items, csr.n_edges))
    digest = zlib.crc32(np.ascontiguousarray(csr.in_ptr).tobytes(), digest)
    digest = zlib.crc32(np.ascontiguousarray(csr.in_src).tobytes(), digest)
    digest = zlib.crc32(
        np.ascontiguousarray(csr.in_weight).tobytes(), digest
    )
    digest = zlib.crc32(
        np.ascontiguousarray(csr.node_weight).tobytes(), digest
    )
    digest = zlib.crc32(Variant.coerce(variant).value.encode("utf-8"), digest)
    for indices in (seed_indices, exclude_indices):
        values = (
            np.sort(np.asarray(indices, dtype=np.int64))
            if indices is not None else np.empty(0, dtype=np.int64)
        )
        digest = zlib.crc32(values.astype("<i8").tobytes(), digest)
    return f"{digest & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class Checkpoint:
    """One validated snapshot loaded from disk."""

    context: str
    epoch: int
    digest: int
    order: List[int]
    cover: float
    path: Path


class Checkpointer:
    """Periodic atomic snapshots of greedy state, plus resume.

    Args:
        directory: checkpoint directory (created on first write).
        every_rounds: snapshot cadence in committed selections.
        every_s: optional additional wall-clock cadence — a snapshot is
            taken when *either* trigger is due.
        keep: newest snapshots retained per context (older ones are
            pruned after each successful write).
        resume: whether solvers consult :meth:`load` before starting;
            with ``resume=False`` the checkpointer only writes.

    One checkpointer may serve many sequential solves (the context
    string keys each solve's snapshot family).  Write failures — real
    ``OSError`` or injected via the ``checkpoint_write`` fault — are
    counted and swallowed: losing a snapshot must never lose the solve.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        every_rounds: int = 8,
        every_s: Optional[float] = None,
        keep: int = 3,
        resume: bool = True,
    ) -> None:
        if every_rounds < 1:
            raise ReproError(
                f"every_rounds must be >= 1, got {every_rounds}"
            )
        if every_s is not None and every_s <= 0:
            raise ReproError(
                f"every_s must be positive or None, got {every_s}"
            )
        if keep < 1:
            raise ReproError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.every_rounds = every_rounds
        self.every_s = every_s
        self.keep = keep
        self.resume = resume
        self.written = 0
        self.write_failures = 0
        self.loads = 0
        self._rounds_since = 0
        self._last_write = time.monotonic()

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Reset the write cadence for a fresh solve."""
        self._rounds_since = 0
        self._last_write = time.monotonic()

    def _due(self) -> bool:
        if self._rounds_since >= self.every_rounds:
            return True
        if self.every_s is not None:
            return time.monotonic() - self._last_write >= self.every_s
        return False

    def maybe_save(self, state, context: str, tracer=NULL_TRACER) -> bool:
        """Snapshot when the cadence says so; swallow write failures."""
        self._rounds_since += 1
        if not self._due():
            return False
        return self.save(state, context, tracer=tracer)

    def save(self, state, context: str, tracer=NULL_TRACER) -> bool:
        """Write one snapshot now.  Returns False on a (counted) failure."""
        self._rounds_since = 0
        self._last_write = time.monotonic()
        payload = {
            "version": CHECKPOINT_VERSION,
            "context": context,
            "epoch": int(state.epoch),
            "digest": int(state.order_digest),
            "order": [int(v) for v in state.order],
            "cover": float(state.cover),
        }
        final = self.directory / (
            f"{_FILE_PREFIX}{context}-{payload['epoch']:010d}.json"
        )
        faults = active_faults()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                final,
                json.dumps(payload).encode("utf-8"),
                fail_hook=(
                    None if faults is None else faults.checkpoint_write_fails
                ),
            )
        except (OSError, CheckpointError) as exc:
            self.write_failures += 1
            if tracer.enabled:
                tracer.incr("resilience.checkpoint_write_failures")
                tracer.event(
                    "checkpoint.write_failed", error=str(exc),
                    epoch=payload["epoch"],
                )
            return False
        self.written += 1
        if tracer.enabled:
            tracer.incr("resilience.checkpoints_written")
            tracer.event(
                "checkpoint.written", epoch=payload["epoch"],
                path=str(final),
            )
        self._prune(context)
        return True

    def _prune(self, context: str) -> None:
        """Keep only the ``keep`` newest snapshots of this context."""
        try:
            snapshots = sorted(
                self.directory.glob(f"{_FILE_PREFIX}{context}-*.json")
            )
        except OSError:
            return
        for stale in snapshots[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def load(
        self, context: str, *, n_items: Optional[int] = None,
        tracer=NULL_TRACER,
    ) -> Optional[Checkpoint]:
        """The longest valid snapshot for ``context`` (or ``None``).

        Candidate files are tried newest (highest epoch) first; a file
        that is unreadable, structurally invalid, context-mismatched or
        digest-inconsistent is skipped, so a truncated latest snapshot
        falls back to the previous one instead of poisoning the resume.
        """
        self.loads += 1
        try:
            candidates = sorted(
                self.directory.glob(f"{_FILE_PREFIX}{context}-*.json"),
                reverse=True,
            )
        except OSError:
            return None
        for path in candidates:
            snapshot = self._read_valid(path, context, n_items)
            if snapshot is not None:
                if tracer.enabled:
                    tracer.event(
                        "checkpoint.loaded", epoch=snapshot.epoch,
                        path=str(path),
                    )
                return snapshot
            if tracer.enabled:
                tracer.incr("resilience.checkpoints_rejected")
        return None

    @staticmethod
    def _read_valid(
        path: Path, context: str, n_items: Optional[int]
    ) -> Optional[Checkpoint]:
        """Parse and validate one snapshot file; ``None`` when unusable."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CHECKPOINT_VERSION:
            return None
        if payload.get("context") != context:
            return None
        order = payload.get("order")
        epoch = payload.get("epoch")
        digest = payload.get("digest")
        cover = payload.get("cover")
        if (
            not isinstance(order, list)
            or not isinstance(epoch, int)
            or not isinstance(digest, int)
            or not isinstance(cover, (int, float))
        ):
            return None
        if len(order) != epoch:
            return None
        try:
            nodes = [int(v) for v in order]
        except (TypeError, ValueError):
            return None
        if n_items is not None and any(
            not (0 <= v < n_items) for v in nodes
        ):
            return None
        if len(set(nodes)) != len(nodes):
            return None
        if order_crc(nodes) != digest:
            return None
        return Checkpoint(
            context=context,
            epoch=epoch,
            digest=digest,
            order=nodes,
            cover=float(cover),
            path=path,
        )


def coerce_checkpointer(
    checkpoint: Union[None, str, Path, Checkpointer]
) -> Optional[Checkpointer]:
    """``None`` passes through; a path becomes a default Checkpointer."""
    if checkpoint is None or isinstance(checkpoint, Checkpointer):
        return checkpoint
    if isinstance(checkpoint, (str, Path)):
        return Checkpointer(checkpoint)
    raise ReproError(
        f"checkpoint must be a directory path or a Checkpointer, got "
        f"{type(checkpoint).__name__}"
    )
