"""Deterministic fault injection for chaos testing.

Production resilience claims are only as good as the failures they have
actually been tested against.  :class:`FaultInjector` is a seeded source
of synthetic faults that the runtime consults at well-defined hook
points:

* ``kill_round=N`` — the solver raises :class:`InjectedCrash` right
  after committing its ``N``-th selection, emulating a process killed
  mid-solve (checkpoints written so far survive on disk, exactly as
  they would after a real ``SIGKILL``);
* ``stop_round=N`` — the solver stops *gracefully* after committing
  its ``N``-th selection and returns the partial result flagged
  ``interrupted=True``, emulating any hook that asks a solve to halt
  without a run guard being configured;
* ``worker_crash=p`` — before each parallel gain round, one worker
  process is ``SIGKILL``-ed with probability ``p``, exercising the
  pool's supervision/restart path;
* ``recv_delay=s`` — the parent sleeps ``s`` seconds before collecting
  a parallel round, emulating a slow worker;
* ``checkpoint_write=p`` — a checkpoint write fails (before the atomic
  rename, so no partial file becomes visible) with probability ``p``;
* ``malformed_record=p`` — each ingested clickstream line is corrupted
  with probability ``p``, exercising the lenient-ingestion path;
* ``refresh_crash=p`` — a serving-layer snapshot solve (cold ``ensure``
  or delta-triggered refresh) fails with probability ``p``, emulating
  an intermittently poisoned refresh path — the fault the serving
  runtime's retry/breaker/degradation machinery exists to absorb;
* ``refresh_delay=s`` — every serving-layer snapshot solve stalls ``s``
  seconds first, emulating a slow backing solver (latency fault).

Injectors are activated either explicitly (``with inject_faults(inj):``)
or ambiently through the ``REPRO_FAULTS`` environment variable, whose
value is a ``key=value`` spec joined by ``:``, e.g.::

    REPRO_FAULTS="worker_crash=0.05:recv_delay=0.001:seed=7"

Everything is driven by one seeded :class:`random.Random`, so a given
spec replays the identical fault sequence for the identical call
sequence — which is what lets the chaos suite assert *equality* with
un-faulted runs instead of merely "it did not crash".
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..errors import ReproError


class InjectedCrash(ReproError):
    """A synthetic mid-solve crash requested by a :class:`FaultInjector`.

    Raised from the solver's per-round hook when ``kill_round`` fires;
    chaos harnesses catch exactly this type so a *real* defect
    (``SolverError`` etc.) still fails the test.
    """

    def __init__(self, round_no: int) -> None:
        super().__init__(
            f"injected crash at solver round {round_no} (fault injection)"
        )
        self.round_no = round_no


class InjectedRefreshFailure(ReproError):
    """A synthetic serving-refresh failure requested by an injector.

    Raised from the serving layer's snapshot-solve hook when a
    ``refresh_crash`` draw fires; the runtime's retry/breaker path and
    the chaos harness treat it exactly like a real transient refresh
    failure, while its distinct type keeps genuine defects
    (``SolverError`` etc.) visible.
    """


#: Recognized spec keys and their parsers.
_SPEC_KEYS = {
    "seed": int,
    "kill_round": int,
    "stop_round": int,
    "worker_crash": float,
    "recv_delay": float,
    "checkpoint_write": float,
    "malformed_record": float,
    "refresh_crash": float,
    "refresh_delay": float,
}


class FaultInjector:
    """Seeded synthetic-fault source consulted by the runtime hooks.

    Args:
        seed: RNG seed; the injected fault sequence is a pure function
            of the seed and the order of hook calls.
        kill_round: raise :class:`InjectedCrash` after the solver
            commits this many selections (``None`` disables).
        stop_round: ask the solver to stop cooperatively after this
            many committed selections; the solve returns its partial
            result flagged ``interrupted=True`` (``None`` disables).
        worker_crash: per-round probability of SIGKILLing one parallel
            worker.
        recv_delay: seconds the parent sleeps before collecting each
            parallel round (``0`` disables).
        checkpoint_write: per-write probability of a simulated
            checkpoint write failure.
        malformed_record: per-line probability of corrupting an
            ingested clickstream record.
        refresh_crash: per-solve probability that a serving snapshot
            refresh fails (:class:`InjectedRefreshFailure`) —
            intermittent by construction, so retries can succeed.
        refresh_delay: seconds every serving snapshot solve stalls
            before running (``0`` disables) — the latency fault.

    ``fired`` tallies every fault actually injected, keyed by kind, so
    tests can assert the chaos they asked for really happened.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        kill_round: Optional[int] = None,
        stop_round: Optional[int] = None,
        worker_crash: float = 0.0,
        recv_delay: float = 0.0,
        checkpoint_write: float = 0.0,
        malformed_record: float = 0.0,
        refresh_crash: float = 0.0,
        refresh_delay: float = 0.0,
    ) -> None:
        for name, value in (
            ("worker_crash", worker_crash),
            ("checkpoint_write", checkpoint_write),
            ("malformed_record", malformed_record),
            ("refresh_crash", refresh_crash),
        ):
            if not (0.0 <= value <= 1.0):
                raise ReproError(
                    f"fault probability {name} must be in [0, 1], "
                    f"got {value}"
                )
        if recv_delay < 0:
            raise ReproError(
                f"recv_delay must be >= 0, got {recv_delay}"
            )
        if refresh_delay < 0:
            raise ReproError(
                f"refresh_delay must be >= 0, got {refresh_delay}"
            )
        if kill_round is not None and kill_round < 1:
            raise ReproError(
                f"kill_round must be >= 1, got {kill_round}"
            )
        if stop_round is not None and stop_round < 1:
            raise ReproError(
                f"stop_round must be >= 1, got {stop_round}"
            )
        self.seed = seed
        self.kill_round = kill_round
        self.stop_round = stop_round
        self.worker_crash = worker_crash
        self.recv_delay = recv_delay
        self.checkpoint_write = checkpoint_write
        self.malformed_record = malformed_record
        self.refresh_crash = refresh_crash
        self.refresh_delay = refresh_delay
        self.rng = random.Random(seed)
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse a ``key=value:key=value`` spec (the ``REPRO_FAULTS`` form)."""
        kwargs = {}
        for part in spec.split(":"):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in _SPEC_KEYS:
                raise ReproError(
                    f"invalid REPRO_FAULTS entry {part!r}; expected "
                    f"key=value with key in {sorted(_SPEC_KEYS)}"
                )
            try:
                kwargs[key] = _SPEC_KEYS[key](raw.strip())
            except ValueError as exc:
                raise ReproError(
                    f"invalid REPRO_FAULTS value {part!r}: {exc}"
                ) from exc
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """Injector described by ``REPRO_FAULTS``, or ``None`` when unset."""
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        return cls.from_spec(spec) if spec else None

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1

    def fire(self, kind: str, probability: float) -> bool:
        """One Bernoulli draw for fault ``kind`` (tallied when it fires)."""
        if probability <= 0.0:
            return False
        if self.rng.random() < probability:
            self._count(kind)
            return True
        return False

    # -- hook points ----------------------------------------------------
    def solver_round(self, round_no: int) -> None:
        """Per-round solver hook: raise when ``kill_round`` is reached."""
        if self.kill_round is not None and round_no >= self.kill_round:
            self._count("kill_round")
            raise InjectedCrash(round_no)

    def solver_stop(self, round_no: int) -> Optional[str]:
        """Cooperative-stop hook: a reason to halt the solve, or ``None``.

        Unlike ``kill_round`` (which raises, emulating a dead process),
        ``stop_round`` asks the solver to stop *gracefully*: the solver
        treats the returned reason exactly like a tripped run guard and
        returns the partial result flagged ``interrupted=True`` — the
        stop-reason-without-a-guard path the fuzzer exercises.
        """
        if self.stop_round is not None and round_no >= self.stop_round:
            self._count("stop_round")
            return (
                f"injected cooperative stop at solver round {round_no} "
                f"(fault injection)"
            )
        return None

    def checkpoint_write_fails(self) -> bool:
        """Whether the next checkpoint write should fail."""
        return self.fire("checkpoint_write", self.checkpoint_write)

    def crash_worker_index(self, n_workers: int) -> Optional[int]:
        """Index of the pool worker to SIGKILL this round (or ``None``)."""
        if n_workers < 1:
            return None
        if not self.fire("worker_crash", self.worker_crash):
            return None
        return self.rng.randrange(n_workers)

    def round_delay_s(self) -> float:
        """Seconds to stall before collecting this parallel round."""
        if self.recv_delay > 0:
            self._count("recv_delay")
        return self.recv_delay

    def refresh_fails(self) -> bool:
        """Whether this serving snapshot solve should fail."""
        return self.fire("refresh_crash", self.refresh_crash)

    def refresh_delay_s(self) -> float:
        """Seconds to stall before this serving snapshot solve."""
        if self.refresh_delay > 0:
            self._count("refresh_delay")
        return self.refresh_delay

    def corrupt_record(self, line: str) -> str:
        """Possibly mangle one ingested line (malformed-record fault)."""
        if not self.fire("malformed_record", self.malformed_record):
            return line
        # Three representative corruption shapes: truncation (invalid
        # JSON), a schema violation (string "clicks"), and binary noise.
        shape = self.rng.randrange(3)
        if shape == 0:
            return line[: max(1, len(line) // 2)]
        if shape == 1:
            return '{"session_id": "injected", "clicks": "oops"}'
        return "\x00garbled\x00" + line[:8]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = {
            key: getattr(self, key)
            for key in _SPEC_KEYS
            if key != "seed" and getattr(self, key)
        }
        return f"FaultInjector(seed={self.seed}, {live})"


# ----------------------------------------------------------------------
# Ambient activation
# ----------------------------------------------------------------------
#: Sentinel distinguishing "no explicit context" from an explicit
#: ``inject_faults(None)``, which *suppresses* ambient faults.
_UNSET = object()

_ACTIVE = _UNSET
_ENV_SPEC: Optional[str] = None
_ENV_INJECTOR: Optional[FaultInjector] = None


def active_faults() -> Optional[FaultInjector]:
    """The injector the runtime should consult right now, if any.

    An explicitly activated injector (:func:`inject_faults`) wins —
    including ``inject_faults(None)``, which suppresses ambient faults
    for its block; otherwise the ``REPRO_FAULTS`` environment variable
    is consulted.  The env-derived injector is cached per spec string
    so one process draws from a single deterministic stream rather
    than re-seeding on every hook.
    """
    if _ACTIVE is not _UNSET:
        return _ACTIVE
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    global _ENV_SPEC, _ENV_INJECTOR
    if spec != _ENV_SPEC:
        # Parse before publishing: a spec that fails to parse must not
        # leave the previous spec's injector cached under the new key.
        injector = FaultInjector.from_spec(spec)
        _ENV_SPEC = spec
        _ENV_INJECTOR = injector
    return _ENV_INJECTOR


@contextmanager
def inject_faults(injector: Optional[FaultInjector]) -> Iterator[
    Optional[FaultInjector]
]:
    """Activate ``injector`` for the enclosed block (re-entrant).

    ``inject_faults(None)`` explicitly *disables* fault injection for
    the block, shadowing any ambient ``REPRO_FAULTS`` spec — the way a
    chaos test computes its un-faulted reference run.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
