"""Resilient pipeline runtime: checkpoint/resume, run guards, fault injection.

Three cooperating pieces make long solves survivable:

* :mod:`~repro.resilience.checkpoint` — periodic atomic snapshots of
  greedy state; ``greedy_solve(..., checkpoint=...)`` resumes from the
  longest valid prefix (the prefix property makes any saved prefix a
  valid greedy state);
* :mod:`~repro.resilience.guard` — cooperative per-round wall-clock
  deadlines and RSS ceilings with caller-selectable degradation
  (raise :class:`~repro.errors.SolverInterrupted` or return a partial
  result flagged ``interrupted=True``);
* :mod:`~repro.resilience.faults` — a deterministic seeded fault
  injector (worker crashes, recv delays, checkpoint-write failures,
  malformed records) selected via ``REPRO_FAULTS`` or
  :func:`inject_faults`, driving the chaos test suite.

See ``docs/resilience.md`` for the checkpoint format, guard semantics
and the fault matrix.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    Checkpointer,
    atomic_write_bytes,
    coerce_checkpointer,
    solve_context,
)
from .faults import (
    FaultInjector,
    InjectedCrash,
    InjectedRefreshFailure,
    active_faults,
    inject_faults,
)
from .guard import ON_TRIGGER, RunGuard, current_rss_mb

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "Checkpointer",
    "FaultInjector",
    "InjectedCrash",
    "InjectedRefreshFailure",
    "ON_TRIGGER",
    "RunGuard",
    "active_faults",
    "atomic_write_bytes",
    "coerce_checkpointer",
    "current_rss_mb",
    "inject_faults",
    "solve_context",
]
