"""Cooperative run guards: wall-clock deadlines and RSS ceilings.

A production solve on a YooChoose-scale catalog can run for hours; a
batch scheduler that kills it at its budget gets *nothing* unless the
solver degrades gracefully.  :class:`RunGuard` is the cooperative
alternative: the solver consults the guard once per committed round
and, when the deadline or memory ceiling has been crossed, either
raises :class:`~repro.errors.SolverInterrupted` (carrying the partial
result) or returns the partial :class:`~repro.core.result.SolveResult`
flagged ``interrupted=True`` — caller's choice via ``on_trigger``.

Because the check runs *after* each round, an interrupted solve always
keeps every selection it paid for, and the prefix property makes that
partial result a valid greedy solution for its own size.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from ..errors import ReproError

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    _resource = None

#: Accepted ``on_trigger`` modes.
ON_TRIGGER = ("raise", "partial")


def current_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (None when unknown)."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


class RunGuard:
    """Per-round budget guard for long-running solves.

    Args:
        deadline_s: wall-clock budget measured from :meth:`start`
            (``None`` disables the deadline).
        max_rss_mb: peak-RSS ceiling in MiB (``None`` disables; ignored
            with a one-time ``None`` probe on hosts without
            ``resource``).
        on_trigger: ``"raise"`` — the solver raises
            :class:`~repro.errors.SolverInterrupted` with the partial
            result attached; ``"partial"`` — the solver returns the
            partial result flagged ``interrupted=True``.

    The guard is reusable across solves: each solver entry point calls
    :meth:`start`, which re-arms the deadline.  Trip counts accumulate
    over the guard's lifetime (``deadline_hits`` / ``rss_hits``) and
    are mirrored to the tracer as ``guard.deadline_hits`` /
    ``guard.rss_hits`` by the solver.
    """

    def __init__(
        self,
        *,
        deadline_s: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
        on_trigger: str = "raise",
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ReproError(
                f"deadline_s must be >= 0 or None, got {deadline_s}"
            )
        if max_rss_mb is not None and max_rss_mb <= 0:
            raise ReproError(
                f"max_rss_mb must be positive or None, got {max_rss_mb}"
            )
        if on_trigger not in ON_TRIGGER:
            raise ReproError(
                f"unknown on_trigger {on_trigger!r}; expected one of "
                f"{ON_TRIGGER}"
            )
        if deadline_s is None and max_rss_mb is None:
            raise ReproError(
                "RunGuard needs at least one of deadline_s / max_rss_mb"
            )
        self.deadline_s = deadline_s
        self.max_rss_mb = max_rss_mb
        self.on_trigger = on_trigger
        self.deadline_hits = 0
        self.rss_hits = 0
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """(Re-)arm the deadline clock for a fresh solve."""
        self._t0 = time.monotonic()

    @property
    def elapsed_s(self) -> float:
        """Seconds since the guard was last armed."""
        return time.monotonic() - self._t0

    def trip_reason(self) -> Optional[str]:
        """Why the solve should stop now, or ``None`` to keep going."""
        if self.deadline_s is not None:
            elapsed = self.elapsed_s
            if elapsed > self.deadline_s:
                self.deadline_hits += 1
                return (
                    f"deadline of {self.deadline_s}s exceeded "
                    f"({elapsed:.3f}s elapsed)"
                )
        if self.max_rss_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss > self.max_rss_mb:
                self.rss_hits += 1
                return (
                    f"RSS ceiling of {self.max_rss_mb} MiB exceeded "
                    f"({rss:.1f} MiB peak)"
                )
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunGuard(deadline_s={self.deadline_s}, "
            f"max_rss_mb={self.max_rss_mb}, "
            f"on_trigger={self.on_trigger!r})"
        )
