"""Differential proof of crash/resume equivalence.

The checkpoint subsystem's correctness claim is sharp: a solve killed
at an arbitrary round and resumed from its checkpoints selects exactly
what the uninterrupted solve would have.  This harness proves it the
same way :mod:`repro.evaluation.differential` proves strategy/backend
equivalence — by running both sides on random instances and comparing
with :func:`~repro.evaluation.differential.compare_results`:

* **kill/resume** — for every ``{naive, lazy, accelerated}`` strategy
  crossed with every ``{serial, pipe, shm}`` evaluation backend, the
  solve is killed (via the deterministic ``kill_round`` fault) at a
  random round, then resumed from disk; the resumed result must match
  the clean run of the same combination.
* **corrupt-latest** — before one resume per instance the newest
  snapshot is truncated mid-file; the loader must fall back to an
  older snapshot (or restart from scratch) and still match.
* **guard-partial** — a deadline-interrupted solve must return a
  flagged, valid prefix of the clean selection.
* **threshold-resume** — the complementary threshold solver resumed
  from a killed run must match its clean counterpart.

Exposed on the CLI as ``repro check --resilience`` and run in CI at
smoke size by the chaos-smoke job.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.greedy import greedy_solve
from ..core.parallel import ParallelGainEvaluator
from ..core.threshold import greedy_threshold_solve
from ..errors import SolverError
from ..resilience import Checkpointer, FaultInjector, RunGuard, inject_faults
from ..resilience.faults import InjectedCrash
from .differential import (
    _GENERATORS,
    DifferentialFailure,
    DifferentialReport,
    STRATEGIES,
    compare_results,
)

#: Evaluation backends crossed with every strategy.  ``serial`` means no
#: worker pool; the pool backends are only *consulted* by the naive
#: strategy but are constructed (and torn down) for every combination,
#: which keeps the matrix honest about pool lifecycle under crashes.
RESILIENCE_BACKENDS = ("serial", "pipe", "shm")


def _solve_combo(
    graph, k, variant, strategy, backend, *, workers, timeout_s,
    checkpoint=None, guard=None,
):
    """One (strategy, backend) cell of the matrix, pool managed inline."""
    if backend == "serial":
        return greedy_solve(
            graph, k=k, variant=variant, strategy=strategy,
            checkpoint=checkpoint, guard=guard,
        )
    with ParallelGainEvaluator(
        graph, variant, n_workers=workers, backend=backend,
        timeout_s=timeout_s,
    ) as pool:
        return greedy_solve(
            graph, k=k, variant=variant, strategy=strategy, parallel=pool,
            checkpoint=checkpoint, guard=guard,
        )


def run_resilience_differential(
    *,
    instances: int = 25,
    min_items: int = 24,
    max_items: int = 96,
    workers: int = 2,
    seed: int = 0,
    variants: Sequence[str] = ("independent", "normalized"),
    strategies: Sequence[str] = STRATEGIES,
    backends: Sequence[str] = RESILIENCE_BACKENDS,
    timeout_s: Optional[float] = 30.0,
    log: Optional[Callable[[str], None]] = None,
) -> DifferentialReport:
    """Prove interrupted+resumed ≡ uninterrupted on random instances.

    Args:
        instances: random instances *per variant*.
        min_items / max_items: instance-size range (sampled uniformly).
        workers: worker processes per parallel pool.
        seed: base RNG seed; the sweep (including every kill round and
            checkpoint cadence) is fully deterministic given it.
        variants: problem variants to cover.
        strategies: greedy strategies to cross with ``backends``.
        backends: evaluation backends (``serial`` / ``pipe`` / ``shm``).
        timeout_s: supervision timeout for the worker pools.
        log: optional progress sink (one line per instance).

    Returns:
        A :class:`~repro.evaluation.differential.DifferentialReport`;
        ``report.ok`` is the verdict.
    """
    min_items = max(6, min(min_items, max_items))
    rng = np.random.default_rng(seed)
    report = DifferentialReport(
        instances=instances, variants=tuple(variants)
    )
    start = time.perf_counter()

    def record(variant, instance, combo, detail):
        report.checks += 1
        if detail is not None:
            report.failures.append(
                DifferentialFailure(
                    variant=variant, instance=instance, combo=combo,
                    detail=detail,
                )
            )

    for variant in variants:
        for index in range(instances):
            name, generator = _GENERATORS[index % len(_GENERATORS)]
            n = int(rng.integers(min_items, max_items + 1))
            case_seed = int(rng.integers(0, 2**31 - 1))
            instance = f"{name}#{index} n={n} seed={case_seed}"
            graph = generator(n, variant, case_seed)
            k = int(rng.integers(4, max(5, n // 2)))
            kill_round = int(rng.integers(1, k))
            cadence = int(rng.integers(1, 4))
            corrupt_combo = int(rng.integers(0, len(strategies)))

            clean_reference = greedy_solve(
                graph, k=k, variant=variant, strategy="naive",
            )

            for combo_no, strategy in enumerate(strategies):
                backend = backends[(index + combo_no) % len(backends)]
                combo = f"{strategy}/{backend}"
                clean = _solve_combo(
                    graph, k, variant, strategy, backend,
                    workers=workers, timeout_s=timeout_s,
                )
                with tempfile.TemporaryDirectory() as ckpt_dir:
                    crashed = False
                    try:
                        with inject_faults(
                            FaultInjector(kill_round=kill_round)
                        ):
                            _solve_combo(
                                graph, k, variant, strategy, backend,
                                workers=workers, timeout_s=timeout_s,
                                checkpoint=Checkpointer(
                                    ckpt_dir, every_rounds=cadence,
                                ),
                            )
                    except InjectedCrash:
                        crashed = True
                    record(
                        variant, instance, f"{combo} kill@{kill_round}",
                        None if crashed else "injected crash did not fire",
                    )
                    if combo_no == corrupt_combo:
                        # Truncate the newest snapshot: the loader must
                        # fall back instead of poisoning the resume.
                        snapshots = sorted(Path(ckpt_dir).glob("ckpt-*"))
                        if snapshots:
                            raw = snapshots[-1].read_bytes()
                            snapshots[-1].write_bytes(raw[: len(raw) // 2])
                    resumed = _solve_combo(
                        graph, k, variant, strategy, backend,
                        workers=workers, timeout_s=timeout_s,
                        checkpoint=Checkpointer(
                            ckpt_dir, every_rounds=cadence,
                        ),
                    )
                    leftovers = list(Path(ckpt_dir).glob(".tmp-*"))
                    record(
                        variant, instance, f"{combo} tmp-files",
                        f"leaked temp checkpoints: {leftovers}"
                        if leftovers else None,
                    )
                record(
                    variant, instance, f"{combo} resume==clean",
                    compare_results(clean, resumed),
                )
                record(
                    variant, instance, f"{combo} clean==reference",
                    compare_results(clean_reference, clean),
                )

            # Guard degradation: a deadline-interrupted solve returns a
            # flagged prefix of the clean selection.
            partial = greedy_solve(
                graph, k=k, variant=variant, strategy="accelerated",
                guard=RunGuard(deadline_s=0, on_trigger="partial"),
            )
            prefix_ok = (
                partial.interrupted
                and 0 < len(partial.retained) < k
                and list(partial.retained)
                == list(clean_reference.retained[: len(partial.retained)])
            )
            record(
                variant, instance, "guard-partial-prefix",
                None if prefix_ok else (
                    f"partial not a flagged clean prefix: "
                    f"interrupted={partial.interrupted} "
                    f"len={len(partial.retained)}"
                ),
            )

            # Threshold solver: killed + resumed must match clean.
            threshold = float(
                min(1.0, clean_reference.prefix_covers[max(2, k // 2)])
            )
            try:
                t_clean = greedy_threshold_solve(
                    graph, threshold=threshold, variant=variant,
                )
            except SolverError:
                t_clean = None  # threshold numerically unreachable
            if t_clean is not None and t_clean.k > 1:
                with tempfile.TemporaryDirectory() as ckpt_dir:
                    try:
                        with inject_faults(
                            FaultInjector(
                                kill_round=max(1, t_clean.k - 1)
                            )
                        ):
                            greedy_threshold_solve(
                                graph, threshold=threshold,
                                variant=variant,
                                checkpoint=Checkpointer(
                                    ckpt_dir, every_rounds=1,
                                ),
                            )
                    except InjectedCrash:
                        pass
                    t_resumed = greedy_threshold_solve(
                        graph, threshold=threshold, variant=variant,
                        checkpoint=Checkpointer(ckpt_dir),
                    )
                record(
                    variant, instance, "threshold-resume",
                    compare_results(t_clean, t_resumed),
                )
            if log is not None:
                log(
                    f"{variant} {instance}: "
                    f"{len(report.failures)} failure(s) so far"
                )

    report.wall_time_s = time.perf_counter() - start
    return report
