"""Monte-Carlo validation of the cover semantics.

The cover formulas of Definitions 2.1 and 2.2 are *claims* about
consumer behavior under each variant's probabilistic model.  This module
simulates that behavior directly — it never evaluates the closed forms —
so agreement between the simulated match rate and ``C(S)`` validates the
formulas (and, transitively, every solver built on them):

* a request is drawn from the node-weight distribution;
* if the requested item is retained, it is matched;
* otherwise, under the **Independent** variant each retained alternative
  is accepted by an independent coin flip with its edge probability (a
  match if any accepts); under the **Normalized** variant the consumer
  draws at most one acceptable alternative from the edge-weight
  distribution (a match iff that alternative is retained).

:func:`simulate_fulfillment` goes one step further and replays *shopping
sessions from a ground-truth consumer model* against a reduced
inventory, measuring realized sales — the business metric the paper's
inventory reduction is meant to protect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .._rng import SeedLike, resolve_rng
from ..core.cover import resolve_indices
from ..core.csr import as_csr
from ..core.variants import Variant
from ..errors import SolverError


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of a Monte-Carlo replay.

    Attributes:
        n_requests: simulated request count.
        n_matched: requests matched by the retained set.
        match_rate: ``n_matched / n_requests`` — the empirical cover.
        stderr: binomial standard error of the match rate.
    """

    n_requests: int
    n_matched: int
    match_rate: float
    stderr: float

    def confidence_interval(self, z: float = 2.576) -> tuple:
        """Normal-approximation CI (default 99%)."""
        return (
            max(0.0, self.match_rate - z * self.stderr),
            min(1.0, self.match_rate + z * self.stderr),
        )


def replay_match_rate(
    graph,
    retained: Iterable,
    variant: "Variant | str",
    *,
    n_requests: int = 100_000,
    seed: SeedLike = 0,
) -> ReplayReport:
    """Simulate ``n_requests`` consumer requests against ``retained``.

    The simulation samples acceptance outcomes per request (grouped by
    requested item for vectorization) and counts matches; it does not
    evaluate the closed-form cover.
    """
    variant = Variant.coerce(variant)
    if n_requests < 1:
        raise SolverError(f"n_requests must be >= 1, got {n_requests}")
    csr = as_csr(graph)
    rng = resolve_rng(seed)
    indices = resolve_indices(csr, retained)
    in_set = np.zeros(csr.n_items, dtype=bool)
    in_set[indices] = True

    weights = csr.node_weight
    total = weights.sum()
    if total <= 0:
        raise SolverError("graph has no request mass")
    probabilities = weights / total
    requested = rng.choice(csr.n_items, size=n_requests, p=probabilities)
    requested_items, request_counts = np.unique(requested, return_counts=True)

    matched = 0
    for item, count in zip(requested_items.tolist(), request_counts.tolist()):
        if in_set[item]:
            matched += count
            continue
        targets, edge_weights = csr.out_edges(item)
        retained_mask = in_set[targets]
        if variant is Variant.INDEPENDENT:
            accepted_weights = edge_weights[retained_mask]
            if accepted_weights.size == 0:
                continue
            # One independent coin per retained alternative per request.
            flips = (
                rng.random((count, accepted_weights.size))
                < accepted_weights[None, :]
            )
            matched += int(flips.any(axis=1).sum())
        else:
            # Draw at most one acceptable alternative per request from
            # the (sub-stochastic) edge distribution; index == degree
            # means "no alternative acceptable".
            if targets.size == 0:
                continue
            cumulative = np.cumsum(edge_weights)
            rolls = rng.random(count)
            choice = np.searchsorted(cumulative, rolls)
            valid = choice < targets.size
            if valid.any():
                matched += int(retained_mask[choice[valid]].sum())

    rate = matched / n_requests
    stderr = math.sqrt(max(rate * (1.0 - rate), 1e-12) / n_requests)
    return ReplayReport(
        n_requests=n_requests,
        n_matched=matched,
        match_rate=rate,
        stderr=stderr,
    )


def simulate_fulfillment(
    model,
    retained: Iterable,
    *,
    n_sessions: int = 50_000,
    seed: SeedLike = 0,
) -> ReplayReport:
    """Replay ground-truth shopper sessions against a reduced inventory.

    ``model`` is a :class:`repro.clickstream.generator.ConsumerModel`.
    Each session desires an item drawn from the model's popularity; if it
    is retained the sale happens, otherwise the shopper evaluates their
    *retained* alternatives under the model's behavior mode.  The
    returned match rate is the realized fraction of sessions ending in a
    sale — the quantity ``C(S)`` predicts when the preference graph
    matches the population.
    """
    rng = resolve_rng(seed)
    if n_sessions < 1:
        raise SolverError(f"n_sessions must be >= 1, got {n_sessions}")
    retained_ids = set(retained)
    retained_idx = np.zeros(model.config.n_items, dtype=bool)
    for index, item_id in enumerate(model.item_ids):
        if item_id in retained_ids or index in retained_ids:
            retained_idx[index] = True

    desired = rng.choice(
        model.config.n_items, size=n_sessions, p=model.popularity
    )
    matched = 0
    for item in desired.tolist():
        if retained_idx[item]:
            matched += 1
            continue
        alternatives = model.alternatives[item]
        acceptance = model.acceptance[item]
        keep = retained_idx[alternatives]
        if model.config.behavior == "independent":
            if keep.any():
                flips = rng.random(int(keep.sum())) < acceptance[keep]
                if flips.any():
                    matched += 1
        else:
            if alternatives.size:
                cumulative = np.cumsum(acceptance)
                choice = int(np.searchsorted(cumulative, rng.random()))
                if choice < alternatives.size and keep[choice]:
                    matched += 1

    rate = matched / n_sessions
    stderr = math.sqrt(max(rate * (1.0 - rate), 1e-12) / n_sessions)
    return ReplayReport(
        n_requests=n_sessions,
        n_matched=matched,
        match_rate=rate,
        stderr=stderr,
    )
