"""Chaos differential harness for the fault-tolerant serving runtime.

Where :mod:`repro.evaluation.serving_check` proves the serving layer
transparent on the happy path, this harness proves the
:class:`~repro.serving.ServingRuntime` keeps that guarantee *under
injected faults*.  Each instance runs a full lifecycle — clean start,
a burst of deltas with refresh crashes and latency injected, fault
clearance, then a warm restart into a fresh process-equivalent
service — and checks:

* **bitwise transparency at every tier** — whenever a snapshot is
  served (fresh, stale *or* the static top-K fallback), its
  conditional coverage vector equals an offline
  :func:`~repro.core.cover.item_coverage` recomputation over that
  snapshot's own graph and retained set, exactly
  (``np.array_equal``);
* **monotone degradation** — within a run of consecutive failed
  refresh episodes the tier never improves; only a *successful*
  refresh resets it to ``fresh``;
* **full recovery** — once faults clear, a refresh episode brings the
  runtime back to tier ``fresh``, the breaker back to ``closed``, and
  the served cover matches the offline reference;
* **warm restart** — a new runtime pointed at the persistence
  directory adopts the last good snapshot (same retained set, bitwise
  equal vectors) before any solve;
* **no leaks** — thread and file-descriptor counts after the sweep are
  no higher than before it (small constant slack for interpreter
  noise).

Fault intensities follow the ambient ``REPRO_FAULTS`` spec when one is
set (the CI job runs the harness under two different specs), falling
back to a built-in mix; either way each instance gets its *own* seeded
:class:`~repro.resilience.FaultInjector`, so a sweep is replayable
from its seed.  Exposed on the CLI as ``repro check --serving-chaos``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from tempfile import TemporaryDirectory
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..clickstream.drift import random_delta
from ..core.cover import cover, item_coverage
from ..errors import ServingError
from ..resilience import FaultInjector, active_faults, inject_faults
from ..serving import (
    AssortmentService,
    CircuitBreaker,
    RetryPolicy,
    ServingRuntime,
    Tier,
)
from ..workloads.graphs import (
    bounded_degree_graph,
    random_preference_graph,
    small_dense_graph,
)

#: Same instance-generator trio as the happy-path serving differential.
_GENERATORS: Tuple[Tuple[str, Callable], ...] = (
    ("sparse", lambda n, variant, seed: random_preference_graph(
        n, variant=variant, seed=seed)),
    ("dense", lambda n, variant, seed: small_dense_graph(
        n, variant=variant, seed=seed)),
    ("bounded", lambda n, variant, seed: bounded_degree_graph(
        n, variant=variant, seed=seed)),
)

#: Leak-check slack: the interpreter may lazily spin up a couple of
#: helper threads / fds (e.g. numpy's, tempfile's) on first use.
_THREAD_SLACK = 2
_FD_SLACK = 4


@dataclass(frozen=True)
class ChaosFailure:
    """One violated invariant under injected serving faults."""

    variant: str
    instance: str
    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.variant}/{self.instance}] {self.check}: {self.detail}"


@dataclass
class ServingChaosReport:
    """Outcome of one :func:`run_serving_chaos` sweep."""

    instances: int
    variants: Tuple[str, ...]
    checks: int = 0
    faults_fired: int = 0
    failures: List[ChaosFailure] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant held under every injected fault."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable one-paragraph verdict."""
        head = (
            f"serving chaos: {len(self.variants)} variant(s) x "
            f"{self.instances} instance(s), {self.checks} checks, "
            f"{self.faults_fired} fault(s) fired in "
            f"{self.wall_time_s:.1f}s -> "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        if self.ok:
            return head
        lines = [head]
        for failure in self.failures[:20]:
            lines.append(f"  {failure}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _open_fds() -> int:
    """Open file-descriptor count for this process (-1 when unknowable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-procfs platforms
        return -1


def _check_served(record, variant, instance, runtime, *, phase):
    """Bitwise transparency of whatever the runtime serves right now."""
    try:
        answers = runtime.answers(
            list(runtime.service.current_csr().items)
        )
    except ServingError:
        # Shed tier: nothing served, nothing to diverge.
        record(variant, instance, f"{phase}-shed-tier",
               None if runtime.tier is Tier.SHED else (
                   f"query shed but tier is {runtime.tier.label}"))
        return None
    snapshot, tier = runtime._best()
    offline = item_coverage(
        snapshot.graph, snapshot.result.retained, snapshot.variant
    )
    served = np.array([answer.value for answer in answers])
    record(
        variant, instance, f"{phase}-bitwise",
        None if np.array_equal(served, offline) else (
            f"served answers diverge from offline item_coverage at tier "
            f"{tier.label} (max delta "
            f"{float(np.max(np.abs(served - offline))):.3e})"
        ),
    )
    stamped = {answer.tier for answer in answers}
    record(
        variant, instance, f"{phase}-tier-stamp",
        None if stamped == {tier} else (
            f"answers stamped {sorted(t.label for t in stamped)}, "
            f"runtime says {tier.label}"
        ),
    )
    if tier in (Tier.FRESH, Tier.STALE):
        bad = [a for a in answers if a.staleness_s is None]
        record(
            variant, instance, f"{phase}-staleness-stamp",
            None if not bad else (
                f"{len(bad)} {tier.label} answer(s) missing a staleness "
                f"stamp"
            ),
        )
    return tier


def _fault_mix() -> Tuple[float, float]:
    """(refresh_crash, refresh_delay) — ambient spec wins when set."""
    ambient = active_faults()
    if ambient is not None and (
        ambient.refresh_crash > 0 or ambient.refresh_delay > 0
    ):
        return ambient.refresh_crash, ambient.refresh_delay
    return 0.7, 0.0005


def run_serving_chaos(
    *,
    instances: int = 20,
    min_items: int = 24,
    max_items: int = 96,
    deltas_per_instance: int = 6,
    seed: int = 0,
    variants: Sequence[str] = ("independent", "normalized"),
    log: Optional[Callable[[str], None]] = None,
) -> ServingChaosReport:
    """Drive the serving runtime through fault storms and check invariants.

    Args:
        instances: random instances generated *per variant*.
        min_items / max_items: instance-size range (sampled uniformly).
        deltas_per_instance: graph deltas applied during the fault storm.
        seed: base RNG seed; the sweep is fully deterministic given it
            (and the ambient ``REPRO_FAULTS`` spec, which sets the fault
            intensities).
        variants: problem variants to cover.
        log: optional progress sink (one line per instance).

    Returns:
        A :class:`ServingChaosReport`; ``report.ok`` is the verdict.
    """
    min_items = max(4, min(min_items, max_items))
    rng = np.random.default_rng(seed)
    report = ServingChaosReport(
        instances=instances, variants=tuple(variants)
    )
    start = time.perf_counter()
    threads_before = threading.active_count()
    fds_before = _open_fds()

    def record(variant, instance, check, detail):
        report.checks += 1
        if detail is not None:
            report.failures.append(
                ChaosFailure(
                    variant=variant, instance=instance, check=check,
                    detail=detail,
                )
            )

    crash, delay = _fault_mix()
    for variant in variants:
        for index in range(instances):
            name, generator = _GENERATORS[index % len(_GENERATORS)]
            n = int(rng.integers(min_items, max_items + 1))
            case_seed = int(rng.integers(0, 2**31 - 1))
            instance = f"{name}#{index} n={n} seed={case_seed}"
            graph = generator(n, variant, case_seed)
            k = int(rng.integers(1, n))
            injector = FaultInjector(
                refresh_crash=crash, refresh_delay=delay, seed=case_seed
            )

            with TemporaryDirectory(prefix="repro-chaos-") as tmp:
                service = AssortmentService(graph, variant=variant, k=k)
                runtime = ServingRuntime(
                    service,
                    retry=RetryPolicy(
                        max_attempts=3, base_delay_s=0.0, jitter=0.0,
                        seed=case_seed,
                    ),
                    breaker=CircuitBreaker(
                        window=8, min_calls=3, reset_timeout_s=0.0,
                    ),
                    persist_dir=tmp,
                )

                # Phase 1 — clean start: faults shielded, tier fresh.
                with inject_faults(None):
                    runtime.ensure()
                record(
                    variant, instance, "clean-tier",
                    None if runtime.tier is Tier.FRESH else (
                        f"clean start landed on tier {runtime.tier.label}"
                    ),
                )
                _check_served(record, variant, instance, runtime,
                              phase="clean")

                # Phase 2 — fault storm: deltas under refresh crashes
                # and latency.  Within a run of consecutive failed
                # episodes the tier must never improve.
                worst_since_success = runtime.tier
                with inject_faults(injector):
                    for step in range(deltas_per_instance):
                        delta = random_delta(
                            service.graph, sigma=0.2, edge_churn=0.05,
                            seed=case_seed + step,
                            sequence=service.stats()["sequence"] + 1,
                        )
                        runtime.apply_delta(delta)
                        tier = runtime.tier
                        if tier is Tier.FRESH:
                            worst_since_success = Tier.FRESH
                        else:
                            record(
                                variant, instance,
                                f"storm-monotone@{step}",
                                None if tier >= worst_since_success else (
                                    f"tier improved {worst_since_success.label}"
                                    f" -> {tier.label} without a successful "
                                    f"refresh"
                                ),
                            )
                            worst_since_success = max(
                                worst_since_success, tier
                            )
                        _check_served(
                            record, variant, instance, runtime,
                            phase=f"storm@{step}",
                        )
                report.faults_fired += sum(injector.fired.values())

                # Phase 3 — faults clear: one refresh episode must fully
                # recover (breaker may need its half-open probe first).
                with inject_faults(None):
                    recovered = runtime.refresh()
                    if recovered is None:  # breaker probe consumed
                        recovered = runtime.refresh()
                record(
                    variant, instance, "recovery-tier",
                    None if runtime.tier is Tier.FRESH
                    and recovered is not None else (
                        f"tier {runtime.tier.label} after faults cleared"
                    ),
                )
                record(
                    variant, instance, "recovery-breaker",
                    None if runtime.breaker.state == "closed" else (
                        f"breaker {runtime.breaker.state} after recovery"
                    ),
                )
                if recovered is not None:
                    offline_cover = cover(
                        recovered.graph, recovered.result.retained, variant
                    )
                    record(
                        variant, instance, "recovery-cover",
                        None if abs(
                            recovered.result.cover - offline_cover
                        ) <= 1e-9 else (
                            f"recovered cover {recovered.result.cover!r} != "
                            f"offline {offline_cover!r}"
                        ),
                    )
                _check_served(record, variant, instance, runtime,
                              phase="recovered")

                # Phase 4 — warm restart: a new runtime over the same
                # graph adopts the persisted last-good snapshot before
                # any solve, bitwise equal to what was being served.
                last_good = runtime.active_snapshot()
                with inject_faults(None):
                    reborn = ServingRuntime(
                        AssortmentService(
                            service.graph, variant=variant, k=k
                        ),
                        persist_dir=tmp,
                    )
                record(
                    variant, instance, "warm-restart",
                    None if reborn.restored else (
                        "restarted runtime did not adopt the persisted "
                        "snapshot"
                    ),
                )
                if reborn.restored and last_good is not None:
                    adopted = reborn.active_snapshot()
                    record(
                        variant, instance, "warm-restart-retained",
                        None if adopted.result.retained
                        == last_good.result.retained else (
                            "restored retained set differs from the last "
                            "good snapshot"
                        ),
                    )
                    record(
                        variant, instance, "warm-restart-bitwise",
                        None if np.array_equal(
                            adopted.conditional, last_good.conditional
                        ) else (
                            "restored conditional coverage diverges from "
                            "the last good snapshot"
                        ),
                    )
                _check_served(record, variant, instance, reborn,
                              phase="restart")

            if log is not None:
                log(
                    f"{variant} {instance}: "
                    f"{len(report.failures)} failure(s) so far"
                )

    threads_after = threading.active_count()
    record(
        "*", "sweep", "thread-leak",
        None if threads_after <= threads_before + _THREAD_SLACK else (
            f"{threads_after - threads_before} thread(s) leaked across "
            f"the sweep"
        ),
    )
    fds_after = _open_fds()
    if fds_before >= 0 and fds_after >= 0:
        record(
            "*", "sweep", "fd-leak",
            None if fds_after <= fds_before + _FD_SLACK else (
                f"{fds_after - fds_before} file descriptor(s) leaked "
                f"across the sweep"
            ),
        )

    report.wall_time_s = time.perf_counter() - start
    return report
