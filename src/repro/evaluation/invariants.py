"""The invariant-oracle registry the metamorphic fuzzer checks against.

The paper's structure gives the reproduction *free* correctness
oracles: the cover function ``C(S)`` is monotone submodular
(Section 3.1), the greedy order has the prefix property (Section 3.2),
and the threshold problem is the k-problem's dual — the threshold
solver must return exactly the shortest qualifying greedy prefix.  None
of these oracles share code with the solvers (they recompute ``C``
from scratch through :mod:`repro.core.cover`), so any solver path —
strategy, backend, kernel, extension, serving snapshot — can be checked
against them independently.

Every oracle is an :class:`Invariant` in the module registry:

``result-consistency``
    :class:`~repro.core.result.SolveResult` internal integrity —
    retained ids align with ``retained_indices`` through ``item_ids``,
    no duplicate selections, interruption flags coherent.
``coverage-accounting``
    ``cover == prefix_covers[-1] == coverage.sum()`` and the coverage
    array equals an independent :func:`~repro.core.cover.coverage_vector`
    recomputation from the retained *ids* (this is the oracle that
    catches id/index-ambiguity bugs in ``resolve_indices``).
``greedy-marginals``
    monotonicity and submodularity along the greedy chain: recomputed
    prefix covers match the solver's, marginal gains are nonnegative
    and (for unconstrained greedy) non-increasing.
``submodularity-spot``
    direct diminishing-returns spot checks
    ``gain(v | S_i) >= gain(v | S_j)`` for prefixes ``S_i ⊆ S_j`` and
    sampled outside nodes ``v``, all recomputed from scratch.
``prefix-property``
    a ``k``-solve equals the first ``k`` entries of the exhaustive
    greedy ordering (modulo the sanctioned noise-tie tail).
``threshold-boundary``
    a threshold solve reaches its target and is *minimal* — the
    next-shorter prefix does not qualify — and agrees with the
    shortest qualifying prefix of the full ordering.
``digest-stability``
    re-running the identical solve reproduces the identical
    ``context_digest``, selection and cover.
``serving-offline``
    a serving snapshot's answers equal offline recomputation exactly
    (the serving layer's transparency guarantee), including after
    :class:`~repro.clickstream.drift.GraphDelta` churn.

Adding a solver feature?  Register its oracle here with
:func:`register_invariant` and the fuzzer picks it up automatically —
see ``docs/fuzzing.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.cover import cover, coverage_vector, item_coverage
from ..core.csr import as_csr
from ..core.result import SolveResult
from ..core.variants import Variant

#: Marginal gains below this are floating-point noise (same floor as
#: the differential harness); invariants over recomputed covers use it
#: as the comparison tolerance.
NOISE = 1e-9

#: Modes whose ``result.cover`` is a probability cover recomputable by
#: :func:`repro.core.cover.cover` on the record's graph (``revenue``
#: solves a *scaled* graph and is checked separately).
_COVER_MODES = (
    "k", "threshold", "capacity", "quotas", "incremental", "serving",
)

#: Modes produced by the plain greedy chain, where marginal gains must
#: be non-increasing (constrained passes may legally reorder).
_GREEDY_MODES = ("k", "threshold", "incremental", "serving")


@dataclass
class SolveRecord:
    """Everything one fuzzed run hands to the invariant oracles.

    Only ``graph`` / ``variant`` / ``mode`` / ``result`` are mandatory;
    optional fields unlock the cross-run oracles (``order`` for the
    prefix property, ``replay`` for digest stability, ``snapshot`` for
    the serving differential).
    """

    graph: object  # CSRGraph
    variant: Variant
    mode: str
    result: SolveResult
    params: Dict = field(default_factory=dict)
    order: Optional[SolveResult] = None
    replay: Optional[SolveResult] = None
    snapshot: object = None  # serving SolutionSnapshot


@dataclass(frozen=True)
class InvariantViolation:
    """One oracle the run failed, with a human-readable explanation."""

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.invariant}: {self.detail}"


@dataclass(frozen=True)
class Invariant:
    """A registered oracle: when it applies and how it checks."""

    name: str
    description: str
    applies: Callable[[SolveRecord], bool]
    check: Callable[[SolveRecord], Optional[str]]


#: The registry, in registration (= checking) order.
INVARIANTS: "Dict[str, Invariant]" = {}


def register_invariant(
    name: str,
    *,
    applies: Optional[Callable[[SolveRecord], bool]] = None,
    description: str = "",
):
    """Decorator adding an oracle to the registry.

    ``applies`` gates the oracle per record (default: always); the
    decorated function receives the :class:`SolveRecord` and returns a
    failure detail string, or ``None`` when the invariant holds.
    """

    def wrap(func):
        INVARIANTS[name] = Invariant(
            name=name,
            description=description or (func.__doc__ or "").strip(),
            applies=applies or (lambda record: True),
            check=func,
        )
        return func

    return wrap


def applicable_invariants(record: SolveRecord) -> List[str]:
    """Names of the registered oracles that apply to ``record``."""
    names = []
    for name, inv in INVARIANTS.items():
        try:
            if inv.applies(record):
                names.append(name)
        except Exception:  # noqa: BLE001 - a broken gate means "applies"
            names.append(name)
    return names


def check_record(
    record: SolveRecord, names: Optional[Sequence[str]] = None
) -> List[InvariantViolation]:
    """Run every applicable registered oracle over one record.

    An oracle that *itself* crashes is reported as a violation rather
    than aborting the sweep — a broken oracle hides real bugs.
    """
    violations: List[InvariantViolation] = []
    for name, inv in INVARIANTS.items():
        if names is not None and name not in names:
            continue
        try:
            if not inv.applies(record):
                continue
            detail = inv.check(record)
        except Exception as exc:  # noqa: BLE001 - oracle must not abort
            detail = f"oracle crashed: {type(exc).__name__}: {exc}"
        if detail is not None:
            violations.append(
                InvariantViolation(invariant=name, detail=detail)
            )
    return violations


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
@register_invariant(
    "result-consistency",
    description="SolveResult internal integrity (ids/indices/flags)",
)
def _check_result_consistency(record: SolveRecord) -> Optional[str]:
    result = record.result
    n = record.graph.n_items
    indices = np.asarray(result.retained_indices)
    if len(result.retained) != indices.size:
        return (
            f"retained has {len(result.retained)} items but "
            f"retained_indices has {indices.size}"
        )
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        return f"retained index out of range [0, {n})"
    if np.unique(indices).size != indices.size:
        return "duplicate entries in retained_indices"
    for pos, (item, idx) in enumerate(
        zip(result.retained, indices.tolist())
    ):
        if result.item_ids[idx] != item:
            return (
                f"retained[{pos}] = {item!r} but item_ids"
                f"[{idx}] = {result.item_ids[idx]!r}"
            )
    if result.interrupted and result.interrupted_reason is None:
        return "interrupted result carries no interrupted_reason"
    if not result.interrupted and result.interrupted_reason is not None:
        return (
            f"uninterrupted result carries interrupted_reason="
            f"{result.interrupted_reason!r}"
        )
    return None


@register_invariant(
    "coverage-accounting",
    applies=lambda r: r.mode in _COVER_MODES,
    description="cover == prefix_covers[-1] == coverage.sum() == "
                "independent recomputation from item ids",
)
def _check_coverage_accounting(record: SolveRecord) -> Optional[str]:
    result = record.result
    total = float(np.sum(result.coverage))
    if abs(total - result.cover) > NOISE:
        return (
            f"coverage.sum() = {total!r} but cover = {result.cover!r}"
        )
    if result.prefix_covers is not None:
        prefix = np.asarray(result.prefix_covers, dtype=np.float64)
        if prefix.size != len(result.retained) + 1:
            return (
                f"prefix_covers has {prefix.size} entries for "
                f"{len(result.retained)} selections"
            )
        if prefix[0] != 0.0:
            return f"prefix_covers[0] = {prefix[0]!r}, expected 0.0"
        if abs(float(prefix[-1]) - result.cover) > NOISE:
            return (
                f"prefix_covers[-1] = {float(prefix[-1])!r} but cover "
                f"= {result.cover!r}"
            )
    # Independent recomputation through the item *ids* — this is where
    # an id/index ambiguity in resolve_indices surfaces.
    recomputed = coverage_vector(
        record.graph, result.retained, record.variant
    )
    if not np.allclose(recomputed, result.coverage, atol=NOISE, rtol=0.0):
        worst = float(np.max(np.abs(recomputed - result.coverage)))
        return (
            f"coverage array diverges from offline recomputation by "
            f"{worst:.3e} (id-based resolve)"
        )
    return None


@register_invariant(
    "greedy-marginals",
    applies=lambda r: (
        r.mode in _GREEDY_MODES
        and r.result.prefix_covers is not None
        and not r.params.get("must_retain")
    ),
    description="recomputed prefix covers match; marginal gains are "
                "nonnegative and non-increasing",
)
def _check_greedy_marginals(record: SolveRecord) -> Optional[str]:
    result = record.result
    prefix = np.asarray(result.prefix_covers, dtype=np.float64)
    # Recompute each prefix's cover from scratch (instances are small).
    for i in range(prefix.size):
        fresh = cover(record.graph, result.retained[:i], record.variant)
        if abs(fresh - float(prefix[i])) > NOISE:
            return (
                f"prefix_covers[{i}] = {float(prefix[i])!r} but "
                f"recomputed C(S_{i}) = {fresh!r}"
            )
    marginals = np.diff(prefix)
    if marginals.size and float(marginals.min()) < -NOISE:
        worst = int(np.argmin(marginals))
        return (
            f"monotonicity violated: marginal gain at position "
            f"{worst} is {float(marginals[worst])!r}"
        )
    rises = np.diff(marginals)
    if rises.size and float(rises.max()) > NOISE:
        worst = int(np.argmax(rises))
        return (
            f"marginal gains increase at position {worst + 1}: "
            f"{float(marginals[worst])!r} -> "
            f"{float(marginals[worst + 1])!r} (greedy violates "
            f"submodular argmax)"
        )
    return None


@register_invariant(
    "submodularity-spot",
    applies=lambda r: (
        r.mode in _GREEDY_MODES
        and len(r.result.retained) >= 2
        and not r.params.get("must_retain")
        and not r.params.get("exclude")
    ),
    description="gain(v | S_i) >= gain(v | S_j) for S_i ⊆ S_j, "
                "recomputed from scratch",
)
def _check_submodularity_spot(record: SolveRecord) -> Optional[str]:
    result = record.result
    graph = record.graph
    variant = record.variant
    retained = list(result.retained)
    outside = [
        item for item in as_csr(graph).items
        if item not in set(retained)
    ][:3]
    if not outside:
        return None
    cuts = sorted({0, len(retained) // 2, len(retained)})
    covers = {i: cover(graph, retained[:i], variant) for i in cuts}
    for v in outside:
        gains = []
        for i in cuts:
            with_v = cover(graph, retained[:i] + [v], variant)
            gain = with_v - covers[i]
            if gain < -NOISE:
                return (
                    f"monotonicity violated: gain({v!r} | S_{i}) = "
                    f"{gain!r} < 0"
                )
            gains.append(gain)
        for a in range(len(cuts) - 1):
            if gains[a + 1] > gains[a] + NOISE:
                return (
                    f"submodularity violated for {v!r}: gain at size "
                    f"{cuts[a + 1]} ({gains[a + 1]!r}) exceeds gain at "
                    f"size {cuts[a]} ({gains[a]!r})"
                )
    return None


@register_invariant(
    "prefix-property",
    applies=lambda r: (
        r.mode == "k"
        and r.order is not None
        and not r.result.interrupted
        and not r.params.get("must_retain")
        and not r.params.get("exclude")
    ),
    description="a k-solve equals the first k entries of the full "
                "greedy ordering (modulo noise ties)",
)
def _check_prefix_property(record: SolveRecord) -> Optional[str]:
    result = record.result
    order = record.order
    k = len(result.retained)
    if list(result.retained) == list(order.retained[:k]):
        return None
    # The selections differ — legal only for ties: when competing
    # candidates have (numerically) equal gains, strategies may break
    # the tie differently, but every prefix must then achieve the same
    # cover.  A genuinely wrong pick loses more than noise somewhere
    # along the chain.
    if result.prefix_covers is None or order.prefix_covers is None:
        return (
            f"k={k} selections diverge from the greedy-order prefix "
            f"and no prefix_covers are available to arbitrate"
        )
    res_prefix = np.asarray(result.prefix_covers, dtype=np.float64)
    ord_prefix = np.asarray(order.prefix_covers, dtype=np.float64)
    if res_prefix.size != k + 1 or ord_prefix.size < k + 1:
        return (
            f"prefix_covers too short to arbitrate a k={k} divergence"
        )
    gaps = np.abs(res_prefix - ord_prefix[: k + 1])
    worst = int(np.argmax(gaps))
    if float(gaps[worst]) > NOISE:
        return (
            f"k={k} solve diverges from the greedy-order prefix beyond "
            f"tie noise: C(S_{worst}) = {float(res_prefix[worst])!r} vs "
            f"ordering's {float(ord_prefix[worst])!r}"
        )
    return None


@register_invariant(
    "threshold-boundary",
    applies=lambda r: r.mode == "threshold" and not r.result.interrupted,
    description="a threshold solve reaches its target with the "
                "shortest qualifying greedy prefix",
)
def _check_threshold_boundary(record: SolveRecord) -> Optional[str]:
    result = record.result
    threshold = float(record.params["threshold"])
    if result.cover < threshold - 1e-12:
        return (
            f"threshold {threshold!r} not reached: cover = "
            f"{result.cover!r}"
        )
    prefix = np.asarray(result.prefix_covers, dtype=np.float64)
    if prefix.size >= 2 and float(prefix[-2]) >= threshold - 1e-12:
        return (
            f"not minimal: the {prefix.size - 2}-item prefix already "
            f"covers {float(prefix[-2])!r} >= threshold {threshold!r}"
        )
    if record.order is not None:
        order_prefix = np.asarray(
            record.order.prefix_covers, dtype=np.float64
        )
        qualifying = np.nonzero(order_prefix >= threshold - 1e-12)[0]
        if qualifying.size:
            shortest = int(qualifying[0])
            if result.k != shortest and abs(
                result.cover - float(order_prefix[shortest])
            ) > NOISE:
                return (
                    f"threshold solve retained {result.k} items but the "
                    f"shortest qualifying greedy prefix has {shortest}"
                )
    return None


@register_invariant(
    "digest-stability",
    applies=lambda r: r.replay is not None,
    description="re-running the identical solve reproduces the "
                "identical digest, selection and cover",
)
def _check_digest_stability(record: SolveRecord) -> Optional[str]:
    result, replay = record.result, record.replay
    if result.context_digest is None or replay.context_digest is None:
        return "facade did not stamp context_digest"
    if result.context_digest != replay.context_digest:
        return (
            f"context_digest unstable: {result.context_digest} vs "
            f"{replay.context_digest}"
        )
    if list(result.retained) != list(replay.retained):
        return "identical solve selected a different retained set"
    if result.cover != replay.cover:
        return (
            f"identical solve produced a different cover: "
            f"{result.cover!r} vs {replay.cover!r}"
        )
    return None


@register_invariant(
    "serving-offline",
    applies=lambda r: r.snapshot is not None,
    description="served answers equal offline recomputation exactly",
)
def _check_serving_offline(record: SolveRecord) -> Optional[str]:
    snapshot = record.snapshot
    graph = snapshot.graph
    offline = item_coverage(graph, snapshot.result.retained, record.variant)
    if not np.array_equal(snapshot.conditional, offline):
        worst = float(np.max(np.abs(snapshot.conditional - offline)))
        return (
            f"snapshot conditional coverage diverges from offline "
            f"item_coverage by {worst:.3e}"
        )
    mask = np.zeros(graph.n_items, dtype=bool)
    mask[
        [graph.index_of(item) for item in snapshot.result.retained]
    ] = True
    if not np.array_equal(snapshot.retained_mask, mask):
        return "retained_mask does not match retained-id membership"
    offline_cover = cover(graph, snapshot.result.retained, record.variant)
    if abs(snapshot.result.cover - offline_cover) > NOISE:
        return (
            f"snapshot cover {snapshot.result.cover!r} != offline "
            f"recomputation {offline_cover!r}"
        )
    return None
