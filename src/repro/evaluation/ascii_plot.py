"""Terminal plotting for the reproduced figures.

The offline environment has no plotting stack, so the figure drivers
render with text: horizontal bar charts (optionally log-scaled — the
paper's Figure 4b is a log-scale plot) and multi-series line plots on a
character grid (Figures 4c/4f).  Output is deterministic, making the
renderers testable.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

from ..errors import SolverError

#: Characters used for line-plot series, in assignment order.
SERIES_MARKS = "ox+*#@"


def bar_chart(
    labels: Sequence,
    values: Sequence[float],
    *,
    width: int = 50,
    title: Optional[str] = None,
    log_scale: bool = False,
    value_format: str = "{:.4g}",
) -> str:
    """Horizontal bar chart.

    With ``log_scale=True`` bar lengths are proportional to
    ``log10(value)`` shifted to the smallest positive value — the right
    rendering for quantities spanning orders of magnitude (Figure 4b's
    runtimes).  Zero/negative values draw empty bars.
    """
    if len(labels) != len(values):
        raise SolverError("labels and values must have equal length")
    if width < 1:
        raise SolverError(f"width must be >= 1, got {width}")
    if not values:
        return title or "(no data)"

    if log_scale:
        positive = [v for v in values if v > 0]
        if not positive:
            scaled = [0.0 for _ in values]
        else:
            low = math.log10(min(positive))
            high = math.log10(max(positive))
            span = max(high - low, 1e-12)
            scaled = [
                (math.log10(v) - low) / span if v > 0 else 0.0
                for v in values
            ]
    else:
        top = max(values)
        scaled = [v / top if top > 0 else 0.0 for v in values]

    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value, fraction in zip(labels, values, scaled):
        bar = "#" * max(0, round(fraction * width))
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value_format.format(value)}"
        )
    if log_scale:
        lines.append(f"{'':>{label_width}}  (log scale)")
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 15,
    title: Optional[str] = None,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker from :data:`SERIES_MARKS`; a legend and
    axis ranges are printed below the grid.  Points sharing a cell show
    the later series' marker.
    """
    if not xs:
        return title or "(no data)"
    if width < 2 or height < 2:
        raise SolverError("width and height must be >= 2")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise SolverError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}"
            )
    if len(series) > len(SERIES_MARKS):
        raise SolverError(
            f"at most {len(SERIES_MARKS)} series supported"
        )

    all_y = [y for ys in series.values() for y in ys]
    lo = min(all_y) if y_min is None else y_min
    hi = max(all_y) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = max(x_hi - x_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for mark, (name, ys) in zip(SERIES_MARKS, series.items()):
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - lo) / (hi - lo) * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.4g} +{'-' * width}+")
    for row in grid:
        lines.append(f"{'':10} |{''.join(row)}|")
    lines.append(f"{lo:10.4g} +{'-' * width}+")
    lines.append(f"{'':10}  x: {x_lo:g} .. {x_hi:g}")
    legend = "   ".join(
        f"{mark} {name}"
        for mark, name in zip(SERIES_MARKS, series.keys())
    )
    lines.append(f"{'':10}  {legend}")
    return "\n".join(lines)


def figure_4c_plot(rows: Sequence[Dict], *, width: int = 60) -> str:
    """Render coverage-curve rows (from ``coverage_curve``) as a plot."""
    xs = [row["k/n"] for row in rows]
    series_names = [
        key for key in rows[0] if key not in ("k/n", "k")
    ]
    series = {name: [row[name] for row in rows] for name in series_names}
    return line_plot(
        xs, series,
        width=width,
        title="coverage vs k/n",
        y_min=0.0, y_max=1.0,
    )
