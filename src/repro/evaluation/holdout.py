"""Holdout evaluation: score a retained set on unseen sessions.

The paper evaluates via the model's own cover function; an orthogonal,
assumption-light check is the standard ML protocol — split the
clickstream, build the graph on the training sessions, and measure on
the *held-out* sessions how many would plausibly have ended in a sale
against the reduced inventory:

* a test session whose purchased item is retained is **fulfilled**;
* otherwise, if the shopper *demonstrably considered* a retained item
  (clicked it during the session), the session counts as **substituted**
  — the revealed-preference analogue of accepting an alternative;
* otherwise the session is **lost**.

``fulfilled + substituted`` is an empirical, model-free counterpart to
``C(S)``; comparing selectors on it avoids rewarding a method for
merely agreeing with its own modeling assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from .._rng import SeedLike, resolve_rng
from ..clickstream.models import Clickstream
from ..errors import SolverError


@dataclass(frozen=True)
class HoldoutReport:
    """Session-level outcome counts on a held-out clickstream."""

    n_sessions: int        # purchasing sessions evaluated
    fulfilled: int         # purchased item retained
    substituted: int       # purchase dropped, but a clicked item retained
    lost: int              # no retained item touched the session

    @property
    def fulfillment_rate(self) -> float:
        """Fraction of sessions with the exact item available."""
        return self.fulfilled / self.n_sessions if self.n_sessions else 0.0

    @property
    def service_rate(self) -> float:
        """Fulfilled or substituted — the empirical analogue of C(S)."""
        if not self.n_sessions:
            return 0.0
        return (self.fulfilled + self.substituted) / self.n_sessions


def split_clickstream(
    clickstream: Clickstream,
    *,
    train_fraction: float = 0.8,
    seed: SeedLike = 0,
) -> Tuple[Clickstream, Clickstream]:
    """Random train/test split of the sessions."""
    if not (0.0 < train_fraction < 1.0):
        raise SolverError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    rng = resolve_rng(seed)
    sessions = list(clickstream)
    order = rng.permutation(len(sessions))
    cut = int(len(sessions) * train_fraction)
    train = Clickstream(sessions[i] for i in order[:cut])
    test = Clickstream(sessions[i] for i in order[cut:])
    return train, test


def evaluate_holdout(
    retained: Iterable,
    test_stream: Clickstream,
) -> HoldoutReport:
    """Score a retained set against held-out purchasing sessions."""
    retained_set = set(retained)
    fulfilled = substituted = lost = 0
    for session in test_stream:
        if session.purchase is None:
            continue
        if session.purchase in retained_set:
            fulfilled += 1
        elif any(
            item in retained_set for item in session.alternatives()
        ):
            substituted += 1
        else:
            lost += 1
    total = fulfilled + substituted + lost
    return HoldoutReport(
        n_sessions=total,
        fulfilled=fulfilled,
        substituted=substituted,
        lost=lost,
    )
