"""Business-facing audit of a retained-inventory decision.

The Figure 2 system's raw output (retained list + coverage array) needs
interpretation before an analyst signs off on removing items.  This
module answers the operational questions:

* how much demand is lost outright, and which items lose the most;
* which *retained* items carry the most substitute demand (the
  "load-bearing" items whose removal would be costly);
* which dropped items are fully absorbed by alternatives vs orphaned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

import numpy as np

from ..core.cover import coverage_vector
from ..core.csr import as_csr
from ..core.variants import Variant
from ..errors import SolverError


@dataclass(frozen=True)
class LostDemandRow:
    """One non-retained item's demand accounting."""

    item: Hashable
    request_probability: float
    covered: float       # probability requested AND matched
    lost: float          # probability requested AND NOT matched
    coverage_ratio: float  # covered / requested (0 when never requested)


@dataclass(frozen=True)
class LoadBearingRow:
    """One retained item's contribution accounting."""

    item: Hashable
    own_demand: float         # its own request probability
    absorbed_demand: float    # marginal cover it adds for *other* items
    total_contribution: float


@dataclass(frozen=True)
class InventoryAudit:
    """Full audit of a retained set on a preference graph."""

    variant: Variant
    total_cover: float
    total_lost: float
    lost_demand: List[LostDemandRow]       # worst-covered items first
    load_bearing: List[LoadBearingRow]     # highest contribution first
    orphaned_items: List[Hashable]         # dropped, with zero coverage

    def summary(self) -> str:
        """Short human-readable digest."""
        lines = [
            f"cover {self.total_cover:.4f}, lost demand "
            f"{self.total_lost:.4f}",
            f"orphaned items (dropped, no alternative retained): "
            f"{len(self.orphaned_items)}",
        ]
        if self.lost_demand:
            worst = self.lost_demand[0]
            lines.append(
                f"largest single loss: {worst.item!r} "
                f"({worst.lost:.4f} of demand)"
            )
        if self.load_bearing:
            top = self.load_bearing[0]
            lines.append(
                f"most load-bearing retained item: {top.item!r} "
                f"(absorbs {top.absorbed_demand:.4f} of others' demand)"
            )
        return "\n".join(lines)


def audit_retained_set(
    graph,
    retained,
    variant: "Variant | str",
    *,
    top: Optional[int] = None,
) -> InventoryAudit:
    """Audit a retained set (any iterable of item ids or indices).

    ``top`` truncates the per-item tables to the heaviest entries
    (both tables are sorted most-important-first regardless).
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    from ..core.cover import resolve_indices

    indices = resolve_indices(csr, retained)
    in_set = np.zeros(csr.n_items, dtype=bool)
    in_set[indices] = True

    coverage = coverage_vector(csr, indices, variant)
    weights = csr.node_weight
    lost = weights - coverage
    total_cover = float(coverage.sum())
    total_lost = float(lost.sum())

    lost_rows = []
    orphaned = []
    for v in np.flatnonzero(~in_set):
        w = float(weights[v])
        c = float(coverage[v])
        ratio = c / w if w > 0 else 0.0
        lost_rows.append(
            LostDemandRow(
                item=csr.items[v],
                request_probability=w,
                covered=c,
                lost=w - c,
                coverage_ratio=ratio,
            )
        )
        if c == 0.0 and w > 0.0:
            orphaned.append(csr.items[v])
    lost_rows.sort(key=lambda row: -row.lost)

    # Load-bearing analysis: each retained item's marginal contribution
    # relative to S - {r}, computed directly from the cover formulas
    # without rebuilding state per item:
    #   own term    = W(r) - (cover of r by its *other* retained
    #                 neighbors, from r's out-edges);
    #   absorbed    = sum over non-retained in-neighbors u of the
    #                 marginal r adds on u given the rest of S
    #                 (Normalized: W(u) * W(u, r); Independent:
    #                 W(u) * W(u, r) * prod over u's other retained
    #                 neighbors of (1 - w)).
    load_rows = []
    for r in indices.tolist():
        targets, target_weights = csr.out_edges(r)
        retained_out = in_set[targets]
        retained_out[targets == r] = False
        self_cover_prob = variant.match_probability(
            target_weights[retained_out].tolist()
        )
        own_term = float(weights[r]) * (1.0 - self_cover_prob)

        absorbed = 0.0
        sources, source_weights = csr.in_edges(r)
        for u, w_ur in zip(sources.tolist(), source_weights.tolist()):
            if in_set[u]:
                continue
            if variant is Variant.NORMALIZED:
                absorbed += float(weights[u]) * w_ur
            else:
                u_targets, u_weights = csr.out_edges(u)
                mask = in_set[u_targets] & (u_targets != r)
                survive = float(np.prod(1.0 - u_weights[mask]))
                absorbed += float(weights[u]) * w_ur * survive
        load_rows.append(
            LoadBearingRow(
                item=csr.items[r],
                own_demand=float(weights[r]),
                absorbed_demand=absorbed,
                total_contribution=own_term + absorbed,
            )
        )
    load_rows.sort(key=lambda row: -row.total_contribution)

    if top is not None:
        if top < 0:
            raise SolverError(f"top must be nonnegative, got {top}")
        lost_rows = lost_rows[:top]
        load_rows = load_rows[:top]

    return InventoryAudit(
        variant=variant,
        total_cover=total_cover,
        total_lost=total_lost,
        lost_demand=lost_rows,
        load_bearing=load_rows,
        orphaned_items=orphaned,
    )
