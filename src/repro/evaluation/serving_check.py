"""Differential correctness harness for the serving layer.

The serving layer's core guarantee is that it is *transparent*: an
answer read from a cached :class:`~repro.serving.SolutionSnapshot` is
bitwise-identical to recomputing the same quantity offline with
:mod:`repro.core.cover` on the same graph and retained set.  This
harness proves it the same way :mod:`repro.evaluation.differential`
proves solver-path equivalence — random valid instances per variant,
every served answer cross-checked against the offline reference, and
any divergence collected as a failure instead of being discovered in
production.

Checked per instance:

* the snapshot's full conditional coverage vector equals an offline
  :func:`~repro.core.cover.item_coverage` recomputation **exactly**
  (``np.array_equal``, no tolerance);
* ``covered_probability`` / ``query`` point reads match the vector and
  the retained-set membership;
* ``top_alternatives`` returns only retained out-neighbors, ordered by
  acceptance weight;
* a second ``ensure`` is a cache hit returning the identical snapshot
  object (no silent re-solve);
* after a random :class:`~repro.clickstream.drift.GraphDelta` the
  refreshed snapshot passes the same differential against the *updated*
  graph, and its cover matches a from-scratch facade solve.

Exposed on the CLI as ``repro check --serving`` and run in CI by the
serving-smoke job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..clickstream.drift import random_delta
from ..core.cover import cover, item_coverage
from ..serving import AssortmentService
from ..workloads.graphs import (
    bounded_degree_graph,
    random_preference_graph,
    small_dense_graph,
)

#: Instance generators cycled per case (same trio as the solver
#: differential: sparse cluster-local, dense, degree-bounded).
_GENERATORS: Tuple[Tuple[str, Callable], ...] = (
    ("sparse", lambda n, variant, seed: random_preference_graph(
        n, variant=variant, seed=seed)),
    ("dense", lambda n, variant, seed: small_dense_graph(
        n, variant=variant, seed=seed)),
    ("bounded", lambda n, variant, seed: bounded_degree_graph(
        n, variant=variant, seed=seed)),
)


@dataclass(frozen=True)
class ServingFailure:
    """One divergence between a served answer and its offline reference."""

    variant: str
    instance: str
    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.variant}/{self.instance}] {self.check}: {self.detail}"


@dataclass
class ServingReport:
    """Outcome of one :func:`run_serving_differential` sweep."""

    instances: int
    variants: Tuple[str, ...]
    checks: int = 0
    failures: List[ServingFailure] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every served answer matched its reference."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable one-paragraph verdict."""
        head = (
            f"serving differential: {len(self.variants)} variant(s) x "
            f"{self.instances} instance(s), {self.checks} checks in "
            f"{self.wall_time_s:.1f}s -> "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        if self.ok:
            return head
        lines = [head]
        for failure in self.failures[:20]:
            lines.append(f"  {failure}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _check_snapshot(record, variant, instance, service, snapshot, rng):
    """All read-path checks of one snapshot against the offline reference."""
    graph = snapshot.graph
    offline = item_coverage(graph, snapshot.result.retained, variant)
    record(
        variant, instance, "coverage-vector",
        None if np.array_equal(snapshot.conditional, offline) else (
            f"served conditional coverage diverges from offline "
            f"recomputation (max delta "
            f"{float(np.max(np.abs(snapshot.conditional - offline))):.3e})"
        ),
    )

    sample = rng.choice(
        graph.n_items, size=min(16, graph.n_items), replace=False
    )
    for index in sample.tolist():
        item = graph.items[index]
        served = service.covered_probability(item)
        if served != float(offline[index]):
            record(
                variant, instance, "point-read",
                f"covered_probability({item!r}) = {served!r}, offline "
                f"says {float(offline[index])!r}",
            )
            break
    else:
        record(variant, instance, "point-read", None)

    retained_set = set(snapshot.result.retained)
    rows = service.query([graph.items[i] for i in sample.tolist()])
    detail = None
    for row in rows:
        expected = row["item"] in retained_set
        if row["retained"] != expected:
            detail = (
                f"query({row['item']!r}).retained = {row['retained']}, "
                f"membership says {expected}"
            )
            break
    record(variant, instance, "query-membership", detail)

    detail = None
    for index in sample.tolist():
        item = graph.items[index]
        alternatives = service.top_alternatives(item, limit=8)
        weights = [weight for _, weight in alternatives]
        if any(alt not in retained_set for alt, _ in alternatives):
            detail = f"top_alternatives({item!r}) returned a dropped item"
            break
        if weights != sorted(weights, reverse=True):
            detail = f"top_alternatives({item!r}) not sorted by acceptance"
            break
        if item in retained_set and alternatives:
            detail = f"retained item {item!r} was offered alternatives"
            break
    record(variant, instance, "top-alternatives", detail)


def run_serving_differential(
    *,
    instances: int = 50,
    min_items: int = 24,
    max_items: int = 140,
    seed: int = 0,
    variants: Sequence[str] = ("independent", "normalized"),
    log: Optional[Callable[[str], None]] = None,
) -> ServingReport:
    """Cross-check served answers against offline recomputation.

    Args:
        instances: random instances generated *per variant*.
        min_items / max_items: instance-size range (sampled uniformly).
        seed: base RNG seed; the sweep is fully deterministic given it.
        variants: problem variants to cover.
        log: optional progress sink (one line per instance).

    Returns:
        A :class:`ServingReport`; ``report.ok`` is the verdict.
    """
    min_items = max(4, min(min_items, max_items))
    rng = np.random.default_rng(seed)
    report = ServingReport(instances=instances, variants=tuple(variants))
    start = time.perf_counter()

    def record(variant, instance, check, detail):
        report.checks += 1
        if detail is not None:
            report.failures.append(
                ServingFailure(
                    variant=variant, instance=instance, check=check,
                    detail=detail,
                )
            )

    for variant in variants:
        for index in range(instances):
            name, generator = _GENERATORS[index % len(_GENERATORS)]
            n = int(rng.integers(min_items, max_items + 1))
            case_seed = int(rng.integers(0, 2**31 - 1))
            instance = f"{name}#{index} n={n} seed={case_seed}"
            graph = generator(n, variant, case_seed)
            k = int(rng.integers(1, n))

            service = AssortmentService(graph, variant=variant, k=k)
            snapshot = service.ensure()
            _check_snapshot(record, variant, instance, service, snapshot, rng)

            again = service.ensure()
            record(
                variant, instance, "cache-hit",
                None if again is snapshot else (
                    "second ensure() re-solved instead of hitting the cache"
                ),
            )

            # Drift: apply a delta, then re-run the whole differential
            # against the refreshed snapshot and the *updated* graph.
            delta = random_delta(
                service.graph, sigma=0.2, edge_churn=0.05,
                seed=case_seed, sequence=service.stats()["sequence"] + 1,
            )
            refreshed = service.apply_delta(delta)
            record(
                variant, instance, "hot-swap",
                None if service.active is refreshed else (
                    "apply_delta did not swap the active snapshot"
                ),
            )
            _check_snapshot(
                record, variant, f"{instance}+delta", service, refreshed, rng
            )
            offline_cover = cover(
                refreshed.graph, refreshed.result.retained, variant
            )
            record(
                variant, instance, "post-delta-cover",
                None if refreshed.result.cover == offline_cover or
                abs(refreshed.result.cover - offline_cover) <= 1e-9 else (
                    f"refreshed cover {refreshed.result.cover!r} != offline "
                    f"{offline_cover!r}"
                ),
            )
            if log is not None:
                log(
                    f"{variant} {instance}: "
                    f"{len(report.failures)} failure(s) so far"
                )

    report.wall_time_s = time.perf_counter() - start
    return report
