"""Evaluation tooling: Monte-Carlo replay validation and metrics."""

from .ascii_plot import bar_chart, figure_4c_plot, line_plot
from .audit import (
    InventoryAudit,
    LoadBearingRow,
    LostDemandRow,
    audit_retained_set,
)
from .curves import (
    DEFAULT_ALGORITHMS,
    coverage_curve,
    marginal_gain_profile,
    threshold_curve,
)
from .differential import (
    DifferentialFailure,
    DifferentialReport,
    compare_results,
    run_differential,
)
from .fuzz import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    generate_case,
    replay_artifact,
    run_fuzz,
    shrink_case,
)
from .holdout import HoldoutReport, evaluate_holdout, split_clickstream
from .invariants import (
    INVARIANTS,
    Invariant,
    InvariantViolation,
    SolveRecord,
    check_record,
    register_invariant,
)
from .metrics import (
    approximation_ratio,
    coverage_comparison,
    format_table,
    lift,
)
from .replay import ReplayReport, replay_match_rate, simulate_fulfillment

__all__ = [
    "DEFAULT_ALGORITHMS",
    "bar_chart",
    "figure_4c_plot",
    "line_plot",
    "HoldoutReport",
    "evaluate_holdout",
    "split_clickstream",
    "DifferentialFailure",
    "DifferentialReport",
    "compare_results",
    "run_differential",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "generate_case",
    "replay_artifact",
    "run_fuzz",
    "shrink_case",
    "INVARIANTS",
    "Invariant",
    "InvariantViolation",
    "SolveRecord",
    "check_record",
    "register_invariant",
    "InventoryAudit",
    "LoadBearingRow",
    "LostDemandRow",
    "ReplayReport",
    "audit_retained_set",
    "coverage_curve",
    "marginal_gain_profile",
    "threshold_curve",
    "approximation_ratio",
    "coverage_comparison",
    "format_table",
    "lift",
    "replay_match_rate",
    "simulate_fulfillment",
]
