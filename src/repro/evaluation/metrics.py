"""Comparison metrics and plain-text reporting for experiments.

Small, dependency-free helpers the benchmark harness uses to print the
paper's tables and figure series: approximation ratios against an
optimum, lift over baselines, and a fixed-width ASCII table formatter
(benchmarks print rows rather than plot, per the reproduction protocol).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from ..core.result import SolveResult
from ..errors import SolverError


def approximation_ratio(achieved: float, optimal: float) -> float:
    """``achieved / optimal`` with the degenerate zero-optimum case = 1."""
    if optimal < 0:
        raise SolverError(f"optimal cover cannot be negative: {optimal}")
    if optimal == 0.0:
        return 1.0
    return achieved / optimal


def lift(candidate: float, baseline: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline``.

    Returns ``(candidate - baseline) / baseline``; infinite baselines of
    zero are reported as ``float("inf")`` when the candidate is positive
    and 0.0 otherwise.
    """
    if baseline == 0.0:
        return float("inf") if candidate > 0 else 0.0
    return (candidate - baseline) / baseline


def coverage_comparison(
    results: Mapping[str, SolveResult],
    *,
    reference: Optional[str] = None,
) -> List[dict]:
    """Rows comparing named solver results on one instance.

    Each row has the solver name, cover, wall time and (when
    ``reference`` is given) the ratio to the reference solver's cover.
    """
    reference_cover = None
    if reference is not None:
        if reference not in results:
            raise SolverError(f"reference {reference!r} not among results")
        reference_cover = results[reference].cover
    rows = []
    for name, result in results.items():
        row = {
            "algorithm": name,
            "cover": result.cover,
            "k": result.k,
            "wall_time_s": result.wall_time_s,
        }
        if reference_cover is not None:
            row["ratio_to_reference"] = approximation_ratio(
                result.cover, reference_cover
            )
        rows.append(row)
    return rows


def format_table(
    rows: Sequence[Mapping],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4f}",
    title: Optional[str] = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    Column order defaults to first-row key order.  Floats are formatted
    with ``float_format``; everything else with ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "  ".join("-" * widths[i] for i in range(len(cols)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
        for line in table
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)
