"""Differential correctness harness for the solver execution matrix.

Every execution path in this repository — the three greedy strategies,
the three parallel wire protocols, the pluggable kernel backends and
the complementary threshold solver — implements the *same* mathematical
selection rule (max marginal gain, lowest index on ties).  This module
continuously proves it: property-style generators sample random valid
instances per variant, every combination is run against the serial
naive reference, and any divergence in the retained selection or the
achieved cover is collected as a :class:`DifferentialFailure` instead
of being discovered in production.

Checked per instance:

* ``{naive, lazy, accelerated}`` serial strategies — byte-identical
  selections and bit-equal covers;
* ``{pipe, shm}`` parallel backends under the naive strategy — same;
* prefix consistency — ``greedy_threshold_solve`` must return exactly
  the shortest qualifying prefix of the full greedy ordering, and the
  parallel threshold path must match the serial one;
* evaluator reuse — one :class:`ParallelGainEvaluator` serving two
  sequential solves (and surviving a ``close()``/``start()`` cycle)
  must keep matching serial selections, the regression for the
  stale-replica bug the epoch protocol eliminates.

Exposed on the CLI as ``repro check --differential`` and run in CI at
smoke size next to the perf-smoke job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.greedy import greedy_solve
from ..core.parallel import ParallelGainEvaluator
from ..core.result import SolveResult
from ..core.threshold import greedy_threshold_solve
from ..workloads.graphs import (
    bounded_degree_graph,
    random_preference_graph,
    small_dense_graph,
)

#: Serial strategies compared against the naive reference.
STRATEGIES = ("naive", "lazy", "accelerated")

#: Worker-pool wire protocols compared against the serial reference.
POOL_BACKENDS = ("pipe", "shm")

#: Instance generators cycled per case: sparse cluster-local graphs,
#: dense Erdős–Rényi instances, and the degree-bounded hard regime.
_GENERATORS: Tuple[Tuple[str, Callable], ...] = (
    ("sparse", lambda n, variant, seed: random_preference_graph(
        n, variant=variant, seed=seed)),
    ("dense", lambda n, variant, seed: small_dense_graph(
        n, variant=variant, seed=seed)),
    ("bounded", lambda n, variant, seed: bounded_degree_graph(
        n, variant=variant, seed=seed)),
)


@dataclass(frozen=True)
class DifferentialFailure:
    """One divergence between an execution path and its reference."""

    variant: str
    instance: str
    combo: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.variant}/{self.instance}] {self.combo}: {self.detail}"
        )


@dataclass
class DifferentialReport:
    """Outcome of one :func:`run_differential` sweep."""

    instances: int
    variants: Tuple[str, ...]
    checks: int = 0
    failures: List[DifferentialFailure] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every combination matched its reference."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable one-paragraph verdict."""
        head = (
            f"differential: {len(self.variants)} variant(s) x "
            f"{self.instances} instance(s), {self.checks} checks in "
            f"{self.wall_time_s:.1f}s -> "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        if self.ok:
            return head
        lines = [head]
        for failure in self.failures[:20]:
            lines.append(f"  {failure}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


#: Marginal gains below this are floating-point noise: once the cover
#: saturates, every remaining candidate is a numerical tie and the
#: greedy argmax is ill-defined under finite-precision drift (the
#: "near-exact ties" caveat documented in :mod:`repro.core.greedy`).
NOISE_FLOOR = 1e-9


def compare_results(
    reference: SolveResult,
    candidate: SolveResult,
    *,
    noise: float = NOISE_FLOOR,
) -> Optional[str]:
    """Explain how ``candidate`` diverges from ``reference`` (or ``None``).

    Selections must be *identical* (same items, same order) and covers
    bit-equal — every path commits the same nodes through the same
    ``AddNode`` arithmetic, so even floating-point accumulation must
    agree exactly.  The single sanctioned exception is the saturated
    tail: when the reference's marginal gain at the divergence point is
    already below ``noise``, every remaining candidate is a numerical
    tie (incrementally-patched gain arrays drift by ~1 ulp and flip the
    argmax between candidates that differ by less than 1e-14), so the
    harness only requires the covers to agree within ``noise`` there.
    """
    ref_retained = list(reference.retained)
    cand_retained = list(candidate.retained)
    if cand_retained != ref_retained:
        width = min(len(ref_retained), len(cand_retained))
        diverged = next(
            (
                i for i in range(width)
                if ref_retained[i] != cand_retained[i]
            ),
            width,
        )
        prefix_covers = reference.prefix_covers
        if (
            prefix_covers is not None
            and diverged + 1 < len(prefix_covers)
            and prefix_covers[diverged + 1] - prefix_covers[diverged]
            <= noise
        ):
            # Tie tail: both paths are picking among noise-level gains.
            if abs(candidate.cover - reference.cover) <= noise:
                return None
            return (
                f"covers differ beyond the tie tail at position "
                f"{diverged}: {reference.cover!r} vs {candidate.cover!r}"
            )
        if diverged < width:
            return (
                f"selection diverges at position {diverged}: expected "
                f"{ref_retained[diverged:diverged + 3]!r}..., got "
                f"{cand_retained[diverged:diverged + 3]!r}..."
            )
        return (
            f"selection lengths differ: {len(ref_retained)} vs "
            f"{len(cand_retained)}"
        )
    if candidate.cover != reference.cover:
        return (
            f"cover differs: {reference.cover!r} vs {candidate.cover!r}"
        )
    return None


def _prefix_detail(
    order: SolveResult, threshold_result: SolveResult, threshold: float
) -> Optional[str]:
    """Check that a threshold solve is a prefix of the greedy ordering."""
    prefix = order.retained[: threshold_result.k]
    if list(threshold_result.retained) != list(prefix):
        return (
            f"threshold={threshold:.6f} selection is not a greedy "
            f"prefix: {threshold_result.retained!r} vs {prefix!r}"
        )
    if threshold_result.cover < threshold - 1e-12:
        return (
            f"threshold={threshold:.6f} not reached: cover="
            f"{threshold_result.cover!r}"
        )
    return None


def run_differential(
    *,
    instances: int = 50,
    min_items: int = 24,
    max_items: int = 140,
    workers: int = 2,
    seed: int = 0,
    variants: Sequence[str] = ("independent", "normalized"),
    backends: Sequence[str] = POOL_BACKENDS,
    kernels=None,
    timeout_s: Optional[float] = 30.0,
    log: Optional[Callable[[str], None]] = None,
) -> DifferentialReport:
    """Run the full strategy x backend differential sweep.

    Args:
        instances: random instances generated *per variant*.
        min_items / max_items: instance-size range (sampled uniformly).
        workers: worker processes per parallel pool.
        seed: base RNG seed; the sweep is fully deterministic given it.
        variants: problem variants to cover.
        backends: parallel wire protocols to cover (``pipe`` / ``shm``;
            protocols that degrade to ``serial`` on this host are still
            run — they then check the serial path twice, which is cheap
            and keeps the harness portable).
        kernels: kernel backend forwarded to every solver.
        timeout_s: supervision timeout for the worker pools.
        log: optional progress sink (one line per instance).

    Returns:
        A :class:`DifferentialReport`; ``report.ok`` is the verdict.
    """
    min_items = max(4, min(min_items, max_items))
    rng = np.random.default_rng(seed)
    report = DifferentialReport(
        instances=instances, variants=tuple(variants)
    )
    start = time.perf_counter()

    def record(variant, instance, combo, detail):
        report.checks += 1
        if detail is not None:
            report.failures.append(
                DifferentialFailure(
                    variant=variant, instance=instance, combo=combo,
                    detail=detail,
                )
            )

    for variant in variants:
        for index in range(instances):
            name, generator = _GENERATORS[index % len(_GENERATORS)]
            n = int(rng.integers(min_items, max_items + 1))
            case_seed = int(rng.integers(0, 2**31 - 1))
            instance = f"{name}#{index} n={n} seed={case_seed}"
            graph = generator(n, variant, case_seed)
            k = int(rng.integers(1, n))

            reference = greedy_solve(
                graph, k=k, variant=variant, strategy="naive",
                kernels=kernels,
            )
            for strategy in STRATEGIES[1:]:
                result = greedy_solve(
                    graph, k=k, variant=variant, strategy=strategy,
                    kernels=kernels,
                )
                record(
                    variant, instance, f"strategy={strategy}",
                    compare_results(reference, result),
                )
            for backend in backends:
                with ParallelGainEvaluator(
                    graph, variant, n_workers=workers, backend=backend,
                    kernels=kernels, timeout_s=timeout_s,
                ) as pool:
                    result = greedy_solve(
                        graph, k=k, variant=variant, strategy="naive",
                        kernels=kernels, parallel=pool,
                    )
                record(
                    variant, instance, f"backend={backend}",
                    compare_results(reference, result),
                )

            # Prefix consistency: the threshold solver must return the
            # shortest qualifying prefix of the full greedy ordering.
            # The target is anchored at a prefix whose closing marginal
            # gain sits above the noise floor, so the stopping point is
            # numerically unambiguous across execution paths.
            order = greedy_solve(
                graph, k=n, variant=variant, strategy="accelerated",
                kernels=kernels,
            )
            marginals = np.diff(reference.prefix_covers)
            signal = np.nonzero(marginals > 1e-6)[0]
            j = int(signal[min(len(signal) - 1, k // 2)]) + 1 \
                if signal.size else 1
            threshold = float(min(1.0, reference.prefix_covers[j]))
            t_serial = greedy_threshold_solve(
                graph, threshold=threshold, variant=variant,
                kernels=kernels,
            )
            record(
                variant, instance, "threshold-prefix",
                _prefix_detail(order, t_serial, threshold),
            )
            with ParallelGainEvaluator(
                graph, variant, n_workers=workers,
                backend=backends[index % len(backends)],
                kernels=kernels, timeout_s=timeout_s,
            ) as pool:
                t_parallel = greedy_threshold_solve(
                    graph, threshold=threshold, variant=variant,
                    kernels=kernels, parallel=pool,
                )
            record(
                variant, instance, "threshold-parallel",
                compare_results(t_serial, t_parallel),
            )
            if log is not None:
                log(
                    f"{variant} {instance}: "
                    f"{len(report.failures)} failure(s) so far"
                )

        # Evaluator reuse: one pool, two sequential solves, plus a full
        # close()/start() cycle — the stale-replica regression.
        reuse_seed = int(rng.integers(0, 2**31 - 1))
        graph = random_preference_graph(
            max_items, variant=variant, seed=reuse_seed
        )
        k1 = max(1, max_items // 4)
        k2 = max(1, max_items // 3)
        for backend in backends:
            pool = ParallelGainEvaluator(
                graph, variant, n_workers=workers, backend=backend,
                kernels=kernels, timeout_s=timeout_s,
            )
            instance = f"reuse n={max_items} seed={reuse_seed}"
            with pool:
                for solve_no, k in enumerate((k1, k2), start=1):
                    serial = greedy_solve(
                        graph, k=k, variant=variant, strategy="naive",
                        kernels=kernels,
                    )
                    result = greedy_solve(
                        graph, k=k, variant=variant, strategy="naive",
                        kernels=kernels, parallel=pool,
                    )
                    record(
                        variant, instance,
                        f"backend={backend} reuse-solve{solve_no}",
                        compare_results(serial, result),
                    )
            # Reopen after close: fresh forks, same evaluator object.
            with pool:
                serial = greedy_solve(
                    graph, k=k1, variant=variant, strategy="naive",
                    kernels=kernels,
                )
                result = greedy_solve(
                    graph, k=k1, variant=variant, strategy="naive",
                    kernels=kernels, parallel=pool,
                )
                record(
                    variant, instance,
                    f"backend={backend} reuse-after-close",
                    compare_results(serial, result),
                )

    report.wall_time_s = time.perf_counter() - start
    return report
