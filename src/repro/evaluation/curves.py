"""Series builders for the paper's figure-style analyses.

These produce the data series behind Figures 4c and 4f as reusable
library calls — coverage as a function of the budget for a set of
algorithms, and retained-set size as a function of the coverage target —
so analyses are not locked inside the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .._rng import SeedLike
from ..core.baselines import (
    random_solve,
    top_k_coverage_order,
    top_k_coverage_threshold,
    top_k_weight_order,
    top_k_weight_threshold,
)
from ..core.cover import cover
from ..core.csr import as_csr
from ..core.greedy import greedy_order
from ..core.threshold import greedy_threshold_solve
from ..core.variants import Variant
from ..errors import SolverError

#: The algorithm set of the paper's Figure 4c.
DEFAULT_ALGORITHMS = ("greedy", "topk-weight", "topk-coverage", "random")


def coverage_curve(
    graph,
    variant: "Variant | str",
    *,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    random_draws: int = 10,
    seed: SeedLike = 0,
) -> List[dict]:
    """Cover of each algorithm at each budget fraction (Figure 4c data).

    Orderings with the prefix property (greedy and both TopK rankings)
    are computed once and sliced per fraction, so the whole curve costs
    one full ordering per algorithm plus one exact cover evaluation per
    point.

    Returns one row per fraction: ``{"k/n": f, "k": k, "<algo>": cover}``.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    n = csr.n_items
    for fraction in fractions:
        if not (0.0 < fraction <= 1.0):
            raise SolverError(f"fraction {fraction} outside (0, 1]")
    unknown = set(algorithms) - set(DEFAULT_ALGORITHMS)
    if unknown:
        raise SolverError(
            f"unknown algorithms {sorted(unknown)}; expected a subset of "
            f"{DEFAULT_ALGORITHMS}"
        )

    orderings: Dict[str, np.ndarray] = {}
    greedy_prefix: Optional[np.ndarray] = None
    if "greedy" in algorithms:
        full = greedy_order(csr, variant=variant)
        orderings["greedy"] = full.retained_indices
        greedy_prefix = full.prefix_covers
    if "topk-weight" in algorithms:
        orderings["topk-weight"] = top_k_weight_order(csr)
    if "topk-coverage" in algorithms:
        orderings["topk-coverage"] = top_k_coverage_order(csr, variant)

    rows = []
    for fraction in fractions:
        k = max(1, int(n * fraction))
        row: dict = {"k/n": fraction, "k": k}
        for name in algorithms:
            if name == "greedy":
                row[name] = float(greedy_prefix[k])
            elif name == "random":
                row[name] = random_solve(
                    csr, k=k, variant=variant, seed=seed,
                    draws=random_draws,
                ).cover
            else:
                row[name] = cover(csr, orderings[name][:k], variant)
        rows.append(row)
    return rows


def threshold_curve(
    graph,
    variant: "Variant | str",
    *,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    include_baselines: bool = True,
) -> List[dict]:
    """Retained-set size per coverage target (Figure 4f data).

    Returns one row per threshold with the greedy size (and, when
    requested, the adapted TopK-W / TopK-C sizes).
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    rows = []
    for threshold in thresholds:
        greedy = greedy_threshold_solve(
            csr, threshold=threshold, variant=variant
        )
        row = {
            "threshold": threshold,
            "greedy": greedy.k,
            "greedy_cover": greedy.cover,
        }
        if include_baselines:
            row["topk-weight"] = top_k_weight_threshold(
                csr, threshold=threshold, variant=variant
            ).k
            row["topk-coverage"] = top_k_coverage_threshold(
                csr, threshold=threshold, variant=variant
            ).k
        rows.append(row)
    return rows


def marginal_gain_profile(
    graph,
    variant: "Variant | str",
    *,
    k: Optional[int] = None,
) -> np.ndarray:
    """Per-iteration marginal gains of the greedy run (diminishing returns).

    Useful for picking a budget: the curve's knee is where additional
    items stop paying for themselves.  Returns an array of length
    ``k`` (default ``n``).
    """
    csr = as_csr(graph)
    result = greedy_order(csr, variant=variant)
    gains = np.diff(result.prefix_covers)
    if k is not None:
        gains = gains[:k]
    return gains
