"""Seeded metamorphic fuzzer over the solver execution matrix.

The differential harness (:mod:`repro.evaluation.differential`) proves
that every execution path makes the *same* selections on well-behaved
random instances.  This module attacks the complementary blind spot:
instances and configurations that well-behaved generators never emit —
zero-weight items, duplicate edge records, near-tie gains, disconnected
nodes, integer item ids that are *not* dense indices, probability-one
edges — combined with random solver configurations across strategies,
parallel backends, extensions and ambient fault injection.  Every run
is checked against the invariant registry
(:mod:`repro.evaluation.invariants`); the oracles recompute the paper's
cover function from scratch, so they need no reference implementation
to disagree with.

Failing cases are shrunk delta-debugging style (drop items, then drop
edges, keeping the failure alive) down to a minimal reproduction and
dumped as a replayable JSON artifact::

    repro check --fuzz --rounds 200 --seed 7 --artifact-dir out/
    repro check --fuzz --replay out/fuzz-7-0042.json

Everything is a pure function of ``(seed, rounds)`` — a failure found
in CI replays locally from either the artifact or the seed alone.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.graph import PreferenceGraph
from ..core.greedy import greedy_solve
from ..core.variants import Variant
from ..resilience.faults import FaultInjector, inject_faults
from .invariants import (
    InvariantViolation,
    SolveRecord,
    applicable_invariants,
    check_record,
)

#: Artifact schema version (bump on incompatible FuzzCase changes).
ARTIFACT_VERSION = 1

#: Solve modes the generator samples, with selection weights.  Plain
#: ``k`` dominates because it exercises the widest oracle set (prefix
#: property + marginals + digest stability).
_MODES: Tuple[Tuple[str, int], ...] = (
    ("k", 7),
    ("threshold", 4),
    ("capacity", 2),
    ("quotas", 2),
    ("revenue", 2),
    ("incremental", 2),
    ("serving", 1),
)

_STRATEGIES = ("auto", "naive", "lazy", "accelerated")
_BACKENDS = ("pipe", "shm", "serial")


@dataclass
class FuzzCase:
    """One fully-specified fuzzed instance + solver configuration.

    JSON-serializable by construction so every failure is a replayable
    artifact: per-item mappings (costs, categories, revenues) are kept
    as ``[item, value]`` pair lists, which survive a JSON round-trip
    even when item ids are integers (JSON object keys are strings).
    """

    items: List
    node_weights: List[float]
    edges: List[List]  # [src, dst, weight]; duplicates upsert in order
    variant: str
    mode: str
    strategy: str = "auto"
    workers: Optional[int] = None
    backend: str = "auto"
    k: Optional[int] = None
    threshold: Optional[float] = None
    budget: Optional[float] = None
    costs: Optional[List[List]] = None
    categories: Optional[List[List]] = None
    quotas: Optional[List[List]] = None
    revenues: Optional[List[List]] = None
    must_retain: Optional[List] = None
    exclude: Optional[List] = None
    faults: Optional[str] = None  # REPRO_FAULTS-style spec
    delta_seed: Optional[int] = None  # serving-mode churn seed

    def build_graph(self) -> PreferenceGraph:
        """Materialize the mutable graph (duplicate edges upsert)."""
        graph = PreferenceGraph()
        for item, weight in zip(self.items, self.node_weights):
            graph.add_item(item, weight=weight)
        for src, dst, weight in self.edges:
            graph.add_edge(src, dst, weight=weight)
        return graph

    def to_dict(self) -> Dict:
        out = {
            "items": list(self.items),
            "node_weights": [float(w) for w in self.node_weights],
            "edges": [[s, d, float(w)] for s, d, w in self.edges],
            "variant": self.variant,
            "mode": self.mode,
            "strategy": self.strategy,
            "backend": self.backend,
        }
        for key in (
            "workers", "k", "threshold", "budget", "costs", "categories",
            "quotas", "revenues", "must_retain", "exclude", "faults",
            "delta_seed",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: Dict) -> "FuzzCase":
        kwargs = dict(payload)
        return cls(**kwargs)


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation (or crash) with its shrunken repro."""

    round_no: int
    invariant: str
    detail: str
    case: FuzzCase
    artifact: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" [{self.artifact}]" if self.artifact else ""
        return (
            f"round {self.round_no} ({self.case.mode}/"
            f"{self.case.variant}, n={len(self.case.items)}): "
            f"{self.invariant}: {self.detail}{where}"
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` sweep."""

    rounds: int
    seed: int
    checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every round satisfied every applicable oracle."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable one-paragraph verdict."""
        head = (
            f"fuzz: {self.rounds} round(s) @ seed {self.seed}, "
            f"{self.checks} invariant check(s) in "
            f"{self.wall_time_s:.1f}s -> "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        if self.ok:
            return head
        lines = [head]
        for failure in self.failures[:20]:
            lines.append(f"  {failure}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
def _weighted_choice(rng: random.Random, table) -> str:
    total = sum(weight for _, weight in table)
    pick = rng.random() * total
    for value, weight in table:
        pick -= weight
        if pick <= 0:
            return value
    return table[-1][0]


def _generate_items(rng: random.Random, n: int) -> List:
    """Item ids in one of three styles; the shuffled-integer style is
    the adversarial one where id and dense index collide but disagree."""
    style = rng.randrange(3)
    if style == 0:
        return list(range(n))
    if style == 1:
        ids = list(range(n))
        rng.shuffle(ids)
        # Shift occasionally so some ids fall outside [0, n) entirely.
        if rng.random() < 0.5:
            offset = rng.randrange(1, 4)
            ids = [i + offset for i in ids]
        return ids
    return [f"it{i:03d}" for i in range(n)]


def _generate_weights(rng: random.Random, n: int) -> List[float]:
    """Node weights summing to one, with zero-weight and tied items."""
    weights = [rng.random() for _ in range(n)]
    if rng.random() < 0.4:  # zero-weight items (never all of them)
        for i in rng.sample(range(n), rng.randrange(1, max(2, n // 3))):
            weights[i] = 0.0
    if rng.random() < 0.4:  # near/exact ties via coarse rounding
        weights = [round(w, 1) for w in weights]
    if sum(weights) <= 0:
        weights[rng.randrange(n)] = 1.0
    total = sum(weights)
    return [w / total for w in weights]


def _generate_edges(rng: random.Random, items: List) -> List[List]:
    """Out-edges with out-sums <= 1, duplicates, and p=1 edges.

    Disconnected nodes arise naturally from zero out-degree draws.
    """
    n = len(items)
    edges: List[List] = []
    for src_pos in range(n):
        degree = rng.randrange(0, min(4, n))
        if degree == 0:
            continue
        targets = rng.sample(
            [p for p in range(n) if p != src_pos], min(degree, n - 1)
        )
        if len(targets) == 1 and rng.random() < 0.25:
            weights = [1.0]  # probability-one sole out-edge
        else:
            raw = [rng.uniform(0.05, 1.0) for _ in targets]
            # Keep the out-sum strictly below 1 so per-weight rounding
            # can never push it past the validator's tolerance.
            scale = min(1.0, rng.uniform(0.3, 0.999) / sum(raw))
            weights = [max(1e-6, w * scale) for w in raw]
        for dst_pos, weight in zip(targets, weights):
            if rng.random() < 0.15:
                # A stale duplicate record; the later upsert wins.
                edges.append(
                    [items[src_pos], items[dst_pos],
                     min(1.0, round(rng.uniform(0.05, 1.0), 3))]
                )
            edges.append(
                [items[src_pos], items[dst_pos], min(1.0, round(weight, 6))]
            )
    return edges


def generate_case(rng: random.Random, *, max_items: int = 48) -> FuzzCase:
    """One random adversarial instance + solver configuration."""
    n = rng.randrange(4, max_items + 1)
    items = _generate_items(rng, n)
    case = FuzzCase(
        items=items,
        node_weights=_generate_weights(rng, n),
        edges=_generate_edges(rng, items),
        variant=rng.choice(("independent", "normalized")),
        mode=_weighted_choice(rng, _MODES),
    )
    k = rng.randrange(1, n + 1)
    if case.mode == "k":
        case.k = k
        case.strategy = rng.choice(_STRATEGIES)
        if rng.random() < 0.25 and k >= 2:
            pool = rng.sample(items, min(len(items), k))
            if rng.random() < 0.5:
                case.must_retain = pool[: rng.randrange(1, k)]
            elif n - k >= 1:
                case.exclude = rng.sample(
                    [i for i in items if i not in pool], 1
                )
    elif case.mode == "threshold":
        case.threshold = round(rng.uniform(0.05, 0.9), 3)
    elif case.mode == "capacity":
        case.costs = [
            [item, round(rng.uniform(0.1, 1.0), 3)] for item in items
        ]
        case.budget = round(rng.uniform(0.5, max(1.0, n * 0.2)), 3)
    elif case.mode == "quotas":
        labels = ["a", "b", "c"][: rng.randrange(2, 4)]
        case.categories = [[item, rng.choice(labels)] for item in items]
        case.quotas = [
            [label, rng.randrange(1, 4)] for label in labels
        ]
        case.k = k
    elif case.mode == "revenue":
        case.revenues = [
            [item, round(rng.uniform(0.1, 2.0), 3)] for item in items
        ]
        case.k = k
    elif case.mode == "incremental":
        case.k = k
    elif case.mode == "serving":
        case.k = k
        case.delta_seed = rng.randrange(1 << 16)

    plain = (
        case.mode in ("k", "threshold")
        and not case.must_retain and not case.exclude
    )
    if plain and rng.random() < 0.15:
        case.workers = 2
        case.backend = rng.choice(_BACKENDS)
        if case.mode == "k":
            case.strategy = "auto"  # facade selects the naive strategy
    if plain and case.workers is None and rng.random() < 0.2:
        # Cooperative stop with NO run guard configured — the
        # stop-reason-without-a-guard path of the guard-deref bugfix.
        case.faults = f"stop_round={rng.randrange(1, max(2, k))}"
    return case


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _pairs(value: Optional[List[List]]) -> Optional[Dict]:
    if value is None:
        return None
    return {item: v for item, v in value}


def run_case(case: FuzzCase) -> Tuple[List[InvariantViolation], int]:
    """Execute one case and check every applicable oracle.

    Returns ``(violations, checks)``.  A crash anywhere in the solve is
    reported as a ``no-crash`` violation — generated configurations are
    valid by construction, so *any* exception is a defect (this is the
    oracle that catches e.g. a stop-reason path dereferencing an absent
    run guard).
    """
    from .. import facade

    graph = case.build_graph()
    variant = Variant.coerce(case.variant)
    injector = (
        FaultInjector.from_spec(case.faults) if case.faults else None
    )
    records: List[SolveRecord] = []
    try:
        if case.mode == "incremental":
            from ..extensions.incremental import IncrementalSolver

            solver = IncrementalSolver(
                graph, k=case.k, variant=variant, validate=False
            )
            result = solver.solve()
            records.append(SolveRecord(
                graph=graph, variant=variant, mode=case.mode,
                result=result, params={"k": case.k},
            ))
            resolved = solver.resolve()
            if list(resolved.retained) != list(result.retained):
                return [InvariantViolation(
                    "digest-stability",
                    "IncrementalSolver.resolve() on an unchanged graph "
                    "selected a different retained set",
                )], 1
        elif case.mode == "serving":
            from ..clickstream.drift import random_delta
            from ..serving import AssortmentService

            service = AssortmentService(
                graph, variant=variant, k=case.k
            )
            snapshot = service.ensure()
            records.append(SolveRecord(
                graph=snapshot.graph, variant=variant, mode=case.mode,
                result=snapshot.result, params={"k": case.k},
                snapshot=snapshot,
            ))
            delta = random_delta(
                service.graph, sigma=0.2, edge_churn=0.05,
                seed=case.delta_seed,
                sequence=service.stats()["sequence"] + 1,
            )
            churned = service.apply_delta(delta)
            records.append(SolveRecord(
                graph=churned.graph, variant=variant, mode=case.mode,
                result=churned.result, params={"k": case.k},
                snapshot=churned,
            ))
        else:
            constraints = {}
            if case.must_retain is not None:
                constraints["must_retain"] = case.must_retain
            if case.exclude is not None:
                constraints["exclude"] = case.exclude
            if case.budget is not None:
                constraints["budget"] = case.budget
                constraints["costs"] = _pairs(case.costs)
            if case.categories is not None:
                constraints["categories"] = _pairs(case.categories)
                constraints["quotas"] = _pairs(case.quotas)
            objective = (
                {"revenue": _pairs(case.revenues)}
                if case.revenues is not None else None
            )
            kwargs = dict(
                variant=variant,
                k=case.k,
                threshold=case.threshold,
                strategy=case.strategy,
                constraints=constraints or None,
                objective=objective,
                workers=case.workers,
                parallel_backend=case.backend,
            )
            with inject_faults(injector):
                result = facade.solve(graph, **kwargs)
            params = {
                "k": case.k, "threshold": case.threshold,
                "must_retain": case.must_retain, "exclude": case.exclude,
            }
            record = SolveRecord(
                graph=graph, variant=variant, mode=case.mode,
                result=result, params=params,
            )
            # The exhaustive ordering backs the prefix-property and
            # threshold-boundary oracles; computed OUTSIDE the fault
            # context so an injected stop cannot truncate the reference.
            if case.mode in ("k", "threshold") and case.workers is None:
                record.order = greedy_solve(
                    graph, k=graph.n_items, variant=variant,
                    strategy="accelerated",
                )
            if injector is None and case.workers is None \
                    and case.mode in ("k", "threshold"):
                record.replay = facade.solve(graph, **kwargs)
            records.append(record)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return [InvariantViolation(
            "no-crash",
            f"solve crashed: {type(exc).__name__}: {exc}",
        )], 1

    violations: List[InvariantViolation] = []
    checks = 0
    for record in records:
        checks += len(applicable_invariants(record))
        violations.extend(check_record(record))
    return violations, max(checks, 1)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _still_fails(case: FuzzCase, invariant: str) -> bool:
    violations, _ = run_case(case)
    return any(v.invariant == invariant for v in violations)


def _drop_item(case: FuzzCase, position: int) -> Optional[FuzzCase]:
    """The case with one item removed, or ``None`` when not droppable."""
    item = case.items[position]
    items = case.items[:position] + case.items[position + 1:]
    if not items:
        return None
    weights = (
        case.node_weights[:position] + case.node_weights[position + 1:]
    )
    if sum(weights) <= 0:
        weights = list(weights)
        weights[0] = 1.0
    total = sum(weights)
    weights = [w / total for w in weights]
    n = len(items)

    def prune_pairs(pairs):
        if pairs is None:
            return None
        return [[i, v] for i, v in pairs if i != item]

    shrunk = FuzzCase(
        items=items,
        node_weights=weights,
        edges=[e for e in case.edges if e[0] != item and e[1] != item],
        variant=case.variant,
        mode=case.mode,
        strategy=case.strategy,
        workers=case.workers,
        backend=case.backend,
        k=min(case.k, n) if case.k is not None else None,
        threshold=case.threshold,
        budget=case.budget,
        costs=prune_pairs(case.costs),
        categories=prune_pairs(case.categories),
        quotas=case.quotas,
        revenues=prune_pairs(case.revenues),
        must_retain=(
            [i for i in case.must_retain if i != item]
            if case.must_retain else None
        ) or None,
        exclude=(
            [i for i in case.exclude if i != item]
            if case.exclude else None
        ) or None,
        faults=case.faults,
        delta_seed=case.delta_seed,
    )
    if shrunk.k is not None and shrunk.exclude:
        shrunk.k = min(shrunk.k, n - len(shrunk.exclude))
        if shrunk.k < 1:
            return None
    if shrunk.must_retain and shrunk.k is not None \
            and len(shrunk.must_retain) > shrunk.k:
        return None
    return shrunk


def shrink_case(
    case: FuzzCase, invariant: str, *, max_attempts: int = 400
) -> FuzzCase:
    """Delta-debug ``case`` to a smaller one failing the same oracle.

    Greedy one-at-a-time reduction: repeatedly try dropping each item
    (with its incident edges, renormalizing weights and clamping the
    configuration), then each surviving edge.  Every candidate is
    re-executed; a reduction is kept only when the *same* invariant
    still fails.  Bounded by ``max_attempts`` re-executions.
    """
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for position in range(len(case.items) - 1, -1, -1):
            if attempts >= max_attempts:
                break
            candidate = _drop_item(case, position)
            if candidate is None:
                continue
            attempts += 1
            if _still_fails(candidate, invariant):
                case = candidate
                improved = True
        for edge_pos in range(len(case.edges) - 1, -1, -1):
            if attempts >= max_attempts:
                break
            candidate = FuzzCase(**{
                **case.to_dict(),
                "edges": case.edges[:edge_pos] + case.edges[edge_pos + 1:],
            })
            attempts += 1
            if _still_fails(candidate, invariant):
                case = candidate
                improved = True
    return case


# ----------------------------------------------------------------------
# Artifacts & replay
# ----------------------------------------------------------------------
def write_artifact(
    directory, *, seed: int, round_no: int,
    failure: InvariantViolation, case: FuzzCase,
) -> str:
    """Dump one failure as a replayable JSON artifact; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fuzz-{seed}-{round_no:04d}.json"
    payload = {
        "version": ARTIFACT_VERSION,
        "seed": seed,
        "round": round_no,
        "invariant": failure.invariant,
        "detail": failure.detail,
        "case": case.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return str(path)


def load_artifact(path) -> Tuple[FuzzCase, Dict]:
    """Parse a fuzz artifact into its case and raw payload."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported fuzz artifact version {version!r} "
            f"(expected {ARTIFACT_VERSION})"
        )
    return FuzzCase.from_dict(payload["case"]), payload


def replay_artifact(path) -> List[InvariantViolation]:
    """Re-execute a dumped failure case; returns current violations.

    An empty list means the recorded bug no longer reproduces (fixed);
    CI treats a non-empty list as failure.
    """
    case, _ = load_artifact(path)
    violations, _ = run_case(case)
    return violations


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def run_fuzz(
    *,
    rounds: int = 50,
    seed: int = 0,
    max_items: int = 48,
    artifact_dir=None,
    shrink: bool = True,
    log=None,
) -> FuzzReport:
    """Run ``rounds`` fuzzed solves and check every applicable oracle.

    Args:
        rounds: number of generated cases.
        seed: master seed; the whole sweep is a pure function of
            ``(seed, rounds, max_items)``.
        max_items: catalog-size ceiling per generated instance.
        artifact_dir: where to dump replayable failure artifacts
            (``None`` skips dumping).
        shrink: delta-debug failures to minimal repros before dumping.
        log: optional ``callable(str)`` receiving progress lines.
    """
    rng = random.Random(seed)
    report = FuzzReport(rounds=rounds, seed=seed)
    start = time.perf_counter()
    for round_no in range(rounds):
        case = generate_case(rng, max_items=max_items)
        violations, checks = run_case(case)
        report.checks += checks
        for violation in violations:
            shrunk = case
            if shrink:
                shrunk = shrink_case(case, violation.invariant)
                # Re-derive the detail from the minimal case when the
                # same oracle still speaks (it should, by construction).
                reruns, _ = run_case(shrunk)
                for rerun in reruns:
                    if rerun.invariant == violation.invariant:
                        violation = rerun
                        break
            artifact = None
            if artifact_dir is not None:
                artifact = write_artifact(
                    artifact_dir, seed=seed, round_no=round_no,
                    failure=violation, case=shrunk,
                )
            failure = FuzzFailure(
                round_no=round_no,
                invariant=violation.invariant,
                detail=violation.detail,
                case=shrunk,
                artifact=artifact,
            )
            report.failures.append(failure)
            if log is not None:
                log(f"FAIL {failure}")
        if log is not None and (round_no + 1) % 25 == 0:
            log(
                f"fuzz: {round_no + 1}/{rounds} rounds, "
                f"{report.checks} checks, "
                f"{len(report.failures)} failure(s)"
            )
    report.wall_time_s = time.perf_counter() - start
    return report
