"""Backward-compatibility helpers for the keyword-only solver API.

The 2.x API makes every ``*_solve`` parameter after ``graph``
keyword-only (consistent ``k=`` / ``variant=`` / ``threshold=`` /
``seed=`` naming across solvers).  Legacy positional call sites keep
working through :func:`keyword_only_shim`, which maps the old
positional order onto keywords and emits a :class:`DeprecationWarning`
pointing at the caller.
"""

from __future__ import annotations

import functools
import warnings


def keyword_only_shim(*legacy_names: str):
    """Accept legacy positional arguments after ``graph`` with a warning.

    Decorate a function whose canonical signature is
    ``func(graph, *, name1=..., name2=..., ...)`` with the *positional*
    order the pre-redesign API used::

        @keyword_only_shim("k", "variant")
        def greedy_solve(graph, *, k, variant, ...): ...

    A call ``greedy_solve(g, 5, "independent")`` then maps ``5 -> k``
    and ``"independent" -> variant``, warns once per call site, and
    forwards.  Keyword calls pass through untouched.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(graph, *args, **kwargs):
            if args:
                if len(args) > len(legacy_names):
                    raise TypeError(
                        f"{func.__name__}() takes at most "
                        f"{len(legacy_names)} legacy positional arguments "
                        f"after graph ({len(args)} given)"
                    )
                mapped = legacy_names[: len(args)]
                warnings.warn(
                    f"passing {', '.join(mapped)} to {func.__name__}() "
                    f"positionally is deprecated; use keyword arguments "
                    f"({func.__name__}(graph, "
                    f"{', '.join(f'{name}=...' for name in mapped)}))",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for name, value in zip(mapped, args):
                    if name in kwargs:
                        raise TypeError(
                            f"{func.__name__}() got multiple values for "
                            f"argument {name!r}"
                        )
                    kwargs[name] = value
            return func(graph, **kwargs)

        return wrapper

    return decorate
