"""Workload generators: synthetic graphs and the paper's dataset stand-ins."""

from .datasets import (
    PAPER_DATASETS,
    DatasetSpec,
    PaperStats,
    build_dataset,
    dataset_table,
)
from .graphs import (
    SyntheticGraphConfig,
    bounded_degree_graph,
    random_preference_graph,
    small_dense_graph,
    synthetic_graph,
)

__all__ = [
    "PAPER_DATASETS",
    "DatasetSpec",
    "PaperStats",
    "SyntheticGraphConfig",
    "bounded_degree_graph",
    "build_dataset",
    "dataset_table",
    "random_preference_graph",
    "small_dense_graph",
    "synthetic_graph",
]
