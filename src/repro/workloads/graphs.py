"""Direct synthesis of preference graphs at benchmark scale.

The clickstream route (simulate sessions, adapt to a graph) is the
faithful end-to-end path, but generating tens of millions of sessions to
obtain a million-node graph is wasteful when a benchmark only needs the
*graph*.  This module samples preference graphs directly as numpy arrays
— Zipf-skewed node weights and cluster-local substitution edges, the
same structure the consumer model induces — and assembles a
:class:`~repro.core.csr.CSRGraph` without ever touching per-item Python
objects.  This is what the scalability experiments (Figure 4d/4e) run
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .._rng import SeedLike, resolve_rng
from ..core.csr import CSRGraph
from ..core.variants import Variant
from ..errors import GraphValidationError


@dataclass(frozen=True)
class SyntheticGraphConfig:
    """Parameters of the direct graph sampler.

    Attributes:
        n_items: number of nodes.
        avg_out_degree: expected number of alternatives per item (the
            paper's datasets average ~4.3–4.8 edges per item).
        zipf_exponent: popularity skew of the node weights.
        cluster_span: alternatives are sampled among the next
            ``cluster_span`` item indices (cyclically) — the index-local
            structure that substitution clusters induce.
        long_range_fraction: fraction of edges rewired to uniformly
            random targets (cross-category substitutions).
        variant: target variant; ``normalized`` scales each node's
            out-weights to a random budget <= 1, ``independent`` draws
            them i.i.d. uniform.
        acceptance_range: edge-weight range for the independent case.
        budget_range: per-node out-weight budget range for normalized.
    """

    n_items: int
    avg_out_degree: float = 4.5
    zipf_exponent: float = 1.05
    cluster_span: int = 12
    long_range_fraction: float = 0.05
    variant: Variant = Variant.INDEPENDENT
    acceptance_range: Tuple[float, float] = (0.1, 0.8)
    budget_range: Tuple[float, float] = (0.4, 0.95)


def synthetic_graph(
    config: SyntheticGraphConfig, *, seed: SeedLike = None
) -> CSRGraph:
    """Sample a preference graph per ``config``.

    The construction is fully vectorized: out-degrees are Poisson (min
    0, capped by ``cluster_span``), targets are cyclic index offsets
    within the cluster span plus a sprinkle of uniform long-range
    targets, duplicate edges are removed, and weights are drawn per the
    variant.  Node weights are Zipf over a random rank permutation and
    normalized to sum to one.
    """
    if config.n_items < 2:
        raise GraphValidationError("synthetic graphs need >= 2 items")
    rng = resolve_rng(seed)
    n = config.n_items
    span = max(1, min(config.cluster_span, n - 1))

    # Node weights: Zipf over permuted ranks.
    ranks = rng.permutation(n) + 1
    raw = 1.0 / np.power(ranks.astype(np.float64), config.zipf_exponent)
    node_weight = raw / raw.sum()

    # Edge endpoints.
    out_deg = rng.poisson(config.avg_out_degree, size=n)
    np.minimum(out_deg, span, out=out_deg)
    src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    offsets = rng.integers(1, span + 1, size=src.size)
    dst = (src + offsets) % n
    if config.long_range_fraction > 0.0 and src.size:
        rewire = rng.random(src.size) < config.long_range_fraction
        random_targets = rng.integers(0, n, size=int(rewire.sum()))
        dst[rewire] = random_targets
        # Repair any accidental self-edges from rewiring.
        selfish = dst == src
        dst[selfish] = (src[selfish] + 1) % n

    # Deduplicate parallel edges.
    keys = src * n + dst
    _, unique_idx = np.unique(keys, return_index=True)
    src = src[unique_idx]
    dst = dst[unique_idx]

    # Edge weights.
    if config.variant is Variant.NORMALIZED:
        raw_w = rng.uniform(0.05, 1.0, size=src.size)
        sums = np.zeros(n, dtype=np.float64)
        np.add.at(sums, src, raw_w)
        budgets = rng.uniform(*config.budget_range, size=n)
        scale = np.ones(n, dtype=np.float64)
        nonzero = sums > 0
        scale[nonzero] = budgets[nonzero] / sums[nonzero]
        edge_weight = raw_w * scale[src]
    else:
        low, high = config.acceptance_range
        edge_weight = rng.uniform(low, high, size=src.size)

    return CSRGraph.from_arrays(node_weight, src, dst, edge_weight)


def random_preference_graph(
    n_items: int,
    *,
    variant: "Variant | str" = Variant.INDEPENDENT,
    avg_out_degree: float = 4.5,
    seed: SeedLike = None,
) -> CSRGraph:
    """Shorthand for :func:`synthetic_graph` with default structure."""
    config = SyntheticGraphConfig(
        n_items=n_items,
        avg_out_degree=avg_out_degree,
        variant=Variant.coerce(variant),
    )
    return synthetic_graph(config, seed=seed)


def bounded_degree_graph(
    n_items: int,
    *,
    max_degree: int = 3,
    variant: "Variant | str" = Variant.NORMALIZED,
    seed: SeedLike = None,
) -> CSRGraph:
    """Instance with total degree (in + out) bounded by ``max_degree``.

    Theorems 3.1 and 4.1 prove NP-hardness *even* when the maximal
    degree (disregarding orientation) is 3 — this generator produces
    that regime, which is also where the bounded-degree algorithms the
    paper's related work points to ([13]) would apply.  Edges are
    sampled as a random partial pairing respecting the degree budget;
    weights follow the variant's rules.
    """
    variant = Variant.coerce(variant)
    if n_items < 2:
        raise GraphValidationError("need >= 2 items")
    if max_degree < 1:
        raise GraphValidationError("max_degree must be >= 1")
    rng = resolve_rng(seed)

    raw = rng.uniform(0.2, 1.0, size=n_items)
    node_weight = raw / raw.sum()

    degree = np.zeros(n_items, dtype=np.int64)
    chosen = set()
    sources: list = []
    targets: list = []
    # Enough random attempts to near-saturate the degree budget.
    for _ in range(n_items * max_degree * 2):
        u = int(rng.integers(0, n_items))
        v = int(rng.integers(0, n_items))
        if u == v or (u, v) in chosen:
            continue
        if degree[u] >= max_degree or degree[v] >= max_degree:
            continue
        chosen.add((u, v))
        degree[u] += 1
        degree[v] += 1
        sources.append(u)
        targets.append(v)

    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if variant is Variant.NORMALIZED:
        raw_w = rng.uniform(0.05, 1.0, size=src.size)
        sums = np.zeros(n_items, dtype=np.float64)
        np.add.at(sums, src, raw_w)
        budgets = rng.uniform(0.5, 0.95, size=n_items)
        scale = np.ones(n_items, dtype=np.float64)
        nonzero = sums > 0
        scale[nonzero] = budgets[nonzero] / sums[nonzero]
        edge_weight = raw_w * scale[src]
    else:
        edge_weight = rng.uniform(0.1, 0.8, size=src.size)
    return CSRGraph.from_arrays(node_weight, src, dst, edge_weight)


def small_dense_graph(
    n_items: int,
    *,
    variant: "Variant | str" = Variant.INDEPENDENT,
    edge_probability: float = 0.3,
    seed: SeedLike = None,
) -> CSRGraph:
    """Dense Erdős–Rényi-style instance for brute-force comparisons.

    Used by the Figure 4a/4b experiments, where ``n`` is tiny and the
    interesting regime is many overlapping covers.
    """
    variant = Variant.coerce(variant)
    rng = resolve_rng(seed)
    if n_items < 2:
        raise GraphValidationError("need >= 2 items")
    raw = rng.uniform(0.2, 1.0, size=n_items)
    node_weight = raw / raw.sum()
    adjacency = rng.random((n_items, n_items)) < edge_probability
    np.fill_diagonal(adjacency, False)
    src, dst = np.nonzero(adjacency)
    if variant is Variant.NORMALIZED:
        raw_w = rng.uniform(0.05, 1.0, size=src.size)
        sums = np.zeros(n_items, dtype=np.float64)
        np.add.at(sums, src, raw_w)
        budgets = rng.uniform(0.5, 0.95, size=n_items)
        scale = np.ones(n_items, dtype=np.float64)
        nonzero = sums > 0
        scale[nonzero] = budgets[nonzero] / sums[nonzero]
        edge_weight = raw_w * scale[src]
    else:
        edge_weight = rng.uniform(0.1, 0.8, size=src.size)
    return CSRGraph.from_arrays(
        node_weight, src.astype(np.int64), dst.astype(np.int64), edge_weight
    )
