"""Synthetic stand-ins for the paper's evaluation datasets (Table 2).

The paper evaluates on three private eBay-domain clickstreams —
Electronics (PE), Fashion (PF), Motors (PM) — and the public YooChoose
stream (YC).  The private data cannot be redistributed and the public
one cannot be downloaded in this offline environment, so this module
defines, for each dataset, a :class:`DatasetSpec` whose consumer-model
parameters are tuned to the *published* statistics (sessions, purchases,
items, edges, and each dataset's variant-fitness profile: PM is the
Normalized-fitting one, the rest fit Independent).  Building a spec at a
``scale`` factor produces a clickstream whose per-item ratios mirror
Table 2.

Real YooChoose data, where available, can be loaded instead via
:func:`repro.clickstream.io.read_yoochoose`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .._rng import SeedLike, resolve_rng, spawn_rng
from ..adaptation.engine import build_preference_graph
from ..clickstream.generator import ConsumerModel, ShopperConfig
from ..clickstream.models import Clickstream
from ..core.variants import Variant
from ..errors import ReproError


@dataclass(frozen=True)
class PaperStats:
    """The published Table 2 row for a dataset."""

    sessions: int
    purchases: int
    items: int
    edges: int


@dataclass(frozen=True)
class DatasetSpec:
    """A reproducible synthetic dataset definition.

    Attributes:
        name: the paper's dataset code (PE/PF/PM/YC).
        description: what the original dataset contained.
        paper: published statistics (Table 2).
        behavior: shopper behavior mode, chosen so the dataset passes
            the same variant-fitness test as in the paper.
        browse_only_rate: fraction of sessions without purchase (YC has
            ~97% browse-only sessions; the private datasets were
            requested as all-purchasing).
        zipf_exponent / cluster_size / max_alternatives: consumer-model
            shape parameters tuned to approximate the published
            edges-per-item ratio.
    """

    name: str
    description: str
    paper: PaperStats
    behavior: str
    browse_only_rate: float = 0.0
    zipf_exponent: float = 1.05
    cluster_size: int = 10
    max_alternatives: int = 6

    def variant(self) -> Variant:
        """The variant the paper applies to this dataset."""
        if self.behavior == "normalized":
            return Variant.NORMALIZED
        return Variant.INDEPENDENT

    def scaled_counts(self, scale: float) -> Tuple[int, int]:
        """``(n_items, n_sessions)`` at a given scale factor."""
        if scale <= 0:
            raise ReproError(f"scale must be positive, got {scale}")
        n_items = max(30, int(round(self.paper.items * scale)))
        n_sessions = max(200, int(round(self.paper.sessions * scale)))
        return n_items, n_sessions

    def build(
        self, *, scale: float = 0.002, seed: SeedLike = 0
    ) -> Tuple[Clickstream, ConsumerModel]:
        """Generate the clickstream (and its ground-truth model)."""
        rng = resolve_rng(seed)
        n_items, n_sessions = self.scaled_counts(scale)
        config = ShopperConfig(
            n_items=n_items,
            behavior=self.behavior,
            zipf_exponent=self.zipf_exponent,
            cluster_size=self.cluster_size,
            max_alternatives=self.max_alternatives,
            browse_only_rate=self.browse_only_rate,
            item_prefix=f"{self.name.lower()}-",
        )
        model = ConsumerModel(config, seed=spawn_rng(rng))
        clickstream = model.generate(n_sessions, seed=spawn_rng(rng))
        return clickstream, model


#: Registry of the paper's four evaluation datasets.
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "PE": DatasetSpec(
        name="PE",
        description="Private e-commerce clickstream, Electronics domain",
        paper=PaperStats(
            sessions=10_782_918, purchases=10_782_918,
            items=1_921_701, edges=9_250_131,
        ),
        behavior="independent",
        zipf_exponent=1.05,
        cluster_size=10,
        max_alternatives=6,
    ),
    "PF": DatasetSpec(
        name="PF",
        description="Private e-commerce clickstream, Fashion domain",
        paper=PaperStats(
            sessions=8_630_541, purchases=8_630_541,
            items=1_681_625, edges=7_182_318,
        ),
        behavior="independent",
        zipf_exponent=1.0,
        cluster_size=10,
        max_alternatives=6,
    ),
    "PM": DatasetSpec(
        name="PM",
        description=(
            "Private e-commerce clickstream, Motors domain (parts and "
            "accessories; specific requests, few alternatives — fits "
            "the Normalized variant)"
        ),
        paper=PaperStats(
            sessions=8_154_160, purchases=8_154_160,
            items=1_396_674, edges=5_826_429,
        ),
        behavior="normalized",
        zipf_exponent=1.1,
        cluster_size=9,
        max_alternatives=7,
    ),
    "YC": DatasetSpec(
        name="YC",
        description="YooChoose RecSys 2015 challenge clickstream (public)",
        paper=PaperStats(
            sessions=9_249_729, purchases=259_579,
            items=52_739, edges=249_008,
        ),
        behavior="independent",
        browse_only_rate=0.972,
        zipf_exponent=1.0,
        cluster_size=10,
        max_alternatives=8,
    ),
}


def build_dataset(
    name: str, *, scale: float = 0.002, seed: SeedLike = 0
) -> Tuple[Clickstream, ConsumerModel]:
    """Build one of the paper's datasets by code (PE/PF/PM/YC)."""
    try:
        spec = PAPER_DATASETS[name.upper()]
    except KeyError as exc:
        raise ReproError(
            f"unknown dataset {name!r}; expected one of "
            f"{sorted(PAPER_DATASETS)}"
        ) from exc
    return spec.build(scale=scale, seed=seed)


def dataset_table(
    *, scale: float = 0.002, seed: SeedLike = 0
) -> List[dict]:
    """Table 2 reproduction rows: paper stats next to generated stats.

    Each row carries, for one dataset: the published sessions /
    purchases / items / edges, and the same statistics measured on the
    synthetic clickstream after running it through the Data Adaptation
    Engine (edges are counted on the resulting preference graph, as in
    the paper).
    """
    rows = []
    for name, spec in PAPER_DATASETS.items():
        clickstream, _model = spec.build(scale=scale, seed=seed)
        graph = build_preference_graph(clickstream, spec.variant())
        stats = clickstream.stats()
        rows.append(
            {
                "dataset": name,
                "variant": spec.variant().value,
                "paper_sessions": spec.paper.sessions,
                "paper_purchases": spec.paper.purchases,
                "paper_items": spec.paper.items,
                "paper_edges": spec.paper.edges,
                "generated_sessions": stats["sessions"],
                "generated_purchases": stats["purchases"],
                "generated_items": graph.n_items,
                "generated_edges": graph.n_edges,
            }
        )
    return rows
