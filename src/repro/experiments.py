"""The paper's experiments as library calls.

Each function reproduces the data series behind one table or figure of
the paper's evaluation section and returns plain list-of-dict rows.
The pytest benchmarks in ``benchmarks/`` wrap these with timing and
assertions; ``examples/reproduce_figures.py`` prints them interactively;
they are equally usable from a notebook or downstream analysis.

All functions are deterministic given their seed arguments.
"""

from __future__ import annotations

import math
import time
from typing import List, Sequence

from ._rng import SeedLike
from .adaptation.engine import build_preference_graph
from .clickstream.generator import ConsumerModel, ShopperConfig
from .core.baselines import (
    random_solve,
    top_k_coverage_solve,
    top_k_coverage_threshold,
    top_k_weight_solve,
    top_k_weight_threshold,
)
from .core.bruteforce import brute_force_solve
from .core.greedy import greedy_solve
from .core.parallel import calibrate_cost_model, speedup_curve
from .core.threshold import greedy_threshold_solve
from .reductions.bounds import best_known_ratio, greedy_ratio_bound
from .workloads.datasets import dataset_table
from .workloads.graphs import random_preference_graph, small_dense_graph


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1_measured_rows(
    *, n: int = 12, seeds: Sequence[int] = (0, 1, 2)
) -> List[dict]:
    """Greedy bound / best-known / measured greedy-vs-OPT ratio per k."""
    rows = []
    for k in range(1, n + 1):
        worst = 1.0
        for seed in seeds:
            graph = small_dense_graph(n, variant="normalized", seed=seed)
            optimal = brute_force_solve(graph, k=k, variant="normalized").cover
            achieved = greedy_solve(graph, k=k, variant="normalized").cover
            if optimal > 0:
                worst = min(worst, achieved / optimal)
        best, method = best_known_ratio(k, n)
        rows.append(
            {
                "k/n": k / n,
                "greedy_bound": greedy_ratio_bound(k, n),
                "best_known": best,
                "best_known_method": method,
                "greedy_measured": worst,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def table2_rows(*, scale: float = 0.001, seed: SeedLike = 0) -> List[dict]:
    """Paper vs generated dataset statistics (delegates to workloads)."""
    return dataset_table(scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Figure 4a
# ----------------------------------------------------------------------
def fig4a_rows(
    *,
    n_items: int = 16,
    k_values: Sequence[int] = (2, 4, 6, 8, 10),
    seed: SeedLike = 20,
    max_subsets: int = 50_000_000,
) -> List[dict]:
    """Greedy vs brute-force cover on a YC-style Normalized subset."""
    model = ConsumerModel(
        ShopperConfig(
            n_items=n_items, behavior="normalized", cluster_size=4,
            zipf_exponent=0.9,
        ),
        seed=seed,
    )
    stream = model.generate(30_000, seed=int(seed) + 1)
    graph = build_preference_graph(stream, "normalized")
    rows = []
    for k in k_values:
        greedy = greedy_solve(graph, k=k, variant="normalized")
        optimal = brute_force_solve(
            graph, k=k, variant="normalized", max_subsets=max_subsets
        )
        rows.append(
            {
                "k": k,
                "greedy_cover": greedy.cover,
                "optimal_cover": optimal.cover,
                "ratio": (
                    greedy.cover / optimal.cover if optimal.cover else 1.0
                ),
            }
        )
    return rows


def fig4a_milp_rows(
    *,
    n_items: int = 200,
    k_values: Sequence[int] = (10, 40, 80, 120),
    seed: SeedLike = 22,
) -> List[dict]:
    """Greedy vs the exact MILP optimum beyond brute-force sizes."""
    from .reductions.exact_milp import milp_solve_npc

    graph = random_preference_graph(
        n_items, variant="normalized", seed=seed
    )
    rows = []
    for k in k_values:
        exact = milp_solve_npc(graph, k=k)
        greedy = greedy_solve(graph, k=k, variant="normalized")
        rows.append(
            {
                "k": k,
                "greedy_cover": greedy.cover,
                "exact_cover": exact.cover,
                "ratio": greedy.cover / exact.cover,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 4b
# ----------------------------------------------------------------------
def fig4b_rows(
    *, sizes: Sequence[int] = (10, 12, 14, 16, 18), seed_base: int = 30
) -> List[dict]:
    """Greedy vs BF runtimes (Normalized, k = n/2)."""
    rows = []
    for n in sizes:
        graph = small_dense_graph(
            n, variant="normalized", seed=seed_base + n
        )
        k = n // 2
        start = time.perf_counter()
        greedy = greedy_solve(graph, k=k, variant="normalized")
        greedy_time = time.perf_counter() - start
        start = time.perf_counter()
        exact = brute_force_solve(
            graph, k=k, variant="normalized", max_subsets=100_000_000
        )
        bf_time = time.perf_counter() - start
        rows.append(
            {
                "n": n,
                "k": k,
                "subsets": math.comb(n, k),
                "greedy_s": greedy_time,
                "bf_s": bf_time,
                "bf/greedy": bf_time / greedy_time if greedy_time else 0.0,
                "cover_ratio": greedy.cover / exact.cover,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 4c
# ----------------------------------------------------------------------
def fig4c_rows(
    graph=None,
    *,
    scale: float = 0.05,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: SeedLike = 40,
    random_seed: SeedLike = 41,
) -> List[dict]:
    """Coverage of all competitors on the YC stand-in (Independent)."""
    if graph is None:
        from .workloads.datasets import build_dataset

        stream, _model = build_dataset("YC", scale=scale, seed=seed)
        graph = build_preference_graph(stream, "independent").to_csr()
    n = graph.n_items
    rows = []
    for fraction in fractions:
        k = max(1, int(n * fraction))
        rows.append(
            {
                "k/n": fraction,
                "Greedy": greedy_solve(graph, k=k, variant="independent").cover,
                "TopK-W": top_k_weight_solve(
                    graph, k=k, variant="independent"
                ).cover,
                "TopK-C": top_k_coverage_solve(
                    graph, k=k, variant="independent"
                ).cover,
                "Random": random_solve(
                    graph, k=k, variant="independent", seed=random_seed,
                    draws=10,
                ).cover,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 4d
# ----------------------------------------------------------------------
def fig4d_rows(
    *,
    sizes: Sequence[int] = (10_000, 50_000, 100_000, 250_000),
    k_divisor: int = 200,
    seed: SeedLike = 50,
) -> List[dict]:
    """Scalability: accelerated and lazy greedy runtimes per n."""
    rows = []
    for n in sizes:
        graph = random_preference_graph(n, seed=seed)
        k = n // k_divisor
        start = time.perf_counter()
        accelerated = greedy_solve(
            graph, k=k, variant="independent", strategy="accelerated"
        )
        accel_time = time.perf_counter() - start
        start = time.perf_counter()
        greedy_solve(graph, k=k, variant="independent", strategy="lazy")
        lazy_time = time.perf_counter() - start
        rows.append(
            {
                "n": n,
                "k": k,
                "edges": graph.n_edges,
                "accelerated_s": accel_time,
                "lazy_s": lazy_time,
                "cover": accelerated.cover,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 4e
# ----------------------------------------------------------------------
def fig4e_rows(
    *,
    n_items: int = 200_000,
    k: int = 100,
    workers: Sequence[int] = (1, 4, 8, 16, 32),
    seed: SeedLike = 60,
) -> List[dict]:
    """Modeled parallel runtimes/speedups (work-span cost model)."""
    graph = random_preference_graph(n_items, seed=seed)
    model = calibrate_cost_model(graph, k, "independent")
    return speedup_curve(model, workers=workers)


# ----------------------------------------------------------------------
# Figure 4f
# ----------------------------------------------------------------------
def fig4f_rows(
    graph=None,
    *,
    scale: float = 0.05,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    seed: SeedLike = 70,
) -> List[dict]:
    """Complementary-problem set sizes: greedy vs adapted baselines."""
    if graph is None:
        from .workloads.datasets import build_dataset

        stream, _model = build_dataset("YC", scale=scale, seed=seed)
        graph = build_preference_graph(stream, "independent").to_csr()
    rows = []
    for threshold in thresholds:
        greedy = greedy_threshold_solve(
            graph, threshold=threshold, variant="independent"
        )
        rows.append(
            {
                "threshold": threshold,
                "Greedy_items": greedy.k,
                "TopK-W_items": top_k_weight_threshold(
                    graph, threshold=threshold, variant="independent"
                ).k,
                "TopK-C_items": top_k_coverage_threshold(
                    graph, threshold=threshold, variant="independent"
                ).k,
                "greedy_cover": greedy.cover,
            }
        )
    return rows
