"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish the concrete
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphValidationError(ReproError):
    """A preference graph violates a structural or weight invariant.

    Examples: node weights that do not sum to one, an edge weight outside
    ``(0, 1]``, or — under the Normalized variant — a node whose outgoing
    edge weights sum to more than one.
    """


class UnknownItemError(ReproError, KeyError):
    """An item id was referenced that is not present in the graph."""


class SolverError(ReproError):
    """A solver received inconsistent or unsatisfiable parameters.

    Examples: ``k`` larger than the number of items, a negative ``k``, a
    coverage threshold outside ``[0, 1]``, or an unsolvable threshold.
    """


class VariantError(SolverError, ValueError):
    """An unrecognized Preference Cover variant was requested.

    Raised by :meth:`repro.core.variants.Variant.coerce`, the single
    normalization helper every string-accepting surface (facade,
    serving, CLI) funnels through.  Subclasses :class:`ValueError` for
    backward compatibility with callers that caught the historical
    ad-hoc error, while joining the :class:`SolverError` taxonomy so
    ``except ReproError`` handles it uniformly.
    """


class ServingError(SolverError):
    """The serving layer cannot answer a query or refresh a snapshot.

    Examples: a query arriving before any solution snapshot exists and
    with cold solves disabled, a front end shedding load because its
    admission queue is full, or a request submitted after shutdown.
    Carries an actionable message telling the caller whether to retry,
    back off, or warm the store first.
    """


class DeadlineExceeded(ServingError):
    """A query's deadline expired before it could be answered.

    Raised by the serving front end's micro-batcher when a request
    carries a deadline (``timeout_s``) and that deadline passes while
    the request is queued — the query *fails fast* instead of occupying
    a batch slot, and batches never wait past the earliest member
    deadline.  Callers should treat this as load feedback: either retry
    with a larger budget or shed the request upstream.
    """


class SolverInterrupted(ReproError):
    """A solve was stopped by a run guard before reaching its objective.

    Raised when a :class:`repro.resilience.RunGuard` with
    ``on_trigger="raise"`` trips (deadline or RSS ceiling).  The work
    completed so far is not lost: ``partial`` carries the partial
    :class:`~repro.core.result.SolveResult` (flagged
    ``interrupted=True``), which the greedy prefix property makes a
    valid solution for its own size.
    """

    def __init__(self, reason: str, partial=None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.partial = partial


class ClickstreamFormatError(ReproError):
    """Raw clickstream data could not be parsed or is semantically invalid."""


class AdaptationError(ReproError):
    """The data adaptation engine could not build a preference graph.

    Raised, for instance, when the clickstream contains no purchases (node
    weights would be undefined) or when a requested variant's fitness
    precondition is violated and strict checking is enabled.
    """
