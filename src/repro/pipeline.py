"""End-to-end inventory reduction system (paper Section 5.1, Figure 2).

The architecture chains two modules: the **Data Adaptation Engine**
turns raw clickstream data into a preference graph (choosing the variant
from the data when asked to), and the **Preference Cover Solver** runs
the greedy algorithm to produce the ordered list of retained items with
its coverage metadata.  :class:`InventoryReducer` is that flow as one
object; :class:`RetainedInventoryReport` is the system's output — the
retained list, the achieved cover, and the per-item coverage table
(retained items at 100%, everything else at its covered share).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Hashable, List, Optional, Union

from .adaptation.engine import AdaptationConfig, DataAdaptationEngine
from .adaptation.variant_selection import (
    VariantRecommendation,
    recommend_variant,
)
from .clickstream.models import Clickstream
from .core.csr import as_csr
from .core.graph import PreferenceGraph
from .core.greedy import greedy_solve
from .core.result import SolveResult
from .core.threshold import greedy_threshold_solve
from .core.variants import Variant
from .errors import SolverError
from .observability import coerce_tracer


@dataclass(frozen=True)
class ItemCoverageRow:
    """Per-item line of the system's output table."""

    item: Hashable
    retained: bool
    request_probability: float
    coverage: float  # P(matched | requested), retained items = 1.0


@dataclass(frozen=True)
class RetainedInventoryReport:
    """Everything the Figure 2 system emits for one run.

    Attributes:
        variant: the variant that was solved (chosen from data when the
            reducer ran in ``variant="auto"`` mode).
        recommendation: the variant-selection analysis (None when the
            variant was fixed by the caller).
        graph: the preference graph the adaptation engine built.
        result: the solver output (ordered retained list + metadata).
        k_clamped_from: the originally requested ``k`` when it exceeded
            the catalog size and was clamped down (``None`` otherwise).
    """

    variant: Variant
    recommendation: Optional[VariantRecommendation]
    graph: PreferenceGraph
    result: SolveResult
    k_clamped_from: Optional[int] = None

    @property
    def retained(self) -> List[Hashable]:
        """Retained items in selection order."""
        return list(self.result.retained)

    @property
    def cover(self) -> float:
        """The achieved cover ``C(S)``."""
        return self.result.cover

    def item_table(self) -> List[ItemCoverageRow]:
        """Coverage rows for every item, most-requested first."""
        csr = as_csr(self.graph)
        conditional = self.result.item_coverage(csr.node_weight)
        retained_set = set(self.result.retained)
        rows = [
            ItemCoverageRow(
                item=item,
                retained=item in retained_set,
                request_probability=float(csr.node_weight[index]),
                coverage=float(conditional[index]),
            )
            for index, item in enumerate(csr.items)
        ]
        rows.sort(key=lambda row: -row.request_probability)
        return rows

    def summary(self) -> str:
        """Human-readable run summary."""
        lines = [
            f"variant            : {self.variant.value}",
            f"catalog items      : {self.graph.n_items}",
            f"retained items     : {len(self.result.retained)}",
            f"achieved cover C(S): {self.cover:.4f}",
            f"solver             : {self.result.strategy} "
            f"({self.result.wall_time_s:.3f}s)",
        ]
        if self.k_clamped_from is not None:
            lines.append(
                f"requested k        : {self.k_clamped_from} "
                f"(clamped to the {self.graph.n_items}-item catalog)"
            )
        if self.result.interrupted:
            lines.append(
                f"interrupted        : {self.result.interrupted_reason} "
                f"(partial but valid greedy prefix)"
            )
        if self.recommendation is not None:
            rec = self.recommendation
            score = (
                "n/a" if rec.independence_score is None
                else f"{rec.independence_score:.4f}"
            )
            lines.append(
                f"variant selection  : normalized_fit="
                f"{rec.normalized_fit:.4f}, independence_score={score}, "
                f"fits={rec.fits}"
            )
        return "\n".join(lines)


class InventoryReducer:
    """The end-to-end system: clickstream in, retained inventory out.

    Exactly one of ``k`` (maximization: best cover with at most ``k``
    items) or ``threshold`` (complementary minimization: fewest items
    reaching the cover threshold) must be provided.

    ``variant="auto"`` applies the paper's data-driven variant selection
    before building the graph (the variant affects the adaptation step's
    click normalization, so it must be fixed first).

    ``checkpoint`` (a directory or
    :class:`~repro.resilience.Checkpointer`) and ``guard`` (a
    :class:`~repro.resilience.RunGuard`) are forwarded to the solver;
    an interrupted run surfaces in
    :meth:`RetainedInventoryReport.summary`.
    """

    def __init__(
        self,
        *,
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        variant: Union[Variant, str] = "auto",
        min_edge_sessions: int = 1,
        min_edge_weight: float = 0.0,
        strategy: str = "auto",
        must_retain: Optional[list] = None,
        exclude: Optional[list] = None,
        tracer=None,
        checkpoint=None,
        guard=None,
    ) -> None:
        if (k is None) == (threshold is None):
            raise SolverError(
                "provide exactly one of k (maximization) or threshold "
                "(complementary minimization)"
            )
        if threshold is not None and (must_retain or exclude):
            raise SolverError(
                "must_retain/exclude constraints require the fixed-k "
                "objective"
            )
        self.k = k
        self.threshold = threshold
        self.auto_variant = isinstance(variant, str) and variant == "auto"
        self.variant = None if self.auto_variant else Variant.coerce(variant)
        self.min_edge_sessions = min_edge_sessions
        self.min_edge_weight = min_edge_weight
        self.strategy = strategy
        self.must_retain = list(must_retain) if must_retain else None
        self.exclude = list(exclude) if exclude else None
        self.tracer = coerce_tracer(tracer)
        self.checkpoint = checkpoint
        self.guard = guard

    # ------------------------------------------------------------------
    def run(self, clickstream: Clickstream) -> RetainedInventoryReport:
        """Execute the full Figure 2 flow on a clickstream."""
        tracer = self.tracer
        recommendation = None
        if self.auto_variant:
            with tracer.span("pipeline.recommend_variant"):
                recommendation = recommend_variant(clickstream)
            variant = recommendation.variant
        else:
            variant = self.variant
        assert variant is not None

        engine = DataAdaptationEngine(
            AdaptationConfig(
                variant=variant,
                min_edge_sessions=self.min_edge_sessions,
                min_edge_weight=self.min_edge_weight,
            )
        )
        with tracer.span("pipeline.build_graph"):
            graph = engine.build_graph(clickstream, tracer=tracer)
            graph.validate(variant)
        result = self.solve_graph(graph, variant)
        with tracer.span("pipeline.report"):
            report = RetainedInventoryReport(
                variant=variant,
                recommendation=recommendation,
                graph=graph,
                result=result,
                k_clamped_from=self._k_clamped_from(graph),
            )
        return report

    def run_graph(
        self, graph: PreferenceGraph, variant: Union[Variant, str]
    ) -> RetainedInventoryReport:
        """Skip adaptation and solve a pre-built preference graph."""
        variant = Variant.coerce(variant)
        graph.validate(variant)
        result = self.solve_graph(graph, variant)
        return RetainedInventoryReport(
            variant=variant,
            recommendation=None,
            graph=graph,
            result=result,
            k_clamped_from=self._k_clamped_from(graph),
        )

    def _k_clamped_from(self, graph) -> Optional[int]:
        """The requested ``k`` when it exceeds the catalog (else None)."""
        if self.k is not None and self.k > as_csr(graph).n_items:
            return self.k
        return None

    def solve_graph(self, graph, variant: Variant) -> SolveResult:
        """Dispatch to the fixed-k or threshold solver."""
        with self.tracer.span("pipeline.solve"):
            if self.k is not None:
                n_items = as_csr(graph).n_items
                k = min(self.k, n_items)
                if k < self.k:
                    # Clamping is recoverable (retaining the whole
                    # catalog is a valid answer) but must not be silent:
                    # the caller asked for more items than exist.
                    warnings.warn(
                        f"k={self.k} exceeds the catalog size "
                        f"({n_items} items); solving with k={n_items}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    if self.tracer.enabled:
                        self.tracer.incr("pipeline.k_clamped")
                return greedy_solve(
                    graph, k=k, variant=variant, strategy=self.strategy,
                    must_retain=self.must_retain, exclude=self.exclude,
                    tracer=self.tracer, checkpoint=self.checkpoint,
                    guard=self.guard,
                )
            assert self.threshold is not None
            return greedy_threshold_solve(
                graph, threshold=self.threshold, variant=variant,
                tracer=self.tracer, checkpoint=self.checkpoint,
                guard=self.guard,
            )
