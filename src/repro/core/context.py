"""Fingerprints of a solve's full context (graph + question).

A *context digest* identifies one solve completely: the graph content
(via :meth:`~repro.core.csr.CSRGraph.content_digest`), the variant, the
stopping rule and every parameter that can change the answer.  The
facade stamps it onto :attr:`~repro.core.result.SolveResult.context_digest`
and the serving layer keys its snapshot cache on the same string, so a
cached solution can never be returned for a different graph or a
different question.

The digest is intentionally human-scannable::

    f3a91c02:independent:k:8d2f1c44

i.e. ``<graph>:<variant>:<stopping-rule>:<params>``.
"""

from __future__ import annotations

import json
import zlib

from .csr import as_csr
from .variants import Variant


def params_fingerprint(params: dict) -> str:
    """Hex CRC of a canonicalized (sorted-key JSON) parameter mapping.

    ``None`` values are dropped so absent and explicitly-``None``
    parameters fingerprint identically.  Values must be JSON-encodable;
    callers pass plain scalars, lists and dicts only.
    """
    live = {key: value for key, value in params.items() if value is not None}
    blob = json.dumps(live, sort_keys=True, default=str).encode("utf-8")
    return f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}"


def stopping_rule(k=None, threshold=None, budget=None) -> str:
    """The canonical stopping-rule tag: ``k`` / ``threshold`` / ``budget``."""
    if budget is not None:
        return "budget"
    if threshold is not None:
        return "threshold"
    return "k"


def solve_context_digest(
    graph,
    variant: "Variant | str",
    *,
    k=None,
    threshold=None,
    constraints=None,
    objective=None,
) -> str:
    """The full-context digest of one solve (see module docstring)."""
    csr = as_csr(graph)
    variant = Variant.coerce(variant)
    params = params_fingerprint(
        {
            "k": k,
            "threshold": threshold,
            "constraints": constraints,
            "objective": objective,
        }
    )
    rule = stopping_rule(
        k=k,
        threshold=threshold,
        budget=(constraints or {}).get("budget")
        if isinstance(constraints, dict) else None,
    )
    return f"{csr.content_digest()}:{variant.value}:{rule}:{params}"
