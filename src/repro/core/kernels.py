"""Pluggable hot-loop kernels: one registry, interchangeable backends.

The solver's inner loops — batch gain evaluation, the scalar ``Gain``
oracle, the ``AddNode`` scatter-update and the accelerated strategy's
two-hop delta propagation — all operate on the raw CSR arrays.  This
module extracts them behind a tiny dispatch layer so the *algorithm*
code (``gain.py``, ``greedy.py``, ``threshold.py``, ``parallel.py``)
never needs to know how the arithmetic is executed:

* ``numpy`` — the reference backend; vectorized prefix-sum /
  scatter-update implementations identical to the historical inline
  code.  Always available.
* ``numba`` — optional JIT-compiled loops.  Registered only when the
  ``numba`` package is importable; requesting it on a host without
  numba silently degrades to ``numpy`` (so deployment images without a
  compiler toolchain keep working unchanged).

Backend selection, in priority order:

1. an explicit ``kernels=`` argument to ``solve()`` / ``greedy_solve()``
   / ``GreedyState`` (a name or a :class:`KernelBackend`);
2. the ``REPRO_KERNELS`` environment variable;
3. ``auto`` — ``numba`` when importable, else ``numpy``.

Every backend implements the same four functions over the same raw
arrays, and the parity test-suite (``tests/test_kernels.py``) pins them
to agree to 1e-12 on gains and *exactly* on greedy selections.

All kernels take ``independent: bool`` rather than the
:class:`~repro.core.variants.Variant` enum so compiled backends only see
plain scalars and arrays.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import SolverError

#: Environment variable consulted when no explicit backend is passed.
KERNELS_ENV_VAR = "REPRO_KERNELS"

#: Recognized backend names (``auto`` resolves at lookup time).
KERNEL_CHOICES = ("auto", "numpy", "numba")


class KernelBackend:
    """A named bundle of the four hot-loop kernels.

    Attributes:
        name: registry name (``"numpy"`` / ``"numba"``).
        gains_block: ``(lo, hi, in_ptr, in_src, in_weight, node_weight,
            in_set, deficit, independent) -> np.ndarray`` — marginal
            gains of the contiguous candidate block ``[lo, hi)``;
            retained entries come back as 0.  ``lo=0, hi=n`` is the
            full batch evaluation.
        gain_scalar: same arrays plus a single node ``v``; returns the
            scalar marginal gain (0 for retained nodes).
        add_node: commit ``v``: flips ``in_set[v]``, scatter-updates
            ``coverage``/``deficit`` over the in-edges, returns the
            *spill* — the cover gained through still-unretained
            in-neighbors.  The caller reads ``deficit[v]`` before the
            call and adds it for the total gain; keeping the two terms
            separate preserves the historical ``cover`` accumulation
            order bit-for-bit.
        fanout_update: the accelerated strategy's two-hop patch —
            subtracts ``W(u, x) * delta_u`` from ``gains[x]`` for every
            out-edge ``(u, x)`` of the affected in-neighbors ``u``;
            returns the number of edge updates applied.
    """

    __slots__ = ("name", "gains_block", "gain_scalar", "add_node",
                 "fanout_update")

    def __init__(
        self,
        name: str,
        *,
        gains_block: Callable,
        gain_scalar: Callable,
        add_node: Callable,
        fanout_update: Callable,
    ) -> None:
        self.name = name
        self.gains_block = gains_block
        self.gain_scalar = gain_scalar
        self.add_node = add_node
        self.fanout_update = fanout_update

    def __repr__(self) -> str:
        return f"KernelBackend({self.name!r})"


# ----------------------------------------------------------------------
# numpy reference backend
# ----------------------------------------------------------------------
def _np_gains_block(
    lo: int,
    hi: int,
    in_ptr: np.ndarray,
    in_src: np.ndarray,
    in_weight: np.ndarray,
    node_weight: np.ndarray,
    in_set: np.ndarray,
    deficit: np.ndarray,
    independent: bool,
) -> np.ndarray:
    """Vectorized block gains via prefix sums over the in-edge slices.

    Unlike ``reduceat`` the prefix-sum formulation handles empty slices
    (isolated nodes) exactly, including blocks past the last edge.
    """
    edge_lo, edge_hi = in_ptr[lo], in_ptr[hi]
    src = in_src[edge_lo:edge_hi]
    wgt = in_weight[edge_lo:edge_hi]
    source_outside = ~in_set[src]
    if independent:
        contrib = wgt * deficit[src]
    else:
        contrib = wgt * node_weight[src]
    contrib = np.where(source_outside, contrib, 0.0)
    prefix = np.concatenate(([0.0], np.cumsum(contrib)))
    starts = in_ptr[lo:hi] - edge_lo
    ends = in_ptr[lo + 1:hi + 1] - edge_lo
    sums = prefix[ends] - prefix[starts]
    gains = deficit[lo:hi] + sums
    gains[in_set[lo:hi]] = 0.0
    return gains


def _np_gain_scalar(
    v: int,
    in_ptr: np.ndarray,
    in_src: np.ndarray,
    in_weight: np.ndarray,
    node_weight: np.ndarray,
    in_set: np.ndarray,
    deficit: np.ndarray,
    independent: bool,
) -> float:
    """Algorithm 2 / 4: marginal gain of one candidate."""
    if in_set[v]:
        return 0.0
    g = deficit[v]
    edge_lo, edge_hi = in_ptr[v], in_ptr[v + 1]
    if edge_hi > edge_lo:
        sources = in_src[edge_lo:edge_hi]
        outside = ~in_set[sources]
        if outside.any():
            u = sources[outside]
            w = in_weight[edge_lo:edge_hi][outside]
            if independent:
                g += float(np.dot(w, deficit[u]))
            else:
                g += float(np.dot(w, node_weight[u]))
    return float(g)


def _np_add_node(
    v: int,
    in_ptr: np.ndarray,
    in_src: np.ndarray,
    in_weight: np.ndarray,
    node_weight: np.ndarray,
    in_set: np.ndarray,
    coverage: np.ndarray,
    deficit: np.ndarray,
    independent: bool,
) -> float:
    """Algorithm 3 / 5: commit ``v`` and scatter-update its in-neighbors.

    Returns the spill onto still-unretained in-neighbors; the direct
    term ``deficit[v]`` is the caller's to read before the call.
    """
    coverage[v] = node_weight[v]
    deficit[v] = 0.0
    in_set[v] = True
    spill = 0.0
    edge_lo, edge_hi = in_ptr[v], in_ptr[v + 1]
    if edge_hi > edge_lo:
        sources = in_src[edge_lo:edge_hi]
        outside = ~in_set[sources]
        if outside.any():
            u = sources[outside]
            w = in_weight[edge_lo:edge_hi][outside]
            if independent:
                delta = w * deficit[u]
            else:
                delta = w * node_weight[u]
            coverage[u] += delta
            deficit[u] -= delta
            spill = float(delta.sum())
    return spill


def _np_fanout_update(
    gains: np.ndarray,
    u_nodes: np.ndarray,
    delta: np.ndarray,
    out_ptr: np.ndarray,
    out_dst: np.ndarray,
    out_weight: np.ndarray,
) -> int:
    """Two-hop patch: ``gains[x] -= W(u, x) * delta_u`` for all out-edges."""
    starts = out_ptr[u_nodes]
    counts = out_ptr[u_nodes + 1] - starts
    total = int(counts.sum())
    if total:
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
            counts,
        )
        flat = np.arange(total, dtype=np.int64) + offsets
        x_dst = out_dst[flat]
        x_w = out_weight[flat]
        np.subtract.at(gains, x_dst, x_w * np.repeat(delta, counts))
    return total


NUMPY_KERNELS = KernelBackend(
    "numpy",
    gains_block=_np_gains_block,
    gain_scalar=_np_gain_scalar,
    add_node=_np_add_node,
    fanout_update=_np_fanout_update,
)


# ----------------------------------------------------------------------
# numba backend (built lazily; absent when numba is not importable)
# ----------------------------------------------------------------------
def _build_numba_backend() -> Optional[KernelBackend]:
    """JIT-compiled loop kernels, or ``None`` when numba is missing."""
    try:
        from numba import njit
    except ImportError:
        return None

    @njit(cache=True)
    def gains_block(lo, hi, in_ptr, in_src, in_weight, node_weight,
                    in_set, deficit, independent):
        out = np.empty(hi - lo, dtype=np.float64)
        for i in range(lo, hi):
            if in_set[i]:
                out[i - lo] = 0.0
                continue
            g = deficit[i]
            for e in range(in_ptr[i], in_ptr[i + 1]):
                u = in_src[e]
                if not in_set[u]:
                    if independent:
                        g += in_weight[e] * deficit[u]
                    else:
                        g += in_weight[e] * node_weight[u]
            out[i - lo] = g
        return out

    @njit(cache=True)
    def gain_scalar(v, in_ptr, in_src, in_weight, node_weight,
                    in_set, deficit, independent):
        if in_set[v]:
            return 0.0
        g = deficit[v]
        for e in range(in_ptr[v], in_ptr[v + 1]):
            u = in_src[e]
            if not in_set[u]:
                if independent:
                    g += in_weight[e] * deficit[u]
                else:
                    g += in_weight[e] * node_weight[u]
        return g

    @njit(cache=True)
    def add_node(v, in_ptr, in_src, in_weight, node_weight,
                 in_set, coverage, deficit, independent):
        coverage[v] = node_weight[v]
        deficit[v] = 0.0
        in_set[v] = True
        spill = 0.0
        for e in range(in_ptr[v], in_ptr[v + 1]):
            u = in_src[e]
            if not in_set[u]:
                if independent:
                    delta = in_weight[e] * deficit[u]
                else:
                    delta = in_weight[e] * node_weight[u]
                coverage[u] += delta
                deficit[u] -= delta
                spill += delta
        return spill

    @njit(cache=True)
    def fanout_update(gains, u_nodes, delta, out_ptr, out_dst, out_weight):
        total = 0
        for j in range(u_nodes.shape[0]):
            u = u_nodes[j]
            d = delta[j]
            for e in range(out_ptr[u], out_ptr[u + 1]):
                gains[out_dst[e]] -= out_weight[e] * d
                total += 1
        return total

    return KernelBackend(
        "numba",
        gains_block=gains_block,
        gain_scalar=gain_scalar,
        add_node=add_node,
        fanout_update=fanout_update,
    )


_BACKEND_CACHE: Dict[str, Optional[KernelBackend]] = {"numpy": NUMPY_KERNELS}


def _numba_backend() -> Optional[KernelBackend]:
    if "numba" not in _BACKEND_CACHE:
        _BACKEND_CACHE["numba"] = _build_numba_backend()
    return _BACKEND_CACHE["numba"]


def available_backends() -> tuple:
    """Names of the backends usable on this host (``numpy`` always)."""
    names = ["numpy"]
    if _numba_backend() is not None:
        names.append("numba")
    return tuple(names)


def get_kernels(
    kernels: "KernelBackend | str | None" = None,
) -> KernelBackend:
    """Resolve a backend name / instance / ``None`` to a backend.

    ``None`` consults the ``REPRO_KERNELS`` environment variable, then
    defaults to ``auto``.  ``auto`` prefers the compiled backend when
    available.  Requesting ``numba`` on a host without numba silently
    falls back to ``numpy`` (absence of the optional dependency must
    never change behavior, only speed).  Unrecognized names raise
    :class:`~repro.errors.SolverError`.
    """
    if isinstance(kernels, KernelBackend):
        return kernels
    name = kernels
    if name is None:
        name = os.environ.get(KERNELS_ENV_VAR) or "auto"
    name = str(name).strip().lower()
    if name not in KERNEL_CHOICES:
        raise SolverError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{KERNEL_CHOICES}"
        )
    if name in ("auto", "numba"):
        backend = _numba_backend()
        if backend is not None:
            return backend
        return NUMPY_KERNELS
    return NUMPY_KERNELS
