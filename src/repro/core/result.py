"""Solver output: the retained set and its coverage metadata.

Mirrors the output of the Preference Cover Solver in the paper's system
architecture (Figure 2): the ordered list of retained items, the achieved
cover ``C(S)``, and the per-item coverage implied by the array ``I``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import numpy as np

from ..errors import SolverError
from ..observability import Telemetry
from .variants import Variant


@dataclass(frozen=True)
class SolveResult:
    """Result of running a Preference Cover solver.

    ``SolveResult`` is a **frozen dataclass with a stable public
    contract**: the field set below only grows (new optional fields with
    defaults), existing fields never change name, type or meaning, and
    every solver and facade path returns this type.  The serving layer
    (``repro.serving``) snapshots results wholesale and depends on the
    quartet ``selected`` / ``coverage`` / ``telemetry`` /
    ``context_digest``; see ``docs/api.md`` ("API stability").

    Attributes:
        variant: the problem variant that was solved.
        k: the requested retained-set size.
        retained: retained item ids, **in the order they were selected**
            (for the greedy solver this ordering carries the prefix
            property of Section 3.2: the first ``k'`` entries solve the
            size-``k'`` problem).
        retained_indices: the same items as dense graph indices.
        cover: the achieved cover ``C(S)``.
        coverage: the paper's array ``I`` — per item, the probability of
            being requested *and* matched by ``S`` (sums to ``cover``).
        item_ids: the graph's item table, aligning ``coverage`` entries to
            item ids.
        prefix_covers: ``prefix_covers[i]`` is ``C`` of the first ``i``
            retained items (length ``k + 1``, starts at 0.0).  ``None``
            for solvers that do not build the set incrementally (BF).
        strategy: human-readable solver/strategy name.
        wall_time_s: wall-clock solve time in seconds.
        gain_evaluations: number of marginal-gain oracle calls (lazy
            strategies perform far fewer than ``n * k``).
        telemetry: observability payload (metrics registry plus the
            optional per-iteration trace) attached by the
            :func:`repro.solve` facade; ``None`` when the solver ran
            un-instrumented.
        interrupted: ``True`` when a run guard stopped the solve before
            its objective was reached; the retained set is then the
            valid greedy prefix committed so far (see
            ``docs/resilience.md``).
        interrupted_reason: human-readable trigger (deadline / RSS
            ceiling) when ``interrupted`` is set.
        context_digest: hex fingerprint of the solve's full context —
            graph content, variant, stopping rule and parameters —
            attached by the :func:`repro.solve` facade (and the
            incremental solver); ``None`` when a solver was invoked
            directly.  Two results with equal digests answer the same
            question about the same graph, which is what the serving
            layer keys its snapshot cache on.
    """

    variant: Variant
    k: int
    retained: List[Hashable]
    retained_indices: np.ndarray
    cover: float
    coverage: np.ndarray
    item_ids: List[Hashable]
    prefix_covers: Optional[np.ndarray] = None
    strategy: str = ""
    wall_time_s: float = 0.0
    gain_evaluations: int = 0
    telemetry: Optional[Telemetry] = None
    interrupted: bool = False
    interrupted_reason: Optional[str] = None
    context_digest: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def selected(self) -> List[Hashable]:
        """The retained items in selection order (stable public alias).

        ``selected`` is the contract name the serving layer and external
        consumers use; it always returns a fresh list, so callers may
        mutate it freely without corrupting the frozen result.
        """
        return list(self.retained)

    # ------------------------------------------------------------------
    def item_coverage(self, node_weight: np.ndarray) -> np.ndarray:
        """Conditional per-item coverage ``I[v] / W(v)`` (0 when W(v)=0)."""
        out = np.zeros_like(self.coverage)
        positive = node_weight > 0
        out[positive] = self.coverage[positive] / node_weight[positive]
        return out

    def cover_at(self, k_prime: int) -> float:
        """Cover of the first ``k_prime`` selected items.

        Only available when the solver recorded prefix covers; this is the
        "solve once for k, read off every smaller k" advantage the paper
        highlights at the end of Section 3.2.
        """
        if self.prefix_covers is None:
            raise SolverError(
                f"{self.strategy or 'this solver'} did not record prefix "
                f"covers"
            )
        if not (0 <= k_prime < len(self.prefix_covers)):
            raise SolverError(
                f"k'={k_prime} out of range [0, {len(self.prefix_covers) - 1}]"
            )
        return float(self.prefix_covers[k_prime])

    def prefix(self, k_prime: int) -> List[Hashable]:
        """The retained items of the induced size-``k_prime`` solution."""
        if not (0 <= k_prime <= len(self.retained)):
            raise SolverError(
                f"k'={k_prime} out of range [0, {len(self.retained)}]"
            )
        return list(self.retained[:k_prime])

    def to_dict(self) -> Dict:
        """Plain-python summary (for JSON reports and the CLI)."""
        payload = {
            "variant": self.variant.value,
            "k": self.k,
            "retained": list(self.retained),
            "cover": self.cover,
            "strategy": self.strategy,
            "wall_time_s": self.wall_time_s,
            "gain_evaluations": self.gain_evaluations,
        }
        if self.interrupted:
            payload["interrupted"] = True
            payload["interrupted_reason"] = self.interrupted_reason
        if self.context_digest is not None:
            payload["context_digest"] = self.context_digest
        return payload

    def __repr__(self) -> str:
        return (
            f"SolveResult(variant={self.variant.value}, k={self.k}, "
            f"cover={self.cover:.6f}, strategy={self.strategy!r})"
        )
