"""Problem variants of the Preference Cover problem.

The paper (Sections 2.1 and 2.2) defines two interpretations of the
probabilistic dependencies between alternatives:

* **Independent** (``IPC_k``): every retained alternative is accepted
  independently with its edge probability.  A request for a non-retained
  item ``v`` is matched with probability
  ``1 - prod_{u in R_v(S)} (1 - W(v, u))``.

* **Normalized** (``NPC_k``): each consumer accepts at most one
  alternative, so the outgoing edge weights of every node sum to at most
  one and a request for a non-retained ``v`` is matched with probability
  ``sum_{u in R_v(S)} W(v, u)``.

Both cover functions are nonnegative, monotone and submodular, which is
what makes the shared greedy scheme (Algorithm 1) applicable to both.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ..errors import VariantError


class Variant(enum.Enum):
    """The two edge-dependency semantics studied in the paper."""

    INDEPENDENT = "independent"
    NORMALIZED = "normalized"

    @classmethod
    def coerce(cls, value: "Variant | str") -> "Variant":
        """Accept either a :class:`Variant` or its string name/value.

        This is the single normalization helper: every surface that
        takes a variant parameter (facade, serving, CLI, pipeline)
        funnels through it, so plain strings work anywhere a
        :class:`Variant` is required.  Raises
        :class:`~repro.errors.VariantError` (a :class:`SolverError`
        that is also a :class:`ValueError`) for anything unrecognized;
        matching is case-insensitive and accepts the short aliases
        ``"ipc"``/``"npc"``.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            key = value.strip().lower()
            aliases = {
                "independent": cls.INDEPENDENT,
                "ipc": cls.INDEPENDENT,
                "ipc_k": cls.INDEPENDENT,
                "normalized": cls.NORMALIZED,
                "normalised": cls.NORMALIZED,
                "npc": cls.NORMALIZED,
                "npc_k": cls.NORMALIZED,
            }
            if key in aliases:
                return aliases[key]
        raise VariantError(
            f"unknown Preference Cover variant: {value!r} "
            f"(expected 'independent' or 'normalized', a Variant member, "
            f"or one of the aliases 'ipc'/'npc')"
        )

    def match_probability(self, edge_weights: Iterable[float]) -> float:
        """Probability a request is matched by retained alternatives.

        ``edge_weights`` are the weights of the edges from the requested
        (non-retained) item into its *retained* neighbors.  This is the
        scalar building block of both cover functions (Definitions 2.1 and
        2.2); it is exercised directly by the Monte-Carlo replay validator.
        """
        if self is Variant.INDEPENDENT:
            not_matched = 1.0
            for w in edge_weights:
                not_matched *= 1.0 - w
            return 1.0 - not_matched
        return min(1.0, sum(edge_weights))

    @property
    def short_name(self) -> str:
        """Paper-style abbreviation: ``IPC`` or ``NPC``."""
        return "IPC" if self is Variant.INDEPENDENT else "NPC"


#: Convenience aliases mirroring the paper's notation.
INDEPENDENT = Variant.INDEPENDENT
NORMALIZED = Variant.NORMALIZED
