"""Marginal-gain state: the paper's ``Gain`` and ``AddNode`` procedures.

:class:`GreedyState` holds the solver's mutable state — the retained-set
membership mask, the array ``I`` (per-item probability of being requested
and matched by the current set), and the running cover ``C(S)`` — and
implements Algorithms 2–5 on top of a :class:`repro.core.csr.CSRGraph`:

* :meth:`GreedyState.gain` — Algorithm 2 (Normalized) / Algorithm 4
  (Independent): the marginal increase in ``C(S)`` from adding a node,
  without mutating state;
* :meth:`GreedyState.add_node` — Algorithm 3 / Algorithm 5: commit a node,
  updating ``I`` and ``C(S)`` in ``O(in_degree)``.

The arithmetic itself lives in :mod:`repro.core.kernels`; the state
object binds the graph arrays once at construction and dispatches every
hot call through the selected kernel backend, so swapping the reference
``numpy`` kernels for compiled ones changes nothing here.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Sequence

import numpy as np

from ..errors import SolverError
from ..observability import NULL_TRACER
from .csr import CSRGraph
from .kernels import KernelBackend, get_kernels
from .variants import Variant


def order_digest(order: Sequence[int], start: int = 0) -> int:
    """CRC-32 digest of a selection order (little-endian int64 stream).

    The digest of ``order[:i]`` extended by ``order[i]`` equals
    ``zlib.crc32(pack(order[i]), digest_of_prefix)``, so
    :class:`GreedyState` can maintain its own digest in O(1) per
    :meth:`~GreedyState.add_node` while verifiers recompute prefixes
    from scratch.  Used by the parallel evaluator's epoch-stamped
    protocol to prove that a worker replica holds *exactly* the same
    selection prefix as the parent state — an equal epoch (length)
    alone cannot distinguish two different selections of equal size.
    """
    digest = start
    for node in order:
        digest = zlib.crc32(struct.pack("<q", int(node)), digest)
    return digest


class GreedyState:
    """Incremental cover bookkeeping for one greedy run.

    The key identity, maintained after every :meth:`add_node`:
    ``self.cover == self.coverage.sum() == C(S)`` where ``S`` is the set
    of nodes with ``self.in_set`` true.  ``deficit[v] = W(v) - I[v]`` is
    kept alongside because the Independent gain rule (Algorithm 4, line 3)
    multiplies edge weights by exactly this quantity.

    ``kernels`` selects the arithmetic backend (see
    :mod:`repro.core.kernels`); the default resolves ``REPRO_KERNELS``.
    """

    def __init__(
        self,
        csr: CSRGraph,
        variant: "Variant | str",
        *,
        tracer=None,
        kernels: "KernelBackend | str | None" = None,
    ) -> None:
        self.csr = csr
        self.variant = Variant.coerce(variant)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.kernels = get_kernels(kernels)
        n = csr.n_items
        self.in_set = np.zeros(n, dtype=bool)
        self.coverage = np.zeros(n, dtype=np.float64)  # the paper's I
        self.deficit = csr.node_weight.copy()          # W(v) - I[v]
        self.cover = 0.0
        self.size = 0
        self.order: list[int] = []
        # Epoch-stamped state protocol (see repro.core.parallel): the
        # epoch counts committed AddNode calls and the digest fingerprints
        # the exact selection order, so replicas can prove synchrony.
        self.epoch = 0
        self.order_digest = 0
        # Hot-path bindings: the scalar oracle runs once per CELF heap
        # re-evaluation, so the per-call constants — the read-only graph
        # arrays, the variant flag and whether tracing is live at all —
        # are resolved here instead of on every call.
        self._independent = self.variant is Variant.INDEPENDENT
        self._tracing = self.tracer is not NULL_TRACER and self.tracer.enabled
        self._graph_args = (csr.in_ptr, csr.in_src, csr.in_weight,
                            csr.node_weight)
        self._gain_kernel = self.kernels.gain_scalar
        self._add_kernel = self.kernels.add_node

    # ------------------------------------------------------------------
    def gain(self, v: int) -> float:
        """Marginal gain of adding node ``v`` (Algorithms 2 and 4)."""
        if self._tracing:
            self.tracer.incr("oracle.gain_calls")
        return float(
            self._gain_kernel(
                v, *self._graph_args, self.in_set, self.deficit,
                self._independent,
            )
        )

    def add_node(self, v: int) -> float:
        """Commit node ``v`` to the retained set (Algorithms 3 and 5).

        Returns the realized marginal gain (equal to what :meth:`gain`
        would have returned immediately before the call).
        """
        if self.in_set[v]:
            raise SolverError(f"node {v} is already retained")
        # The kernel returns only the spill through in-neighbors; the
        # direct term and the spill are accumulated into ``cover`` as
        # two separate additions to keep rounding identical to the
        # pre-kernel implementation.
        direct = float(self.deficit[v])
        spill = float(
            self._add_kernel(
                v, *self._graph_args, self.in_set, self.coverage,
                self.deficit, self._independent,
            )
        )
        self.cover += direct
        self.cover += spill
        self.size += 1
        self.order.append(int(v))
        self.epoch += 1
        self.order_digest = zlib.crc32(
            struct.pack("<q", int(v)), self.order_digest
        )
        return direct + spill

    # ------------------------------------------------------------------
    def gains_all(self, candidates: Optional[np.ndarray] = None) -> np.ndarray:
        """Marginal gains of many candidates in one pass.

        Semantically ``[self.gain(v) for v in candidates]`` but computed
        by the batch kernel in a single sweep over the in-edge arrays,
        which is what makes the naive strategy's per-iteration ``O(n D)``
        work tolerable in Python.  This is also the unit of work the
        parallel executor partitions across processes.
        """
        csr = self.csr
        if self._tracing:
            self.tracer.incr(
                "oracle.batch_evaluations", csr.n_items - self.size
            )
        gains = self.kernels.gains_block(
            0, csr.n_items, *self._graph_args, self.in_set, self.deficit,
            self._independent,
        )
        if candidates is not None:
            return gains[candidates]
        return gains

    def gains_range(self, lo: int, hi: int) -> np.ndarray:
        """Marginal gains of the contiguous candidate block ``[lo, hi)``.

        Identical to ``self.gains_all()[lo:hi]`` but touches only the
        in-edges of that block.  This is the unit of work handed to each
        worker by the parallel gain evaluator — the paper's observation
        that "computations for each node are independent, and can be
        performed in parallel".
        """
        return self.kernels.gains_block(
            lo, hi, *self._graph_args, self.in_set, self.deficit,
            self._independent,
        )

    def retained_indices(self) -> np.ndarray:
        """Retained nodes in selection order."""
        return np.asarray(self.order, dtype=np.int64)
