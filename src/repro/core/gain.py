"""Marginal-gain state: the paper's ``Gain`` and ``AddNode`` procedures.

:class:`GreedyState` holds the solver's mutable state — the retained-set
membership mask, the array ``I`` (per-item probability of being requested
and matched by the current set), and the running cover ``C(S)`` — and
implements Algorithms 2–5 on top of a :class:`repro.core.csr.CSRGraph`:

* :meth:`GreedyState.gain` — Algorithm 2 (Normalized) / Algorithm 4
  (Independent): the marginal increase in ``C(S)`` from adding a node,
  without mutating state;
* :meth:`GreedyState.add_node` — Algorithm 3 / Algorithm 5: commit a node,
  updating ``I`` and ``C(S)`` in ``O(in_degree)``.

The inner loops are vectorized over each node's in-edge slice, which is
the array equivalent of the paper's "foreach u with an edge into v".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SolverError
from ..observability import NULL_TRACER
from .csr import CSRGraph
from .variants import Variant


class GreedyState:
    """Incremental cover bookkeeping for one greedy run.

    The key identity, maintained after every :meth:`add_node`:
    ``self.cover == self.coverage.sum() == C(S)`` where ``S`` is the set
    of nodes with ``self.in_set`` true.  ``deficit[v] = W(v) - I[v]`` is
    kept alongside because the Independent gain rule (Algorithm 4, line 3)
    multiplies edge weights by exactly this quantity.
    """

    def __init__(
        self, csr: CSRGraph, variant: "Variant | str", *, tracer=None
    ) -> None:
        self.csr = csr
        self.variant = Variant.coerce(variant)
        self.tracer = NULL_TRACER if tracer is None else tracer
        n = csr.n_items
        self.in_set = np.zeros(n, dtype=bool)
        self.coverage = np.zeros(n, dtype=np.float64)  # the paper's I
        self.deficit = csr.node_weight.copy()          # W(v) - I[v]
        self.cover = 0.0
        self.size = 0
        self.order: list[int] = []

    # ------------------------------------------------------------------
    def gain(self, v: int) -> float:
        """Marginal gain of adding node ``v`` (Algorithms 2 and 4)."""
        if self.tracer.enabled:
            self.tracer.incr("oracle.gain_calls")
        if self.in_set[v]:
            return 0.0
        g = self.deficit[v]
        sources, weights = self.csr.in_edges(v)
        if sources.size:
            outside = ~self.in_set[sources]
            if outside.any():
                u = sources[outside]
                w = weights[outside]
                if self.variant is Variant.INDEPENDENT:
                    # Algorithm 4 line 3: W(u, v) * (W(u) - I[u])
                    g += float(np.dot(w, self.deficit[u]))
                else:
                    # Algorithm 2 line 3: W(u) * W(u, v)
                    g += float(np.dot(w, self.csr.node_weight[u]))
        return float(g)

    def add_node(self, v: int) -> float:
        """Commit node ``v`` to the retained set (Algorithms 3 and 5).

        Returns the realized marginal gain (equal to what :meth:`gain`
        would have returned immediately before the call).
        """
        if self.in_set[v]:
            raise SolverError(f"node {v} is already retained")
        gained = self.deficit[v]
        self.cover += self.deficit[v]
        self.coverage[v] = self.csr.node_weight[v]
        self.deficit[v] = 0.0
        self.in_set[v] = True

        sources, weights = self.csr.in_edges(v)
        if sources.size:
            outside = ~self.in_set[sources]
            if outside.any():
                u = sources[outside]
                w = weights[outside]
                if self.variant is Variant.INDEPENDENT:
                    delta = w * self.deficit[u]
                else:
                    delta = w * self.csr.node_weight[u]
                self.coverage[u] += delta
                self.deficit[u] -= delta
                self.cover += float(delta.sum())
                gained += float(delta.sum())
        self.size += 1
        self.order.append(int(v))
        return float(gained)

    # ------------------------------------------------------------------
    def gains_all(self, candidates: Optional[np.ndarray] = None) -> np.ndarray:
        """Marginal gains of many candidates in one pass.

        Semantically ``[self.gain(v) for v in candidates]`` but computed
        with a single vectorized sweep over the in-edge arrays, which is
        what makes the naive strategy's per-iteration ``O(n D)`` work
        tolerable in Python.  This is also the unit of work the parallel
        executor partitions across processes.
        """
        csr = self.csr
        if self.tracer.enabled:
            self.tracer.incr(
                "oracle.batch_evaluations", csr.n_items - self.size
            )
        # Per-edge contribution of source u to the gain of destination v.
        source_outside = ~self.in_set[csr.in_src]
        if self.variant is Variant.INDEPENDENT:
            contrib = csr.in_weight * self.deficit[csr.in_src]
        else:
            contrib = csr.in_weight * csr.node_weight[csr.in_src]
        contrib = np.where(source_outside, contrib, 0.0)
        # Segment sums over in-edge slices via prefix sums; unlike
        # reduceat this handles empty slices exactly.
        prefix = np.concatenate(([0.0], np.cumsum(contrib)))
        sums = prefix[csr.in_ptr[1:]] - prefix[csr.in_ptr[:-1]]
        gains = self.deficit + sums
        gains[self.in_set] = 0.0
        if candidates is not None:
            return gains[candidates]
        return gains

    def gains_range(self, lo: int, hi: int) -> np.ndarray:
        """Marginal gains of the contiguous candidate block ``[lo, hi)``.

        Identical to ``self.gains_all()[lo:hi]`` but touches only the
        in-edges of that block.  This is the unit of work handed to each
        worker by the parallel gain evaluator — the paper's observation
        that "computations for each node are independent, and can be
        performed in parallel".
        """
        csr = self.csr
        edge_lo, edge_hi = csr.in_ptr[lo], csr.in_ptr[hi]
        src = csr.in_src[edge_lo:edge_hi]
        wgt = csr.in_weight[edge_lo:edge_hi]
        source_outside = ~self.in_set[src]
        if self.variant is Variant.INDEPENDENT:
            contrib = wgt * self.deficit[src]
        else:
            contrib = wgt * csr.node_weight[src]
        contrib = np.where(source_outside, contrib, 0.0)
        prefix = np.concatenate(([0.0], np.cumsum(contrib)))
        starts = csr.in_ptr[lo:hi] - edge_lo
        ends = csr.in_ptr[lo + 1:hi + 1] - edge_lo
        sums = prefix[ends] - prefix[starts]
        gains = self.deficit[lo:hi] + sums
        gains[self.in_set[lo:hi]] = 0.0
        return gains

    def retained_indices(self) -> np.ndarray:
        """Retained nodes in selection order."""
        return np.asarray(self.order, dtype=np.int64)
