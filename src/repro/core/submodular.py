"""Generic submodular-maximization utilities (paper Section 2.3).

The cover functions of both Preference Cover variants are nonnegative,
monotone and submodular, which by the Nemhauser–Wolsey–Fisher result
(Lemma 2.6 in the paper) makes the marginal-gain greedy a
``(1 - 1/e)``-approximation.  This module provides:

* :func:`greedy_maximize` — the generic cardinality-constrained greedy
  over an arbitrary set-function oracle (used by the reduction-based
  solvers and as an executable statement of Lemma 2.6);
* :func:`check_monotone` / :func:`check_submodular` — randomized property
  checkers that the test-suite (and hypothesis) run against both cover
  functions and the reduction targets.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Sequence, Tuple

from .._rng import SeedLike, resolve_rng

#: A set function: maps a collection of elements to a real value.
SetFunction = Callable[[FrozenSet], float]

#: The (1 - 1/e) constant of Lemma 2.6 / Theorem 4.1.
ONE_MINUS_INV_E = 1.0 - 1.0 / 2.718281828459045


def greedy_maximize(
    objective: SetFunction,
    universe: Sequence,
    k: int,
    *,
    tolerance: float = 0.0,
) -> Tuple[List, float]:
    """Cardinality-constrained greedy maximization of a set function.

    At each of ``k`` steps, adds the element with maximum marginal gain
    (ties broken by universe order).  For nonnegative monotone submodular
    ``objective`` this guarantees a ``(1 - 1/e)`` approximation
    (Lemma 2.6).  The oracle is called ``O(len(universe) * k)`` times —
    intended for small instances and cross-checking the specialized
    solvers, not for scale.

    Returns ``(selection_in_order, objective_value)``.
    """
    selected: List = []
    selected_set: FrozenSet = frozenset()
    current = objective(selected_set)
    for _ in range(k):
        best_gain = -float("inf")
        best_element = None
        for element in universe:
            if element in selected_set:
                continue
            gain = objective(selected_set | {element}) - current
            if gain > best_gain + tolerance:
                best_gain = gain
                best_element = element
        if best_element is None:
            break
        selected.append(best_element)
        selected_set = selected_set | {best_element}
        current += best_gain
    return selected, objective(selected_set)


def check_monotone(
    objective: SetFunction,
    universe: Sequence,
    *,
    trials: int = 50,
    seed: SeedLike = 0,
    tolerance: float = 1e-9,
) -> bool:
    """Randomized monotonicity check: ``f(S + v) >= f(S)``.

    Samples ``trials`` random ``(S, v)`` pairs; returns False on the
    first violation beyond ``tolerance``.
    """
    rng = resolve_rng(seed)
    elements = list(universe)
    if not elements:
        return True
    for _ in range(trials):
        size = int(rng.integers(0, len(elements)))
        subset = frozenset(
            elements[i]
            for i in rng.choice(len(elements), size=size, replace=False)
        )
        v = elements[int(rng.integers(0, len(elements)))]
        if objective(subset | {v}) < objective(subset) - tolerance:
            return False
    return True


def check_submodular(
    objective: SetFunction,
    universe: Sequence,
    *,
    trials: int = 50,
    seed: SeedLike = 0,
    tolerance: float = 1e-9,
) -> bool:
    """Randomized diminishing-returns check.

    Samples random chains ``S ⊆ T`` and elements ``v`` and verifies
    ``f(S + v) - f(S) >= f(T + v) - f(T)`` (Definition 2.5).
    """
    rng = resolve_rng(seed)
    elements = list(universe)
    if not elements:
        return True
    n = len(elements)
    for _ in range(trials):
        t_size = int(rng.integers(0, n + 1))
        t_indices = rng.choice(n, size=t_size, replace=False)
        s_size = int(rng.integers(0, t_size + 1))
        s_indices = t_indices[:s_size]
        bigger = frozenset(elements[i] for i in t_indices)
        smaller = frozenset(elements[i] for i in s_indices)
        v = elements[int(rng.integers(0, n))]
        gain_small = objective(smaller | {v}) - objective(smaller)
        gain_big = objective(bigger | {v}) - objective(bigger)
        if gain_small < gain_big - tolerance:
            return False
    return True
