"""The preference graph model (paper Section 2).

A :class:`PreferenceGraph` is a directed graph whose nodes are items and
whose weights encode consumer preferences:

* ``W(v)`` — node weight — the probability that item ``v`` is the one a
  consumer requests (node weights sum to one over the catalog);
* ``W(v, u)`` — edge weight — the probability that, with ``v`` missing,
  the consumer accepts ``u`` as an alternative (edge weights lie in
  ``(0, 1]``).

This class is the mutable, dictionary-backed representation used for
construction, validation and small/medium instances.  For large instances
the solvers convert it once into the immutable array-backed
:class:`repro.core.csr.CSRGraph` via :meth:`PreferenceGraph.to_csr`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from ..errors import GraphValidationError, UnknownItemError
from .variants import Variant

#: Item identifiers may be any hashable value (strings in practice).
Item = Hashable

#: Tolerance used when checking probability invariants.
WEIGHT_TOLERANCE = 1e-9


class PreferenceGraph:
    """Weighted directed graph of items and substitution preferences.

    Instances are built incrementally with :meth:`add_item` and
    :meth:`add_edge`, or in one shot with :meth:`from_weights`.  Node
    weights may be supplied unnormalized and scaled afterwards with
    :meth:`normalize_node_weights`.
    """

    def __init__(self) -> None:
        self._node_weight: Dict[Item, float] = {}
        self._out: Dict[Item, Dict[Item, float]] = {}
        self._in: Dict[Item, Dict[Item, float]] = {}
        self._edge_count = 0
        # Variants validated at the default tolerance since the last
        # mutation; any structural or weight change clears it.
        self._validated: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_item(self, item: Item, weight: float) -> None:
        """Add ``item`` with request probability ``weight``.

        Re-adding an existing item overwrites its weight but keeps its
        edges.  Negative weights are rejected immediately; the sum-to-one
        invariant is only enforced by :meth:`validate`, so weights can be
        accumulated freely during construction.
        """
        weight = float(weight)
        if weight < 0.0 or math.isnan(weight):
            raise GraphValidationError(
                f"node weight for {item!r} must be nonnegative, got {weight}"
            )
        if item not in self._node_weight:
            self._out[item] = {}
            self._in[item] = {}
        self._node_weight[item] = weight
        self._validated.clear()

    def add_edge(self, source: Item, target: Item, weight: float) -> None:
        """Add the preference edge ``source -> target``.

        The edge means: a consumer requesting ``source`` accepts ``target``
        as an alternative with probability ``weight``.  Both endpoints must
        already exist; self-loops are rejected (a retained item always
        covers itself, so a self-edge carries no information in this
        model — the VC_k *reduction* introduces self-edges, but on its own
        instance type).
        """
        if source not in self._node_weight:
            raise UnknownItemError(source)
        if target not in self._node_weight:
            raise UnknownItemError(target)
        if source == target:
            raise GraphValidationError(
                f"self-edge on {source!r}: an item trivially covers itself"
            )
        weight = float(weight)
        if not (0.0 < weight <= 1.0) or math.isnan(weight):
            raise GraphValidationError(
                f"edge weight for {source!r}->{target!r} must be in (0, 1], "
                f"got {weight}"
            )
        if target not in self._out[source]:
            self._edge_count += 1
        self._out[source][target] = weight
        self._in[target][source] = weight
        self._validated.clear()

    def remove_edge(self, source: Item, target: Item) -> None:
        """Remove the edge ``source -> target`` (KeyError if absent)."""
        try:
            del self._out[source][target]
            del self._in[target][source]
        except KeyError as exc:
            raise UnknownItemError((source, target)) from exc
        self._edge_count -= 1
        self._validated.clear()

    @classmethod
    def from_weights(
        cls,
        node_weights: Mapping[Item, float],
        edges: Iterable[Tuple[Item, Item, float]] = (),
        *,
        normalize: bool = False,
    ) -> "PreferenceGraph":
        """Build a graph from a node-weight mapping and an edge iterable.

        With ``normalize=True`` node weights are rescaled to sum to one,
        which is convenient when passing raw purchase counts.
        """
        graph = cls()
        for item, weight in node_weights.items():
            graph.add_item(item, weight)
        for source, target, weight in edges:
            graph.add_edge(source, target, weight)
        if normalize:
            graph.normalize_node_weights()
        return graph

    def normalize_node_weights(self) -> None:
        """Rescale node weights in place so they sum to one."""
        total = sum(self._node_weight.values())
        if total <= 0.0:
            raise GraphValidationError(
                "cannot normalize: node weights sum to zero"
            )
        for item in self._node_weight:
            self._node_weight[item] /= total
        self._validated.clear()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Number of items (nodes)."""
        return len(self._node_weight)

    @property
    def n_edges(self) -> int:
        """Number of directed preference edges."""
        return self._edge_count

    def __len__(self) -> int:
        return len(self._node_weight)

    def __contains__(self, item: Item) -> bool:
        return item in self._node_weight

    def __iter__(self) -> Iterator[Item]:
        return iter(self._node_weight)

    def items(self) -> Iterator[Item]:
        """Iterate over item ids in insertion order."""
        return iter(self._node_weight)

    def node_weight(self, item: Item) -> float:
        """Return ``W(item)``, the request probability of ``item``."""
        try:
            return self._node_weight[item]
        except KeyError as exc:
            raise UnknownItemError(item) from exc

    def edge_weight(self, source: Item, target: Item) -> float:
        """Return ``W(source, target)`` (UnknownItemError if absent)."""
        try:
            return self._out[source][target]
        except KeyError as exc:
            raise UnknownItemError((source, target)) from exc

    def has_edge(self, source: Item, target: Item) -> bool:
        """True if the preference edge ``source -> target`` exists."""
        return source in self._out and target in self._out[source]

    def neighbors(self, item: Item) -> Dict[Item, float]:
        """Alternatives for ``item``: mapping neighbor -> edge weight.

        These are the items a consumer requesting ``item`` may accept
        instead (the paper's outgoing edges).  The returned dict is a copy.
        """
        try:
            return dict(self._out[item])
        except KeyError as exc:
            raise UnknownItemError(item) from exc

    def in_neighbors(self, item: Item) -> Dict[Item, float]:
        """Items for which ``item`` serves as an alternative (a copy)."""
        try:
            return dict(self._in[item])
        except KeyError as exc:
            raise UnknownItemError(item) from exc

    def out_degree(self, item: Item) -> int:
        """Number of alternatives of ``item``."""
        return len(self._out[item]) if item in self._out else 0

    def in_degree(self, item: Item) -> int:
        """Number of items that accept ``item`` as an alternative."""
        return len(self._in[item]) if item in self._in else 0

    def out_weight_sum(self, item: Item) -> float:
        """Sum of outgoing edge weights of ``item``.

        Under the Normalized variant this must not exceed one.
        """
        return sum(self._out[item].values()) if item in self._out else 0.0

    def max_in_degree(self) -> int:
        """The paper's ``D``: the maximum incoming degree over all nodes."""
        if not self._in:
            return 0
        return max(len(sources) for sources in self._in.values())

    def edges(self) -> Iterator[Tuple[Item, Item, float]]:
        """Iterate over ``(source, target, weight)`` triples."""
        for source, targets in self._out.items():
            for target, weight in targets.items():
                yield source, target, weight

    def total_node_weight(self) -> float:
        """Sum of all node weights (should be 1 after validation)."""
        return sum(self._node_weight.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        variant: "Variant | str" = Variant.INDEPENDENT,
        *,
        tolerance: float = 1e-6,
    ) -> None:
        """Check all model invariants, raising GraphValidationError on failure.

        Checks (Section 2 of the paper):

        * at least one item exists;
        * node weights are nonnegative and sum to one (within ``tolerance``);
        * edge weights lie in ``(0, 1]`` (enforced at insertion, re-checked
          here for graphs built through other paths);
        * under the Normalized variant, each node's outgoing edge weights
          sum to at most ``1 + tolerance``.
        """
        variant = Variant.coerce(variant)
        if tolerance == 1e-6 and variant in self._validated:
            return
        if not self._node_weight:
            raise GraphValidationError("graph has no items")
        total = self.total_node_weight()
        if abs(total - 1.0) > tolerance:
            raise GraphValidationError(
                f"node weights must sum to 1, got {total:.9f} "
                f"(call normalize_node_weights() to rescale)"
            )
        for source, targets in self._out.items():
            out_sum = 0.0
            for target, weight in targets.items():
                if not (0.0 < weight <= 1.0 + tolerance):
                    raise GraphValidationError(
                        f"edge weight {source!r}->{target!r} out of (0, 1]: "
                        f"{weight}"
                    )
                out_sum += weight
            if variant is Variant.NORMALIZED and out_sum > 1.0 + tolerance:
                raise GraphValidationError(
                    f"Normalized variant requires out-weights of {source!r} "
                    f"to sum to <= 1, got {out_sum:.9f}"
                )
        if tolerance == 1e-6:
            self._validated.add(variant)

    def is_validated(self, variant: "Variant | str") -> bool:
        """Whether :meth:`validate` succeeded since the last mutation."""
        return Variant.coerce(variant) in self._validated

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRGraph":
        """Convert to the immutable array-backed representation."""
        from .csr import CSRGraph

        return CSRGraph.from_preference_graph(self)

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph`.

        Node weights are stored under the ``weight`` node attribute and
        edge weights under the ``weight`` edge attribute, so standard
        networkx algorithms and serializers apply directly.
        """
        import networkx as nx

        nxg = nx.DiGraph()
        for item, weight in self._node_weight.items():
            nxg.add_node(item, weight=weight)
        for source, target, weight in self.edges():
            nxg.add_edge(source, target, weight=weight)
        return nxg

    @classmethod
    def from_networkx(cls, nxg) -> "PreferenceGraph":
        """Build from a networkx DiGraph with ``weight`` attributes."""
        graph = cls()
        for node, data in nxg.nodes(data=True):
            if "weight" not in data:
                raise GraphValidationError(
                    f"networkx node {node!r} lacks a 'weight' attribute"
                )
            graph.add_item(node, data["weight"])
        for source, target, data in nxg.edges(data=True):
            if "weight" not in data:
                raise GraphValidationError(
                    f"networkx edge {source!r}->{target!r} lacks a "
                    f"'weight' attribute"
                )
            graph.add_edge(source, target, data["weight"])
        return graph

    def copy(self) -> "PreferenceGraph":
        """Deep copy of the graph."""
        clone = PreferenceGraph()
        for item, weight in self._node_weight.items():
            clone.add_item(item, weight)
        for source, target, weight in self.edges():
            clone.add_edge(source, target, weight)
        return clone

    def __repr__(self) -> str:
        return (
            f"PreferenceGraph(n_items={self.n_items}, "
            f"n_edges={self.n_edges})"
        )
