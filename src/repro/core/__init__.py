"""Core Preference Cover machinery: graphs, cover functions, solvers."""

from .baselines import (
    random_solve,
    top_k_coverage_order,
    top_k_coverage_solve,
    top_k_coverage_threshold,
    top_k_weight_order,
    top_k_weight_solve,
    top_k_weight_threshold,
)
from .bruteforce import brute_force_solve
from .cover import cover, coverage_vector, item_coverage, resolve_indices
from .csr import CSRGraph, as_csr
from .gain import GreedyState
from .graph import PreferenceGraph
from .greedy import STRATEGIES, greedy_order, greedy_solve
from .kernels import (
    KERNEL_CHOICES,
    KernelBackend,
    available_backends,
    get_kernels,
)
from .parallel import (
    ParallelCostModel,
    ParallelGainEvaluator,
    calibrate_cost_model,
    speedup_curve,
)
from .result import SolveResult
from .stats import GraphStats, gini_coefficient, graph_stats
from .submodular import (
    ONE_MINUS_INV_E,
    check_monotone,
    check_submodular,
    greedy_maximize,
)
from .threshold import greedy_threshold_solve
from .variants import INDEPENDENT, NORMALIZED, Variant

__all__ = [
    "CSRGraph",
    "GreedyState",
    "INDEPENDENT",
    "KERNEL_CHOICES",
    "KernelBackend",
    "NORMALIZED",
    "ONE_MINUS_INV_E",
    "ParallelCostModel",
    "ParallelGainEvaluator",
    "PreferenceGraph",
    "STRATEGIES",
    "GraphStats",
    "SolveResult",
    "Variant",
    "as_csr",
    "available_backends",
    "get_kernels",
    "brute_force_solve",
    "calibrate_cost_model",
    "check_monotone",
    "check_submodular",
    "cover",
    "gini_coefficient",
    "graph_stats",
    "coverage_vector",
    "greedy_maximize",
    "greedy_order",
    "greedy_solve",
    "greedy_threshold_solve",
    "item_coverage",
    "random_solve",
    "resolve_indices",
    "speedup_curve",
    "top_k_coverage_order",
    "top_k_coverage_solve",
    "top_k_coverage_threshold",
    "top_k_weight_order",
    "top_k_weight_solve",
    "top_k_weight_threshold",
]
