"""The complementary minimization problem (Section 3.2, Figure 4f).

Instead of an upper bound ``k`` on the retained-set size, the input is a
lower bound ``threshold`` on the cover, and the goal is the *smallest*
retained set achieving it.  The paper notes that a generic reduction —
binary search on ``k`` over any fixed-``k`` solver — pays an ``O(log n)``
multiplicative overhead, whereas the greedy's incremental order solves
the problem directly: run greedy until the running cover first reaches
the threshold.
"""

from __future__ import annotations

import time

import numpy as np

from .._compat import keyword_only_shim
from ..errors import SolverError
from ..observability import coerce_tracer
from .csr import as_csr
from .gain import GreedyState
from .greedy import (
    _make_hooks,
    accelerated_step,
    finish_interrupted,
    prepare_accelerated_gains,
)
from .result import SolveResult
from .variants import Variant


@keyword_only_shim("threshold", "variant")
def greedy_threshold_solve(
    graph,
    *,
    threshold: float,
    variant: "Variant | str",
    tracer=None,
    kernels=None,
    parallel=None,
    checkpoint=None,
    guard=None,
) -> SolveResult:
    """Smallest greedy set whose cover reaches ``threshold``.

    Equivalent to taking the shortest qualifying prefix of the full
    greedy ordering (prefix property), but stops as soon as the threshold
    is crossed instead of ordering all ``n`` items — the paper's direct
    approach that avoids the binary-search overhead.

    ``kernels`` selects the arithmetic backend (see
    :mod:`repro.core.kernels`).  ``parallel`` accepts a
    :class:`~repro.core.parallel.ParallelGainEvaluator`; when given, each
    selection recomputes the full gain vector across the pool's workers
    (the naive recomputation rule) instead of patching it incrementally —
    same selections, different cost profile, useful on wide graphs where
    one machine-sized gain sweep dominates.

    ``checkpoint`` accepts a checkpoint directory or a
    :class:`~repro.resilience.Checkpointer`; snapshots taken under a
    ``k``-bounded solve are interchangeable with threshold solves over
    the same instance (the context hash deliberately excludes the
    stopping rule), so a crashed run resumes from the longest valid
    prefix and keeps selecting until the threshold is met.  ``guard``
    accepts a :class:`~repro.resilience.RunGuard`; a tripped guard
    either raises :class:`~repro.errors.SolverInterrupted` or returns
    the partial result flagged ``interrupted=True``.

    Raises :class:`SolverError` for thresholds outside ``[0, 1]`` or
    thresholds that even the full catalog cannot reach (possible only
    through floating-point shortfall, since retaining all items covers
    everything).
    """
    tracer = coerce_tracer(tracer)
    variant = Variant.coerce(variant)
    if not (0.0 <= threshold <= 1.0):
        raise SolverError(f"threshold must be in [0, 1], got {threshold}")
    csr = as_csr(graph)
    n = csr.n_items
    state = GreedyState(csr, variant, tracer=tracer, kernels=kernels)
    prefix_covers = [0.0]
    if tracer.enabled:
        tracer.event(
            "solve.start", solver="greedy-threshold",
            variant=variant.value, threshold=threshold, n_items=n,
            parallel=parallel is not None,
        )
    start = time.perf_counter()

    hooks, checkpointer, context = _make_hooks(
        checkpoint, guard, csr, variant, None, None, tracer
    )
    if guard is not None:
        guard.start()
    if checkpointer is not None and checkpointer.resume:
        snapshot = checkpointer.load(context, n_items=n, tracer=tracer)
        if snapshot is not None:
            replayed = 0
            for node in snapshot.order:
                if state.cover >= threshold - 1e-12:
                    break
                if state.in_set[node]:
                    continue
                state.add_node(node)
                prefix_covers.append(state.cover)
                replayed += 1
            if tracer.enabled:
                tracer.incr("resilience.resumes")
                tracer.incr("resilience.resumed_rounds", replayed)
                tracer.event(
                    "solve.resume", epoch=snapshot.epoch,
                    replayed=replayed, cover=float(state.cover),
                )

    # Evaluation accounting mirrors greedy_solve: the accelerated path
    # pays one full n-candidate sweep up front and then patches gains
    # incrementally; the parallel (naive-recomputation) path pays one
    # sweep over the live candidates per selection round.
    if parallel is not None:
        gains = None
        evaluations = 0
    else:
        gains = prepare_accelerated_gains(state)
        evaluations = n
    stop_reason = None
    while state.cover < threshold - 1e-12:
        if state.size == n:
            raise SolverError(
                f"threshold {threshold} unreachable: cover of the full "
                f"catalog is {state.cover:.12f}"
            )
        if parallel is not None:
            round_gains = parallel.gains(state)
            evaluations += n - state.size
            round_gains[state.in_set] = -np.inf
            best = int(np.argmax(round_gains))
            gain = float(round_gains[best])
            state.add_node(best)
        else:
            best, gain = accelerated_step(state, gains, tracer=tracer)
        prefix_covers.append(state.cover)
        if tracer.enabled:
            tracer.iteration(
                state.size - 1, item=csr.items[best], node=best,
                gain=gain, cover=float(state.cover),
                strategy="greedy-threshold",
            )
        if hooks is not None:
            stop_reason = hooks.after_round(state)
            if stop_reason is not None:
                break

    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.incr("solver.gain_evaluations", evaluations)
        tracer.event(
            "solve.end", solver="greedy-threshold",
            cover=float(state.cover), wall_time_s=elapsed,
            retained=state.size, interrupted=stop_reason is not None,
        )
    if checkpointer is not None and state.size > 0:
        # Best-effort final snapshot: an interrupted prefix resumes even
        # between the cadence's save points, and a completed one is
        # reusable by later solves over the same instance.
        checkpointer.save(state, context, tracer=tracer)
    indices = state.retained_indices()
    result = SolveResult(
        variant=variant,
        k=state.size,
        retained=[csr.items[i] for i in indices.tolist()],
        retained_indices=indices,
        cover=float(state.cover),
        coverage=state.coverage,
        item_ids=csr.items,
        prefix_covers=np.asarray(prefix_covers, dtype=np.float64),
        strategy="greedy-threshold",
        wall_time_s=elapsed,
        gain_evaluations=evaluations,
        interrupted=stop_reason is not None,
        interrupted_reason=stop_reason,
    )
    return finish_interrupted(stop_reason, guard, result)
