"""Descriptive statistics of preference graphs.

Inventory analysts inspect a preference graph before reducing it:
how skewed is demand, how substitutable is the catalog, how much of the
demand could alternatives absorb at all.  These are also the quantities
the paper's performance analysis is parameterized by (``n``, ``D`` — the
maximum in-degree — and the edge count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .csr import as_csr


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a preference graph.

    Attributes:
        n_items / n_edges: graph size.
        max_in_degree: the paper's ``D`` (bounds greedy iteration cost).
        mean_out_degree: average number of alternatives per item.
        isolated_items: items with neither incoming nor outgoing edges —
            they can only be covered by being retained.
        weight_gini: Gini coefficient of the node weights (demand skew;
            0 = uniform, near 1 = a few items dominate sales).
        top_10pct_weight_share: demand share of the best-selling decile.
        mean_out_weight_sum: average per-item total edge weight — the
            substitutability of demand (under the Normalized variant this
            is the mean probability that *some* alternative is
            acceptable).
        uncoverable_without_self: demand mass of items that have *no*
            alternatives, i.e. must be retained to be covered at all.
    """

    n_items: int
    n_edges: int
    max_in_degree: int
    mean_out_degree: float
    isolated_items: int
    weight_gini: float
    top_10pct_weight_share: float
    mean_out_weight_sum: float
    uncoverable_without_self: float

    def to_dict(self) -> Dict:
        """Plain-dict view (JSON-friendly)."""
        return {
            "n_items": self.n_items,
            "n_edges": self.n_edges,
            "max_in_degree": self.max_in_degree,
            "mean_out_degree": self.mean_out_degree,
            "isolated_items": self.isolated_items,
            "weight_gini": self.weight_gini,
            "top_10pct_weight_share": self.top_10pct_weight_share,
            "mean_out_weight_sum": self.mean_out_weight_sum,
            "uncoverable_without_self": self.uncoverable_without_self,
        }


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a nonnegative vector (0 when all equal)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.size
    if n == 0:
        return 0.0
    total = values.sum()
    if total <= 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.dot(ranks, values) / (n * total)) - (n + 1) / n)


def graph_stats(graph) -> GraphStats:
    """Compute :class:`GraphStats` for a preference graph."""
    csr = as_csr(graph)
    n = csr.n_items
    in_degrees = csr.in_degrees()
    out_degrees = csr.out_degrees()
    weights = csr.node_weight

    isolated = int(np.sum((in_degrees == 0) & (out_degrees == 0)))
    sorted_weights = np.sort(weights)[::-1]
    top_decile = max(1, n // 10)
    total_weight = float(weights.sum())
    top_share = (
        float(sorted_weights[:top_decile].sum()) / total_weight
        if total_weight > 0 else 0.0
    )
    out_sums = csr.out_weight_sums()
    no_alternatives = out_degrees == 0
    uncoverable = (
        float(weights[no_alternatives].sum()) / total_weight
        if total_weight > 0 else 0.0
    )
    return GraphStats(
        n_items=n,
        n_edges=csr.n_edges,
        max_in_degree=int(in_degrees.max()) if n else 0,
        mean_out_degree=float(out_degrees.mean()) if n else 0.0,
        isolated_items=isolated,
        weight_gini=gini_coefficient(weights),
        top_10pct_weight_share=top_share,
        mean_out_weight_sum=float(out_sums.mean()) if n else 0.0,
        uncoverable_without_self=uncoverable,
    )
