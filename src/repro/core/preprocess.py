"""Candidate pruning with a provable cover-loss bound.

At catalog scale most items are neither requested often nor useful as
alternatives.  An item ``v``'s *standalone ceiling* —

    ceiling(v) = W(v) + sum over in-edges (u, v) of W(u) * W(u, v)

— upper-bounds the marginal gain ``v`` can ever contribute (it equals
the singleton gain, and submodularity only shrinks gains as the set
grows).  Dropping ``v`` from *candidacy* (it can still be covered by
others!) therefore costs at most ``ceiling(v)`` of cover, and dropping a
whole set of candidates costs at most the sum of their ceilings.

:func:`prune_candidates` selects the largest set of candidates to drop
subject to a total loss budget ``epsilon``, returning the exclusion list
(pluggable straight into ``greedy_solve(..., exclude=...)``) and the
exact bound.  On Zipf-skewed catalogs this removes a large fraction of
candidates for a negligible epsilon, shrinking every greedy iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .._compat import keyword_only_shim
from ..errors import SolverError
from .csr import as_csr
from .gain import GreedyState
from .variants import Variant


@dataclass(frozen=True)
class PruningPlan:
    """Result of a pruning pass.

    Attributes:
        excluded_indices: candidate indices safe to exclude.
        loss_bound: guaranteed upper bound on the cover lost by
            excluding them (sum of their standalone ceilings).
        ceilings: the full per-item ceiling vector (diagnostics).
    """

    excluded_indices: np.ndarray
    loss_bound: float
    ceilings: np.ndarray

    @property
    def n_excluded(self) -> int:
        """Number of pruned candidates."""
        return int(self.excluded_indices.size)


def candidate_ceilings(graph, variant: "Variant | str") -> np.ndarray:
    """Per-item standalone ceilings (singleton marginal gains).

    Identical for both variants with respect to the empty set, but
    computed through the variant's gain rule for uniformity.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    state = GreedyState(csr, variant)
    return state.gains_all()


def prune_candidates(
    graph,
    variant: "Variant | str",
    *,
    epsilon: float = 1e-4,
    keep_at_least: int = 1,
) -> PruningPlan:
    """Choose candidates to exclude within a total loss budget.

    Greedily drops the smallest-ceiling items while the cumulative
    ceiling stays below ``epsilon``; always keeps at least
    ``keep_at_least`` candidates so a solve remains possible.
    """
    if epsilon < 0:
        raise SolverError(f"epsilon must be >= 0, got {epsilon}")
    csr = as_csr(graph)
    n = csr.n_items
    if keep_at_least < 0 or keep_at_least > n:
        raise SolverError(
            f"keep_at_least={keep_at_least} out of range [0, {n}]"
        )
    ceilings = candidate_ceilings(csr, variant)
    order = np.argsort(ceilings, kind="stable")
    cumulative = np.cumsum(ceilings[order])
    within_budget = int(np.searchsorted(cumulative, epsilon, side="right"))
    n_drop = min(within_budget, n - keep_at_least)
    excluded = np.sort(order[:n_drop])
    loss_bound = float(cumulative[n_drop - 1]) if n_drop else 0.0
    return PruningPlan(
        excluded_indices=excluded,
        loss_bound=loss_bound,
        ceilings=ceilings,
    )


@keyword_only_shim("k", "variant")
def pruned_greedy_solve(
    graph,
    *,
    k: int,
    variant: "Variant | str",
    epsilon: float = 1e-4,
    strategy: str = "auto",
    tracer=None,
):
    """Convenience: prune, then solve with the survivors as candidates.

    Returns ``(result, plan)``.  The formal guarantee is on the optimum:
    ``OPT_k(V \\ X) >= OPT_k(V) - plan.loss_bound`` (removing a candidate
    from any solution loses at most its ceiling, by submodularity), so
    the pruned greedy keeps its approximation factor relative to an
    optimum at most ``loss_bound`` below the unrestricted one.
    """
    from .greedy import greedy_solve

    csr = as_csr(graph)
    plan = prune_candidates(csr, variant, epsilon=epsilon)
    free_items = csr.n_items - plan.n_excluded
    if k > free_items:
        # The budget would forbid a feasible solve; keep enough items.
        plan = prune_candidates(
            csr, variant, epsilon=epsilon, keep_at_least=k
        )
    result = greedy_solve(
        csr, k=k, variant=variant, strategy=strategy,
        exclude=plan.excluded_indices if plan.n_excluded else None,
        tracer=tracer,
    )
    return result, plan
