"""The greedy Preference Cover solver (the paper's Algorithm 1).

Algorithm 1 selects, at each of ``k`` iterations, the node with the
maximum marginal gain to ``C(S)``.  Because both cover functions are
monotone submodular, the same scheme serves both variants — only the
``Gain``/``AddNode`` procedures differ (Algorithms 2/3 vs 4/5, implemented
in :mod:`repro.core.gain`) — and carries the guarantees proved in the
paper: ``1 - 1/e`` for the Independent variant (tight), and
``max(1 - 1/e, 1 - (1 - k/n)^2)`` for the Normalized variant.

Three execution strategies produce the same selection rule with different
costs:

``naive``
    Recomputes every candidate's gain each iteration — a vectorized
    transliteration of Algorithm 1, ``O(k * E)`` work.  This is the
    strategy whose per-candidate independence the paper exploits for
    parallelization (see :mod:`repro.core.parallel`).

``lazy``
    CELF lazy evaluation: submodularity makes stale gains upper bounds,
    so candidates are kept in a max-heap and only re-evaluated when they
    reach the top.  Typically evaluates a tiny fraction of ``n * k``
    gains.

``accelerated``
    Maintains the full gain array incrementally: adding ``v*`` only
    changes the gains of nodes within two hops, so each iteration costs
    ``O(out_deg(v*) + sum over in-neighbors' out-degrees)`` (Independent)
    or ``O(in_deg(v*) + out_deg(v*))`` (Normalized) plus one ``argmax``.

All strategies implement the identical mathematical rule (max gain,
lowest index on ties); their outputs can differ only through
floating-point summation order on near-exact ties.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Iterable, Optional

import numpy as np

from .._compat import keyword_only_shim
from ..errors import SolverError
from ..observability import NULL_TRACER, coerce_tracer
from .csr import CSRGraph, as_csr
from .gain import GreedyState
from .result import SolveResult
from .variants import Variant

#: Recognized strategy names; ``auto`` resolves to ``accelerated``.
STRATEGIES = ("auto", "naive", "lazy", "accelerated")

#: Optional per-iteration hook: ``callback(iteration, node, gain, cover)``.
IterationCallback = Callable[[int, int, float, float], None]


@keyword_only_shim("k", "variant")
def greedy_solve(
    graph,
    *,
    k: int,
    variant: "Variant | str",
    strategy: str = "auto",
    parallel: Optional["ParallelGainEvaluator"] = None,  # noqa: F821
    callback: Optional[IterationCallback] = None,
    must_retain: Optional[Iterable] = None,
    exclude: Optional[Iterable] = None,
    tracer=None,
    kernels=None,
) -> SolveResult:
    """Solve ``IPC_k`` / ``NPC_k`` with the greedy algorithm.

    Args:
        graph: a ``PreferenceGraph`` or ``CSRGraph``.
        k: number of items to retain (``0 <= k <= n``).
        variant: ``"independent"`` or ``"normalized"`` (or a ``Variant``).
        strategy: one of ``auto``, ``naive``, ``lazy``, ``accelerated``.
        parallel: a :class:`repro.core.parallel.ParallelGainEvaluator` to
            spread naive-strategy gain evaluation across worker processes
            (only consulted by the naive strategy).
        callback: optional per-iteration progress hook.
        must_retain: items that are retained unconditionally (contractual
            listings, store-brand products).  They occupy the first
            positions of the solution and count toward ``k``.
        exclude: items that may never be retained (recalled or delisted
            products).  They can still be *covered* by alternatives.
        tracer: a :class:`repro.observability.SolverTrace` recording one
            ``iteration`` event per selection with the chosen item, its
            marginal gain, the running cover and per-strategy counters.
            ``None`` (the default) disables tracing at ~zero cost.
        kernels: arithmetic backend for the hot loops — a
            :class:`repro.core.kernels.KernelBackend`, a backend name
            (``"numpy"`` / ``"numba"`` / ``"auto"``), or ``None`` to
            consult the ``REPRO_KERNELS`` environment variable.  All
            backends produce identical selections; see
            ``docs/performance.md``.

    All parameters after ``graph`` are keyword-only; the legacy
    positional order ``greedy_solve(graph, k, variant, ...)`` still
    works but emits a :class:`DeprecationWarning`.

    The constrained run remains a greedy maximization of the same
    monotone submodular function over the free items, so the classic
    guarantee applies to the marginal value added on top of the forced
    prefix.

    Returns:
        A :class:`SolveResult` with the retained items in selection order,
        the achieved cover, the coverage array ``I`` and per-prefix covers.
    """
    tracer = coerce_tracer(tracer)
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    n = csr.n_items
    if not isinstance(k, (int, np.integer)):
        raise SolverError(f"k must be an integer, got {type(k).__name__}")
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")
    if strategy not in STRATEGIES:
        raise SolverError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if strategy == "auto":
        strategy = "accelerated"

    from .cover import resolve_indices

    seed_indices = (
        resolve_indices(csr, must_retain) if must_retain is not None
        else np.empty(0, dtype=np.int64)
    )
    exclude_indices = (
        resolve_indices(csr, exclude) if exclude is not None
        else np.empty(0, dtype=np.int64)
    )
    forbidden: Optional[np.ndarray] = None
    if exclude_indices.size:
        forbidden = np.zeros(n, dtype=bool)
        forbidden[exclude_indices] = True
        if forbidden[seed_indices].any():
            raise SolverError("must_retain and exclude sets overlap")
    if seed_indices.size > k:
        raise SolverError(
            f"must_retain has {seed_indices.size} items but k={k}"
        )
    if k > n - exclude_indices.size:
        raise SolverError(
            f"k={k} exceeds the {n - exclude_indices.size} non-excluded "
            f"items"
        )

    state = GreedyState(csr, variant, tracer=tracer, kernels=kernels)
    prefix_covers = np.zeros(k + 1, dtype=np.float64)
    if tracer.enabled:
        tracer.event(
            "solve.start", solver="greedy", strategy=strategy,
            variant=variant.value, k=k, n_items=n,
            n_seeded=int(seed_indices.size),
            n_excluded=int(exclude_indices.size),
        )
    start = time.perf_counter()

    for node in seed_indices.tolist():
        state.add_node(node)
        prefix_covers[state.size] = state.cover
    remaining = k - state.size

    if strategy == "naive":
        evaluations = _run_naive(
            state, remaining, prefix_covers, parallel, callback,
            forbidden=forbidden, tracer=tracer,
        )
    elif strategy == "lazy":
        evaluations = _run_lazy(
            state, remaining, prefix_covers, callback, forbidden=forbidden,
            tracer=tracer,
        )
    else:
        evaluations = _run_accelerated(
            state, remaining, prefix_covers, callback, forbidden=forbidden,
            tracer=tracer,
        )

    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.incr("solver.gain_evaluations", evaluations)
        tracer.event(
            "solve.end", solver="greedy", strategy=strategy,
            cover=float(state.cover), wall_time_s=elapsed,
            gain_evaluations=evaluations,
        )
    indices = state.retained_indices()
    return SolveResult(
        variant=variant,
        k=k,
        retained=[csr.items[i] for i in indices.tolist()],
        retained_indices=indices,
        cover=float(state.cover),
        coverage=state.coverage,
        item_ids=csr.items,
        prefix_covers=prefix_covers,
        strategy=f"greedy-{strategy}",
        wall_time_s=elapsed,
        gain_evaluations=evaluations,
    )


@keyword_only_shim("variant")
def greedy_order(
    graph,
    *,
    variant: "Variant | str",
    strategy: str = "auto",
    tracer=None,
    kernels=None,
) -> SolveResult:
    """Run the greedy to exhaustion (``k = n``).

    The resulting ordering solves *every* ``k`` at once (prefix property,
    Section 3.2) and directly powers the complementary threshold solver.
    """
    csr = as_csr(graph)
    return greedy_solve(
        csr, k=csr.n_items, variant=variant, strategy=strategy,
        tracer=tracer, kernels=kernels,
    )


# ----------------------------------------------------------------------
# Strategy implementations
# ----------------------------------------------------------------------
def _run_naive(
    state: GreedyState,
    k: int,
    prefix_covers: np.ndarray,
    parallel,
    callback: Optional[IterationCallback],
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
) -> int:
    """Algorithm 1 verbatim: full gain recomputation each iteration."""
    n = state.csr.n_items
    evaluations = 0
    for iteration in range(k):
        if parallel is not None:
            gains = parallel.gains(state)
        else:
            gains = state.gains_all()
        evaluations += n - state.size
        gains[state.in_set] = -np.inf
        if forbidden is not None:
            gains[forbidden] = -np.inf
        best = int(np.argmax(gains))
        gain = float(gains[best])
        state.add_node(best)
        prefix_covers[state.size] = state.cover
        if callback is not None:
            callback(iteration, best, gain, state.cover)
        if tracer.enabled:
            tracer.incr("naive.gains_evaluated", n - state.size + 1)
            tracer.iteration(
                iteration, item=state.csr.items[best], node=best,
                gain=gain, cover=float(state.cover), strategy="naive",
                gains_evaluated=n - state.size + 1,
            )
    return evaluations


def _run_lazy(
    state: GreedyState,
    k: int,
    prefix_covers: np.ndarray,
    callback: Optional[IterationCallback],
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
) -> int:
    """CELF lazy greedy.

    Heap entries are ``(-gain, node)``; ``last_eval[node]`` records the
    retained-set size at which that gain was computed.  A popped entry
    whose gain is current is selected immediately; otherwise it is
    re-evaluated and pushed back — valid because submodularity guarantees
    gains never increase as the set grows.
    """
    n = state.csr.n_items
    initial = state.gains_all()
    evaluations = n
    heap = [
        (-float(initial[v]), v)
        for v in range(n)
        if not state.in_set[v]
        and (forbidden is None or not forbidden[v])
    ]
    heapq.heapify(heap)
    # Set size at evaluation time; seeds make size > 0 initially.
    last_eval = np.full(n, state.size, dtype=np.int64)
    # The pop/re-evaluate loop below is the CELF hot path: on large
    # instances it runs orders of magnitude more often than the outer
    # selection loop, so the per-iteration constants — the bound methods,
    # the heap primitives and the tracing flag — are hoisted to locals.
    heappop = heapq.heappop
    heappush = heapq.heappush
    fresh_gain = state.gain
    tracing = tracer is not NULL_TRACER and tracer.enabled

    for iteration in range(k):
        heap_pops = 0
        reevaluations = 0
        size = state.size
        while True:
            entry = heappop(heap)
            heap_pops += 1
            v = entry[1]
            if last_eval[v] == size:
                break
            fresh = fresh_gain(v)
            reevaluations += 1
            last_eval[v] = size
            heappush(heap, (-fresh, v))
        evaluations += reevaluations
        gain = -entry[0]
        state.add_node(v)
        prefix_covers[state.size] = state.cover
        if callback is not None:
            callback(iteration, v, gain, state.cover)
        if tracing:
            tracer.incr("lazy.heap_pops", heap_pops)
            tracer.incr("lazy.reevaluations", reevaluations)
            tracer.observe("lazy.reevaluations_per_iteration", reevaluations)
            tracer.iteration(
                iteration, item=state.csr.items[v], node=int(v),
                gain=gain, cover=float(state.cover), strategy="lazy",
                heap_pops=heap_pops, reevaluations=reevaluations,
            )
    return evaluations


def accelerated_step(
    state: GreedyState,
    gains: np.ndarray,
    force: Optional[int] = None,
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
) -> tuple:
    """One iteration of the accelerated greedy: select, commit, patch gains.

    ``force`` overrides the argmax selection with a specific node (used
    by the incremental solver when replaying a previous order); the gain
    bookkeeping is identical either way.

    Adding the selected node ``v*`` perturbs candidate gains in exactly
    three ways, each patched in place on ``gains``:

    1. ``v*`` itself leaves the candidate pool;
    2. each out-neighbor ``x`` of ``v*`` loses the term ``v*`` contributed
       to ``gain(x)`` while it was outside ``S``;
    3. (Independent only) each in-neighbor ``u`` of ``v*`` has its deficit
       shrunk, which rescales ``u``'s contribution to every out-neighbor's
       gain and to its own self term.  Under the Normalized variant the
       contribution ``W(u) * W(u, x)`` does not depend on the deficit, so
       only ``u``'s self term changes.

    Returns ``(best, gain)``.  Shared by :func:`greedy_solve` and the
    complementary threshold solver.
    """
    csr = state.csr
    variant = state.variant
    if force is None:
        # Retired candidates (retained or forbidden) are kept at -inf in
        # the gains array itself, so selection is a plain argmax.
        best = int(np.argmax(gains))
        gain = float(gains[best])
    else:
        best = int(force)
        gain = float(gains[best])
        if gain == -np.inf:
            gain = 0.0  # forced re-commit of an already-retired entry

    # Snapshot the quantities the update rules need *before* mutating.
    deficit_before = float(state.deficit[best])
    in_src, in_w = csr.in_edges(best)
    outside_mask = ~state.in_set[in_src]
    u_nodes = in_src[outside_mask]
    u_weights = in_w[outside_mask]
    if variant is Variant.INDEPENDENT:
        u_deficit_before = state.deficit[u_nodes].copy()

    state.add_node(best)

    # (2) best stopped being an outside contributor to its out-neighbors'
    # gains.
    out_dst, out_w = csr.out_edges(best)
    if out_dst.size:
        if variant is Variant.INDEPENDENT:
            gains[out_dst] -= out_w * deficit_before
        else:
            gains[out_dst] -= out_w * csr.node_weight[best]

    # (3) in-neighbors' deficits shrank.
    fanout = 0
    if u_nodes.size:
        if variant is Variant.INDEPENDENT:
            delta = u_weights * u_deficit_before  # deficit reduction
            np.add.at(gains, u_nodes, -delta)  # self terms
            # Contributions to every out-neighbor x of each u: the
            # two-hop scatter is the widest part of the patch, so it is
            # delegated to the kernel backend.
            fanout = int(
                state.kernels.fanout_update(
                    gains, u_nodes, delta,
                    csr.out_ptr, csr.out_dst, csr.out_weight,
                )
            )
        else:
            delta = u_weights * csr.node_weight[u_nodes]
            np.add.at(gains, u_nodes, -delta)

    gains[best] = -np.inf
    if tracer.enabled:
        # Width of the incremental patch: the retired entry itself, the
        # out-neighbor updates, the in-neighbor self terms and (under
        # Independent) the two-hop fanout targets.
        width = 1 + int(out_dst.size) + int(u_nodes.size) + fanout
        tracer.incr("accelerated.gain_updates", width)
        tracer.observe("accelerated.update_width", width)
        tracer.stash(updated_gains=width)
    return best, gain


def _run_accelerated(
    state: GreedyState,
    k: int,
    prefix_covers: np.ndarray,
    callback: Optional[IterationCallback],
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
) -> int:
    """Incrementally-maintained gain array (see :func:`accelerated_step`)."""
    gains = prepare_accelerated_gains(state, forbidden)
    evaluations = state.csr.n_items
    for iteration in range(k):
        best, gain = accelerated_step(state, gains, tracer=tracer)
        prefix_covers[state.size] = state.cover
        if callback is not None:
            callback(iteration, best, gain, state.cover)
        if tracer.enabled:
            tracer.iteration(
                iteration, item=state.csr.items[best], node=best,
                gain=gain, cover=float(state.cover), strategy="accelerated",
            )
    return evaluations


def prepare_accelerated_gains(
    state: GreedyState, forbidden: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gain array for :func:`accelerated_step`: retired entries at -inf."""
    gains = state.gains_all()
    if state.size:
        gains[state.in_set] = -np.inf
    if forbidden is not None:
        gains[forbidden] = -np.inf
    return gains
