"""The greedy Preference Cover solver (the paper's Algorithm 1).

Algorithm 1 selects, at each of ``k`` iterations, the node with the
maximum marginal gain to ``C(S)``.  Because both cover functions are
monotone submodular, the same scheme serves both variants — only the
``Gain``/``AddNode`` procedures differ (Algorithms 2/3 vs 4/5, implemented
in :mod:`repro.core.gain`) — and carries the guarantees proved in the
paper: ``1 - 1/e`` for the Independent variant (tight), and
``max(1 - 1/e, 1 - (1 - k/n)^2)`` for the Normalized variant.

Three execution strategies produce the same selection rule with different
costs:

``naive``
    Recomputes every candidate's gain each iteration — a vectorized
    transliteration of Algorithm 1, ``O(k * E)`` work.  This is the
    strategy whose per-candidate independence the paper exploits for
    parallelization (see :mod:`repro.core.parallel`).

``lazy``
    CELF lazy evaluation: submodularity makes stale gains upper bounds,
    so candidates are kept in a max-heap and only re-evaluated when they
    reach the top.  Typically evaluates a tiny fraction of ``n * k``
    gains.

``accelerated``
    Maintains the full gain array incrementally: adding ``v*`` only
    changes the gains of nodes within two hops, so each iteration costs
    ``O(out_deg(v*) + sum over in-neighbors' out-degrees)`` (Independent)
    or ``O(in_deg(v*) + out_deg(v*))`` (Normalized) plus one ``argmax``.

All strategies implement the identical mathematical rule (max gain,
lowest index on ties); their outputs can differ only through
floating-point summation order on near-exact ties.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Iterable, Optional

import numpy as np

from .._compat import keyword_only_shim
from ..errors import SolverError, SolverInterrupted
from ..observability import NULL_TRACER, coerce_tracer
from .csr import CSRGraph, as_csr
from .gain import GreedyState
from .result import SolveResult
from .variants import Variant

#: Recognized strategy names; ``auto`` resolves to ``accelerated``.
STRATEGIES = ("auto", "naive", "lazy", "accelerated")

#: Optional per-iteration hook: ``callback(iteration, node, gain, cover)``.
IterationCallback = Callable[[int, int, float, float], None]


class _RoundHooks:
    """Per-round resilience hooks shared by every greedy strategy.

    Bundles the checkpointer, run guard and active fault injector so
    the strategy loops carry one optional object instead of three
    parameters.  :meth:`after_round` runs right after a selection is
    committed: snapshot if due, fire any injected crash, then consult
    the guard — a non-``None`` return is the interruption reason and
    the loop must stop.
    """

    __slots__ = ("checkpointer", "context", "guard", "faults", "tracer")

    def __init__(self, checkpointer, context, guard, faults, tracer):
        self.checkpointer = checkpointer
        self.context = context
        self.guard = guard
        self.faults = faults
        self.tracer = tracer

    def after_round(self, state) -> Optional[str]:
        if self.checkpointer is not None:
            self.checkpointer.maybe_save(
                state, self.context, tracer=self.tracer
            )
        if self.faults is not None:
            self.faults.solver_round(state.size)
            reason = self.faults.solver_stop(state.size)
            if reason is not None:
                if self.tracer.enabled:
                    tracer = self.tracer
                    tracer.incr("faults.stop_round_hits")
                    tracer.event("solve.stop_injected", reason=reason)
                return reason
        if self.guard is not None:
            reason = self.guard.trip_reason()
            if reason is not None:
                if self.tracer.enabled:
                    kind = "rss" if "RSS" in reason else "deadline"
                    self.tracer.incr(f"guard.{kind}_hits")
                    self.tracer.event("solve.guard_trip", reason=reason)
                return reason
        return None


def finish_interrupted(stop_reason, guard, result: SolveResult) -> SolveResult:
    """Return (or raise for) an interrupted solve's partial result.

    A stop reason can come from sources other than the run guard — a
    :class:`~repro.resilience.FaultInjector` ``stop_round`` fault, or
    any future hook — so the guard must not be dereferenced just
    because the solve was interrupted: only an actual guard configured
    with ``on_trigger="raise"`` escalates; every other source keeps the
    partial result.  Shared by :func:`greedy_solve` and
    :func:`~repro.core.threshold.greedy_threshold_solve`.
    """
    if (
        stop_reason is not None
        and guard is not None
        and guard.on_trigger == "raise"
    ):
        raise SolverInterrupted(stop_reason, partial=result)
    return result


def _make_hooks(
    checkpoint, guard, csr, variant, seed_indices, exclude_indices, tracer
):
    """Build the per-round hook bundle (or ``None`` when all are off).

    Also resolves the checkpoint context and the ambient fault
    injector; returns ``(hooks, checkpointer, context)`` so the caller
    can drive resume and final-state saves.
    """
    from ..resilience.checkpoint import coerce_checkpointer, solve_context
    from ..resilience.faults import active_faults

    checkpointer = coerce_checkpointer(checkpoint)
    faults = active_faults()
    context = None
    if checkpointer is not None:
        context = solve_context(
            csr, variant, seed_indices, exclude_indices
        )
        checkpointer.begin()
    if checkpointer is None and guard is None and faults is None:
        return None, None, None
    return (
        _RoundHooks(checkpointer, context, guard, faults, tracer),
        checkpointer,
        context,
    )


@keyword_only_shim("k", "variant")
def greedy_solve(
    graph,
    *,
    k: int,
    variant: "Variant | str",
    strategy: str = "auto",
    parallel: Optional["ParallelGainEvaluator"] = None,  # noqa: F821
    callback: Optional[IterationCallback] = None,
    must_retain: Optional[Iterable] = None,
    exclude: Optional[Iterable] = None,
    tracer=None,
    kernels=None,
    checkpoint=None,
    guard=None,
) -> SolveResult:
    """Solve ``IPC_k`` / ``NPC_k`` with the greedy algorithm.

    Args:
        graph: a ``PreferenceGraph`` or ``CSRGraph``.
        k: number of items to retain (``0 <= k <= n``).
        variant: ``"independent"`` or ``"normalized"`` (or a ``Variant``).
        strategy: one of ``auto``, ``naive``, ``lazy``, ``accelerated``.
        parallel: a :class:`repro.core.parallel.ParallelGainEvaluator` to
            spread naive-strategy gain evaluation across worker processes
            (only consulted by the naive strategy).
        callback: optional per-iteration progress hook.
        must_retain: items that are retained unconditionally (contractual
            listings, store-brand products).  They occupy the first
            positions of the solution and count toward ``k``.
        exclude: items that may never be retained (recalled or delisted
            products).  They can still be *covered* by alternatives.
        tracer: a :class:`repro.observability.SolverTrace` recording one
            ``iteration`` event per selection with the chosen item, its
            marginal gain, the running cover and per-strategy counters.
            ``None`` (the default) disables tracing at ~zero cost.
        kernels: arithmetic backend for the hot loops — a
            :class:`repro.core.kernels.KernelBackend`, a backend name
            (``"numpy"`` / ``"numba"`` / ``"auto"``), or ``None`` to
            consult the ``REPRO_KERNELS`` environment variable.  All
            backends produce identical selections; see
            ``docs/performance.md``.
        checkpoint: a :class:`repro.resilience.Checkpointer` (or a
            checkpoint directory path) enabling periodic atomic
            snapshots of the greedy prefix.  When the checkpointer has
            ``resume=True`` (the default) the solve first replays the
            longest valid snapshot for this exact instance and
            continues from there — the prefix property guarantees the
            resumed run selects exactly what the uninterrupted run
            would have.
        guard: a :class:`repro.resilience.RunGuard` consulted after
            every committed round; on a tripped deadline or RSS
            ceiling the solve either raises
            :class:`~repro.errors.SolverInterrupted` (with the partial
            result attached) or returns the partial result flagged
            ``interrupted=True``, per the guard's ``on_trigger``.

    All parameters after ``graph`` are keyword-only; the legacy
    positional order ``greedy_solve(graph, k, variant, ...)`` still
    works but emits a :class:`DeprecationWarning`.

    The constrained run remains a greedy maximization of the same
    monotone submodular function over the free items, so the classic
    guarantee applies to the marginal value added on top of the forced
    prefix.

    Returns:
        A :class:`SolveResult` with the retained items in selection order,
        the achieved cover, the coverage array ``I`` and per-prefix covers.
    """
    tracer = coerce_tracer(tracer)
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    n = csr.n_items
    if not isinstance(k, (int, np.integer)):
        raise SolverError(f"k must be an integer, got {type(k).__name__}")
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")
    if strategy not in STRATEGIES:
        raise SolverError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if strategy == "auto":
        strategy = "accelerated"

    from .cover import resolve_indices

    seed_indices = (
        resolve_indices(csr, must_retain) if must_retain is not None
        else np.empty(0, dtype=np.int64)
    )
    exclude_indices = (
        resolve_indices(csr, exclude) if exclude is not None
        else np.empty(0, dtype=np.int64)
    )
    forbidden: Optional[np.ndarray] = None
    if exclude_indices.size:
        forbidden = np.zeros(n, dtype=bool)
        forbidden[exclude_indices] = True
        if forbidden[seed_indices].any():
            raise SolverError("must_retain and exclude sets overlap")
    if seed_indices.size > k:
        raise SolverError(
            f"must_retain has {seed_indices.size} items but k={k}"
        )
    if k > n - exclude_indices.size:
        raise SolverError(
            f"k={k} exceeds the {n - exclude_indices.size} non-excluded "
            f"items"
        )

    state = GreedyState(csr, variant, tracer=tracer, kernels=kernels)
    prefix_covers = np.zeros(k + 1, dtype=np.float64)
    if tracer.enabled:
        tracer.event(
            "solve.start", solver="greedy", strategy=strategy,
            variant=variant.value, k=k, n_items=n,
            n_seeded=int(seed_indices.size),
            n_excluded=int(exclude_indices.size),
        )
    hooks, checkpointer, context = _make_hooks(
        checkpoint, guard, csr, variant, seed_indices, exclude_indices,
        tracer,
    )
    if guard is not None:
        guard.start()
    start = time.perf_counter()

    for node in seed_indices.tolist():
        state.add_node(node)
        prefix_covers[state.size] = state.cover

    if checkpointer is not None and checkpointer.resume:
        snapshot = checkpointer.load(context, n_items=n, tracer=tracer)
        if snapshot is not None:
            # Replay the saved prefix: the checkpointed order begins
            # with the seed set (skipped via in_set) and is capped at
            # k, since a snapshot from a larger-k or threshold run of
            # the same instance is still a valid greedy prefix.
            replayed = 0
            for node in snapshot.order:
                if state.size >= k:
                    break
                if state.in_set[node]:
                    continue
                state.add_node(node)
                prefix_covers[state.size] = state.cover
                replayed += 1
            if tracer.enabled:
                tracer.incr("resilience.resumes")
                tracer.incr("resilience.resumed_rounds", replayed)
                tracer.event(
                    "solve.resume", epoch=snapshot.epoch,
                    replayed=replayed, cover=float(state.cover),
                )
    remaining = k - state.size

    if strategy == "naive":
        evaluations, stop_reason = _run_naive(
            state, remaining, prefix_covers, parallel, callback,
            forbidden=forbidden, tracer=tracer, hooks=hooks,
        )
    elif strategy == "lazy":
        evaluations, stop_reason = _run_lazy(
            state, remaining, prefix_covers, callback, forbidden=forbidden,
            tracer=tracer, hooks=hooks,
        )
    else:
        evaluations, stop_reason = _run_accelerated(
            state, remaining, prefix_covers, callback, forbidden=forbidden,
            tracer=tracer, hooks=hooks,
        )

    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.incr("solver.gain_evaluations", evaluations)
        tracer.event(
            "solve.end", solver="greedy", strategy=strategy,
            cover=float(state.cover), wall_time_s=elapsed,
            gain_evaluations=evaluations,
            interrupted=stop_reason is not None,
        )
    if checkpointer is not None and state.size > 0:
        # Best-effort final snapshot: an interrupted solve resumes from
        # exactly the interrupted state (not the last periodic one), and
        # a completed solve leaves its full prefix for later re-runs or
        # other stopping rules over the same instance.
        checkpointer.save(state, context, tracer=tracer)
    indices = state.retained_indices()
    result = SolveResult(
        variant=variant,
        k=k,
        retained=[csr.items[i] for i in indices.tolist()],
        retained_indices=indices,
        cover=float(state.cover),
        coverage=state.coverage,
        item_ids=csr.items,
        prefix_covers=(
            prefix_covers if stop_reason is None
            else prefix_covers[: state.size + 1].copy()
        ),
        strategy=f"greedy-{strategy}",
        wall_time_s=elapsed,
        gain_evaluations=evaluations,
        interrupted=stop_reason is not None,
        interrupted_reason=stop_reason,
    )
    return finish_interrupted(stop_reason, guard, result)


@keyword_only_shim("variant")
def greedy_order(
    graph,
    *,
    variant: "Variant | str",
    strategy: str = "auto",
    tracer=None,
    kernels=None,
) -> SolveResult:
    """Run the greedy to exhaustion (``k = n``).

    The resulting ordering solves *every* ``k`` at once (prefix property,
    Section 3.2) and directly powers the complementary threshold solver.
    """
    csr = as_csr(graph)
    return greedy_solve(
        csr, k=csr.n_items, variant=variant, strategy=strategy,
        tracer=tracer, kernels=kernels,
    )


# ----------------------------------------------------------------------
# Strategy implementations
# ----------------------------------------------------------------------
def _run_naive(
    state: GreedyState,
    k: int,
    prefix_covers: np.ndarray,
    parallel,
    callback: Optional[IterationCallback],
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
    hooks: Optional[_RoundHooks] = None,
) -> tuple:
    """Algorithm 1 verbatim: full gain recomputation each iteration.

    Returns ``(evaluations, stop_reason)``; ``stop_reason`` is the run
    guard's interruption reason, or ``None`` for a completed run.
    """
    n = state.csr.n_items
    evaluations = 0
    for iteration in range(k):
        if parallel is not None:
            gains = parallel.gains(state)
        else:
            gains = state.gains_all()
        evaluations += n - state.size
        gains[state.in_set] = -np.inf
        if forbidden is not None:
            gains[forbidden] = -np.inf
        best = int(np.argmax(gains))
        gain = float(gains[best])
        state.add_node(best)
        prefix_covers[state.size] = state.cover
        if callback is not None:
            callback(iteration, best, gain, state.cover)
        if tracer.enabled:
            tracer.incr("naive.gains_evaluated", n - state.size + 1)
            tracer.iteration(
                iteration, item=state.csr.items[best], node=best,
                gain=gain, cover=float(state.cover), strategy="naive",
                gains_evaluated=n - state.size + 1,
            )
        if hooks is not None:
            reason = hooks.after_round(state)
            if reason is not None:
                return evaluations, reason
    return evaluations, None


def _run_lazy(
    state: GreedyState,
    k: int,
    prefix_covers: np.ndarray,
    callback: Optional[IterationCallback],
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
    hooks: Optional[_RoundHooks] = None,
) -> tuple:
    """CELF lazy greedy.

    Heap entries are ``(-gain, node)``; ``last_eval[node]`` records the
    retained-set size at which that gain was computed.  A popped entry
    whose gain is current is selected immediately; otherwise it is
    re-evaluated and pushed back — valid because submodularity guarantees
    gains never increase as the set grows.
    """
    n = state.csr.n_items
    initial = state.gains_all()
    evaluations = n
    heap = [
        (-float(initial[v]), v)
        for v in range(n)
        if not state.in_set[v]
        and (forbidden is None or not forbidden[v])
    ]
    heapq.heapify(heap)
    # Set size at evaluation time; seeds make size > 0 initially.
    last_eval = np.full(n, state.size, dtype=np.int64)
    # The pop/re-evaluate loop below is the CELF hot path: on large
    # instances it runs orders of magnitude more often than the outer
    # selection loop, so the per-iteration constants — the bound methods,
    # the heap primitives and the tracing flag — are hoisted to locals.
    heappop = heapq.heappop
    heappush = heapq.heappush
    fresh_gain = state.gain
    tracing = tracer is not NULL_TRACER and tracer.enabled

    for iteration in range(k):
        heap_pops = 0
        reevaluations = 0
        size = state.size
        while True:
            entry = heappop(heap)
            heap_pops += 1
            v = entry[1]
            if last_eval[v] == size:
                break
            fresh = fresh_gain(v)
            reevaluations += 1
            last_eval[v] = size
            heappush(heap, (-fresh, v))
        evaluations += reevaluations
        gain = -entry[0]
        state.add_node(v)
        prefix_covers[state.size] = state.cover
        if callback is not None:
            callback(iteration, v, gain, state.cover)
        if tracing:
            tracer.incr("lazy.heap_pops", heap_pops)
            tracer.incr("lazy.reevaluations", reevaluations)
            tracer.observe("lazy.reevaluations_per_iteration", reevaluations)
            tracer.iteration(
                iteration, item=state.csr.items[v], node=int(v),
                gain=gain, cover=float(state.cover), strategy="lazy",
                heap_pops=heap_pops, reevaluations=reevaluations,
            )
        if hooks is not None:
            reason = hooks.after_round(state)
            if reason is not None:
                return evaluations, reason
    return evaluations, None


def accelerated_step(
    state: GreedyState,
    gains: np.ndarray,
    force: Optional[int] = None,
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
) -> tuple:
    """One iteration of the accelerated greedy: select, commit, patch gains.

    ``force`` overrides the argmax selection with a specific node (used
    by the incremental solver when replaying a previous order); the gain
    bookkeeping is identical either way.

    Adding the selected node ``v*`` perturbs candidate gains in exactly
    three ways, each patched in place on ``gains``:

    1. ``v*`` itself leaves the candidate pool;
    2. each out-neighbor ``x`` of ``v*`` loses the term ``v*`` contributed
       to ``gain(x)`` while it was outside ``S``;
    3. (Independent only) each in-neighbor ``u`` of ``v*`` has its deficit
       shrunk, which rescales ``u``'s contribution to every out-neighbor's
       gain and to its own self term.  Under the Normalized variant the
       contribution ``W(u) * W(u, x)`` does not depend on the deficit, so
       only ``u``'s self term changes.

    Returns ``(best, gain)``.  Shared by :func:`greedy_solve` and the
    complementary threshold solver.
    """
    csr = state.csr
    variant = state.variant
    if force is None:
        # Retired candidates (retained or forbidden) are kept at -inf in
        # the gains array itself, so selection is a plain argmax.
        best = int(np.argmax(gains))
        gain = float(gains[best])
    else:
        best = int(force)
        gain = float(gains[best])
        if gain == -np.inf:
            gain = 0.0  # forced re-commit of an already-retired entry

    # Snapshot the quantities the update rules need *before* mutating.
    deficit_before = float(state.deficit[best])
    in_src, in_w = csr.in_edges(best)
    outside_mask = ~state.in_set[in_src]
    u_nodes = in_src[outside_mask]
    u_weights = in_w[outside_mask]
    if variant is Variant.INDEPENDENT:
        u_deficit_before = state.deficit[u_nodes].copy()

    state.add_node(best)

    # (2) best stopped being an outside contributor to its out-neighbors'
    # gains.
    out_dst, out_w = csr.out_edges(best)
    if out_dst.size:
        if variant is Variant.INDEPENDENT:
            gains[out_dst] -= out_w * deficit_before
        else:
            gains[out_dst] -= out_w * csr.node_weight[best]

    # (3) in-neighbors' deficits shrank.
    fanout = 0
    if u_nodes.size:
        if variant is Variant.INDEPENDENT:
            delta = u_weights * u_deficit_before  # deficit reduction
            np.add.at(gains, u_nodes, -delta)  # self terms
            # Contributions to every out-neighbor x of each u: the
            # two-hop scatter is the widest part of the patch, so it is
            # delegated to the kernel backend.
            fanout = int(
                state.kernels.fanout_update(
                    gains, u_nodes, delta,
                    csr.out_ptr, csr.out_dst, csr.out_weight,
                )
            )
        else:
            delta = u_weights * csr.node_weight[u_nodes]
            np.add.at(gains, u_nodes, -delta)

    gains[best] = -np.inf
    if tracer.enabled:
        # Width of the incremental patch: the retired entry itself, the
        # out-neighbor updates, the in-neighbor self terms and (under
        # Independent) the two-hop fanout targets.
        width = 1 + int(out_dst.size) + int(u_nodes.size) + fanout
        tracer.incr("accelerated.gain_updates", width)
        tracer.observe("accelerated.update_width", width)
        tracer.stash(updated_gains=width)
    return best, gain


def _run_accelerated(
    state: GreedyState,
    k: int,
    prefix_covers: np.ndarray,
    callback: Optional[IterationCallback],
    forbidden: Optional[np.ndarray] = None,
    tracer=NULL_TRACER,
    hooks: Optional[_RoundHooks] = None,
) -> tuple:
    """Incrementally-maintained gain array (see :func:`accelerated_step`)."""
    gains = prepare_accelerated_gains(state, forbidden)
    evaluations = state.csr.n_items
    for iteration in range(k):
        best, gain = accelerated_step(state, gains, tracer=tracer)
        prefix_covers[state.size] = state.cover
        if callback is not None:
            callback(iteration, best, gain, state.cover)
        if tracer.enabled:
            tracer.iteration(
                iteration, item=state.csr.items[best], node=best,
                gain=gain, cover=float(state.cover), strategy="accelerated",
            )
        if hooks is not None:
            reason = hooks.after_round(state)
            if reason is not None:
                return evaluations, reason
    return evaluations, None


def prepare_accelerated_gains(
    state: GreedyState, forbidden: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gain array for :func:`accelerated_step`: retired entries at -inf."""
    gains = state.gains_all()
    if state.size:
        gains[state.in_set] = -np.inf
    if forbidden is not None:
        gains[forbidden] = -np.inf
    return gains
