"""Exact evaluation of the cover function ``C(S)`` (Definitions 2.1, 2.2).

Given a retained set ``S``, the cover is the probability that a request
drawn from the node-weight distribution is matched:

* retained items are matched with probability one;
* a non-retained ``v`` is matched with the variant-specific probability
  computed from the edges into its retained neighbors
  (:meth:`repro.core.variants.Variant.match_probability`).

These functions recompute ``C(S)`` from scratch; the solvers maintain it
incrementally, and the test-suite cross-checks the two at every step.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import UnknownItemError
from .csr import CSRGraph, as_csr
from .variants import Variant

GraphLike = Union[CSRGraph, "PreferenceGraph"]  # noqa: F821 - doc alias


def resolve_indices(csr: CSRGraph, retained: Iterable) -> np.ndarray:
    """Map an iterable of item ids (or dense indices) to an index array.

    Resolution is **id-first**: every element is looked up through the
    graph's item table, and only an integer that is *not* an item id is
    interpreted as a dense index (when in ``[0, n_items)``; anything
    else raises :class:`~repro.errors.UnknownItemError`).  Id-first
    ordering matters for graphs whose item ids are non-identity
    integers — e.g. shuffled product ids — where an id and an index
    with the same value name *different* nodes; ids always win.  On the
    common default table (``items == range(n)``) the two semantics
    coincide, so dense indices keep working everywhere.  Duplicates are
    removed while preserving first-occurrence order (the greedy order).
    """
    seen = set()
    out = []
    for item in retained:
        try:
            idx = csr.index_of(item)
        except (UnknownItemError, TypeError):
            # Not an item id: fall back to dense-index semantics for
            # plain integers (TypeError covers unhashable inputs, which
            # can never be ids).
            if isinstance(item, (int, np.integer)) \
                    and 0 <= int(item) < csr.n_items:
                idx = int(item)
            else:
                raise UnknownItemError(item) from None
        if idx not in seen:
            seen.add(idx)
            out.append(idx)
    return np.asarray(out, dtype=np.int64)


def coverage_vector(
    graph: GraphLike,
    retained: Iterable,
    variant: "Variant | str",
) -> np.ndarray:
    """The paper's array ``I``: per-item probability of request-and-match.

    ``I[v] = W(v) * P(request for v is matched by S)``; the sum of the
    entries equals ``C(S)``.  Retained items have ``I[v] = W(v)``.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    indices = resolve_indices(csr, retained)
    in_set = np.zeros(csr.n_items, dtype=bool)
    in_set[indices] = True

    cover_prob = np.zeros(csr.n_items, dtype=np.float64)
    cover_prob[in_set] = 1.0
    not_retained = np.flatnonzero(~in_set)
    for v in not_retained:
        targets, weights = csr.out_edges(v)
        mask = in_set[targets]
        if not mask.any():
            continue
        retained_weights = weights[mask]
        if variant is Variant.INDEPENDENT:
            cover_prob[v] = 1.0 - np.prod(1.0 - retained_weights)
        else:
            cover_prob[v] = min(1.0, float(retained_weights.sum()))
    return csr.node_weight * cover_prob


def cover(
    graph: GraphLike,
    retained: Iterable,
    variant: "Variant | str",
) -> float:
    """Compute ``C(S)`` exactly for a retained set ``S``."""
    return float(coverage_vector(graph, retained, variant).sum())


def item_coverage(
    graph: GraphLike,
    retained: Iterable,
    variant: "Variant | str",
) -> np.ndarray:
    """Per-item *conditional* coverage: ``I[v] / W(v)``.

    This is the per-item percentage the system of Figure 2 reports
    (retained items show 100%).  Items with zero request probability are
    reported as fully covered when retained and zero otherwise, to avoid
    0/0.
    """
    csr = as_csr(graph)
    vector = coverage_vector(csr, retained, variant)
    weights = csr.node_weight
    out = np.zeros(csr.n_items, dtype=np.float64)
    positive = weights > 0
    out[positive] = vector[positive] / weights[positive]
    zero_weight = ~positive
    if zero_weight.any():
        indices = resolve_indices(csr, retained)
        retained_mask = np.zeros(csr.n_items, dtype=bool)
        retained_mask[indices] = True
        out[zero_weight & retained_mask] = 1.0
    return out
