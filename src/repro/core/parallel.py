"""Parallel gain evaluation and the work-span parallel cost model.

The paper (Performance Analysis, Sections 3.2 and 4.2) observes that the
greedy algorithm's per-iteration gain computations are independent across
candidates, giving a parallel complexity of ``O(k + n*k*D / N)`` for ``N``
workers.  This module provides both halves of that story:

* :class:`ParallelGainEvaluator` — a supervised process-pool executor
  with two wire protocols:

  ``shm`` (default where available)
      Workers are forked once and communicate through
      ``multiprocessing.shared_memory`` buffers: the parent publishes the
      solver state (``in_set``, ``deficit``) into shared arrays with two
      ``memcpy``-speed copies, each worker computes its candidate block's
      gains straight into a shared output array, and the pipes carry only
      a few control bytes per round.  Per-iteration communication is
      O(1) pickled payload instead of O(n) pickled floats per worker.

  ``pipe`` (fallback)
      Each worker holds its own :class:`~repro.core.gain.GreedyState`
      replica kept in sync by replaying ``AddNode`` deltas, and sends
      its gain block back through the pipe, paying O(block)
      serialization per round.

  Both protocols are **epoch-stamped**: every solver state carries a
  monotonically increasing epoch (bumped by ``AddNode``) plus a CRC-32
  digest of the exact selection order, every control message carries
  the epoch/digest it was computed for, and pipe workers *reject* a
  round whose base does not match their replica, bouncing a ``resync``
  that makes the parent replay the full order.  A stale replica — the
  classic reused-pool bug where a fresh solve meets workers still
  holding the previous solve's selections — is therefore detected
  structurally on both sides of the pipe instead of relying on parent
  bookkeeping alone.

  The pool is **supervised**: ``recv`` waits are bounded by
  ``timeout_s``, a crashed or hung worker is killed and respawned up to
  ``max_restarts`` times (then the round raises
  :class:`~repro.errors.SolverError` carrying the worker's reason or
  traceback), and teardown joins/kills every child and unlinks every
  shared segment even when a round aborts mid-flight.

  Plug it into ``greedy_solve(..., strategy="naive", parallel=...)`` or
  ``greedy_threshold_solve(..., parallel=...)``.  Both protocols produce
  byte-identical selections to the serial path — continuously proven by
  :mod:`repro.evaluation.differential`.  When ``fork`` is unavailable
  the evaluator degrades to serial evaluation.

* :func:`simulate_parallel_runtime` / :func:`speedup_curve` — a
  deterministic work-span cost model that counts the exact per-iteration
  edge-work our implementation performs and applies the paper's parallel
  bound with a measured per-operation cost and a per-iteration
  synchronization overhead.  This reproduces the *shape* of the paper's
  Figure 4e (near-perfect scaling, ~20x on 32 cores) on hosts — like this
  reproduction's single-core container — that cannot run 32 hardware
  threads.  See DESIGN.md, substitution 3.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SolverError
from ..observability import coerce_tracer, logs
from .csr import CSRGraph, as_csr
from .gain import GreedyState, order_digest
from .kernels import KernelBackend, get_kernels
from .variants import Variant

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - py>=3.8 always has it
    _shared_memory = None

#: Recognized wire protocols; ``auto`` prefers shared memory.
PARALLEL_BACKENDS = ("auto", "shm", "pipe", "serial")

# Module-level slots used to hand state to forked workers without
# pickling it through the pipe (fork shares the parent's address space
# copy-on-write; the CSR arrays are read-only, the shared views are
# backed by the shared-memory segments).
_WORKER_GRAPH: Optional[CSRGraph] = None
_WORKER_VARIANT: Optional[Variant] = None
_WORKER_KERNELS: Optional[KernelBackend] = None
_WORKER_SHARED: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

_LOG = logs.get_logger("parallel")
_WORKER_LOG = logs.get_logger("parallel.worker")


class _WorkerFault(Exception):
    """Internal: worker ``index`` crashed or timed out (supervision path).

    Distinct from an *application* error (the worker is alive and
    reported a failure with a traceback), which is never retried.
    """

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"worker {index} {reason}")
        self.index = index
        self.reason = reason


def _pipe_worker_loop(conn, lo: int, hi: int) -> None:
    """Pipe-protocol worker: keep an epoch-stamped replica, answer rounds.

    Control messages (tuples, first element is the tag):

    * ``("gains", seq, base_epoch, base_digest, delta[, trace])`` —
      verify the replica sits exactly at ``(base_epoch, base_digest)``;
      on match replay ``delta`` and answer ``("ok", seq, epoch,
      block)``, on mismatch answer ``("resync", seq, epoch)`` *without*
      mutating the replica.  ``trace`` is the parent's trace id; when
      structured logging is on (the sink is inherited across the fork)
      the worker stamps it on its round records so one grep follows a
      query into the pool and back.
    * ``("sync", seq, order[, trace])`` — rebuild the replica from
      scratch by replaying ``order``; answer ``("synced", seq, epoch)``.
    * ``("ping", seq)`` — liveness probe; answer ``("pong", seq)``.
    * ``("stop",)`` — exit.

    Application failures answer ``("error", seq, traceback)`` and keep
    the worker alive; the parent raises without retrying.
    """
    csr = _WORKER_GRAPH
    variant = _WORKER_VARIANT
    kernels = _WORKER_KERNELS
    state = GreedyState(csr, variant, kernels=kernels)
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "stop":
                return
            seq = message[1] if len(message) > 1 else 0
            try:
                if tag == "gains":
                    seq, base_epoch, base_digest, delta = message[1:5]
                    trace = message[5] if len(message) > 5 else None
                    if (state.epoch != base_epoch
                            or state.order_digest != base_digest):
                        conn.send(("resync", seq, state.epoch))
                        continue
                    for node in delta:
                        state.add_node(node)
                    if logs._SINK is not None and trace:
                        _WORKER_LOG.event(
                            "worker_round", trace_id=trace, seq=seq,
                            epoch=state.epoch, lo=lo, hi=hi,
                        )
                    conn.send(("ok", seq, state.epoch,
                               state.gains_range(lo, hi)))
                elif tag == "sync":
                    seq, order = message[1], message[2]
                    state = GreedyState(csr, variant, kernels=kernels)
                    for node in order:
                        state.add_node(node)
                    conn.send(("synced", seq, state.epoch))
                elif tag == "ping":
                    conn.send(("pong", seq))
                else:
                    conn.send(
                        ("error", seq, f"unknown control message {tag!r}")
                    )
            except Exception:  # surface worker failures to the parent
                conn.send(("error", seq, traceback.format_exc()))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


def _shm_worker_loop(conn, lo: int, hi: int) -> None:
    """Shared-memory worker: read state, write gains, ack with one line.

    The worker is stateless (the solver state lives in the shared
    buffers), so there is no replica to go stale; rounds are still
    stamped — ``b"gains <seq> <epoch>[ <trace>]"`` is acked as
    ``b"ok <seq> <epoch>[ <trace>]"`` — so the parent can discard
    out-of-date acks after a worker restart.  The optional third token
    is the parent's trace id; with structured logging inherited across
    the fork the worker stamps it on its round records.
    """
    csr = _WORKER_GRAPH
    kernels = _WORKER_KERNELS
    in_set, deficit, out = _WORKER_SHARED
    independent = _WORKER_VARIANT is Variant.INDEPENDENT
    try:
        while True:
            message = conn.recv_bytes()
            if message == b"stop":
                return
            tag, _, rest = message.partition(b" ")
            if tag == b"gains":
                try:
                    out[lo:hi] = kernels.gains_block(
                        lo, hi, csr.in_ptr, csr.in_src, csr.in_weight,
                        csr.node_weight, in_set, deficit, independent,
                    )
                    if logs._SINK is not None:
                        parts = rest.split(b" ")
                        if len(parts) > 2 and parts[2] != b"-":
                            _WORKER_LOG.event(
                                "worker_round",
                                trace_id=parts[2].decode(
                                    "ascii", "replace"
                                ),
                                seq=int(parts[0]),
                                epoch=int(parts[1]),
                                lo=lo, hi=hi,
                            )
                    conn.send_bytes(b"ok " + rest)
                except Exception:
                    conn.send_bytes(
                        b"err " + rest + b" "
                        + traceback.format_exc().encode()
                    )
            elif tag == b"ping":
                conn.send_bytes(b"pong " + rest)
            else:
                conn.send_bytes(
                    b"err 0 0 unknown control message " + message[:64]
                )
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ParallelGainEvaluator:
    """Evaluate full gain vectors across ``n_workers`` processes.

    Use as a context manager::

        with ParallelGainEvaluator(csr, variant, n_workers=4) as pool:
            result = greedy_solve(csr, k=k, variant=variant,
                                  strategy="naive", parallel=pool)

    Args:
        graph: the instance (``PreferenceGraph`` or ``CSRGraph``).
        variant: problem variant; workers replicate it.
        n_workers: process count; ``1`` short-circuits to serial.
        backend: wire protocol — ``"auto"`` (shared memory where
            available), ``"shm"``, ``"pipe"`` or ``"serial"``.
            Unavailable protocols degrade (``shm`` -> ``pipe`` ->
            ``serial``); the resolved choice is exposed as
            :attr:`backend`.
        tracer: observability sink; per-round timings/counters are
            recorded when enabled.
        kernels: kernel backend forwarded to the workers (see
            :mod:`repro.core.kernels`).
        timeout_s: supervision bound on every per-worker ``recv`` wait;
            a worker that does not answer within the window is treated
            as hung, killed and (budget permitting) restarted.  ``None``
            waits forever (unsupervised).
        max_restarts: total worker respawns the pool may spend over its
            lifetime before a crash/hang escalates to
            :class:`SolverError`.  ``0`` fails on the first fault.

    The evaluator is exception-safe: a worker failure raises
    :class:`SolverError` in the parent *after* every child has been
    joined or terminated, and ``__exit__`` always tears the pool down
    even when the solve aborts mid-flight.  The pool may be reused —
    across sequential solves *and* across ``close()``/``start()``
    cycles — because every round re-verifies replica synchrony via the
    epoch/digest stamp instead of trusting parent-side bookkeeping.

    Supervision counters are exposed as :attr:`restarts`,
    :attr:`resyncs` and :attr:`timeouts` (cumulative over the pool's
    lifetime) and mirrored to the tracer as ``parallel.restarts`` /
    ``parallel.resyncs`` / ``parallel.timeouts``.
    """

    def __init__(
        self,
        graph,
        variant: "Variant | str",
        n_workers: int = 2,
        *,
        backend: str = "auto",
        tracer=None,
        kernels: "KernelBackend | str | None" = None,
        timeout_s: Optional[float] = 30.0,
        max_restarts: int = 2,
    ) -> None:
        if n_workers < 1:
            raise SolverError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in PARALLEL_BACKENDS:
            raise SolverError(
                f"unknown parallel backend {backend!r}; expected one of "
                f"{PARALLEL_BACKENDS}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise SolverError(
                f"timeout_s must be positive or None, got {timeout_s}"
            )
        if max_restarts < 0:
            raise SolverError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.csr = as_csr(graph)
        self.variant = Variant.coerce(variant)
        self.tracer = coerce_tracer(tracer)
        self.kernels = get_kernels(kernels)
        self.n_workers = n_workers
        self.backend = self._resolve_backend(backend, n_workers)
        self.timeout_s = timeout_s
        self.max_restarts = max_restarts
        self.restarts = 0
        self.resyncs = 0
        self.timeouts = 0
        self._seq = 0
        self._replica_epoch = 0
        self._replica_digest = 0
        self._conns: List = []
        self._procs: List = []
        self._bounds: List = []
        self._shm_blocks: List = []
        self._shared_in_set: Optional[np.ndarray] = None
        self._shared_deficit: Optional[np.ndarray] = None
        self._shared_gains: Optional[np.ndarray] = None
        self._started = False

    @staticmethod
    def _resolve_backend(requested: str, n_workers: int) -> str:
        """Degrade gracefully: shm -> pipe -> serial."""
        if requested == "serial" or n_workers <= 1:
            return "serial"
        if "fork" not in mp.get_all_start_methods():
            # Without fork neither protocol can hand the graph to the
            # workers cheaply; evaluate serially.
            return "serial"
        if requested == "pipe":
            return "pipe"
        return "shm" if _shared_memory is not None else "pipe"

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelGainEvaluator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Fork the worker processes (no-op in serial mode)."""
        if self._started:
            return
        self._started = True
        # Fresh forks hold empty replicas; reset the tracked base so a
        # reused pool never claims its workers are ahead of reality.
        self._replica_epoch = 0
        self._replica_digest = 0
        if self.backend == "serial":
            return
        ctx = mp.get_context("fork")
        n = self.csr.n_items
        if self.backend == "shm":
            self._allocate_shared(n)
        # Partition candidates into blocks of near-equal *edge* counts so
        # workers finish together even on skewed degree distributions.
        # Degenerate splits (n_workers > n, extreme skew) can produce
        # empty (lo, lo) blocks; spawning a worker that would only ever
        # idle wastes a fork, so empty ranges are skipped outright.
        cuts = [
            (lo, hi)
            for lo, hi in self._edge_balanced_cuts(n, self.n_workers)
            if hi > lo
        ]
        try:
            for lo, hi in cuts:
                conn, proc = self._spawn_worker(ctx, lo, hi)
                self._conns.append(conn)
                self._procs.append(proc)
                self._bounds.append((lo, hi))
        except BaseException:
            self.close()
            raise
        if self.tracer.enabled:
            self.tracer.incr(f"parallel.start.{self.backend}")
            self.tracer.set_gauge("parallel.pool_size", len(self._procs))

    def _spawn_worker(self, ctx, lo: int, hi: int):
        """Fork one worker for the candidate block ``[lo, hi)``.

        The graph/variant/kernels (and, for shm, the shared views) are
        handed over through module globals so fork inherits them without
        pickling; the slots are cleared again before returning.
        """
        if self.backend == "shm":
            target = _shm_worker_loop
            shared = (
                self._shared_in_set, self._shared_deficit, self._shared_gains
            )
        else:
            target = _pipe_worker_loop
            shared = None
        global _WORKER_GRAPH, _WORKER_VARIANT, _WORKER_KERNELS, _WORKER_SHARED
        _WORKER_GRAPH = self.csr
        _WORKER_VARIANT = self.variant
        _WORKER_KERNELS = self.kernels
        _WORKER_SHARED = shared
        try:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=target, args=(child_conn, lo, hi), daemon=True
            )
            proc.start()
            child_conn.close()
        finally:
            _WORKER_GRAPH = None
            _WORKER_VARIANT = None
            _WORKER_KERNELS = None
            _WORKER_SHARED = None
        return parent_conn, proc

    def _allocate_shared(self, n: int) -> None:
        """Create the three shared segments and their array views."""

        def alloc(nbytes: int):
            block = _shared_memory.SharedMemory(
                create=True, size=max(1, nbytes)
            )
            self._shm_blocks.append(block)
            return block

        self._shared_in_set = np.ndarray(
            (n,), dtype=bool, buffer=alloc(n).buf
        )
        self._shared_deficit = np.ndarray(
            (n,), dtype=np.float64, buffer=alloc(8 * n).buf
        )
        self._shared_gains = np.ndarray(
            (n,), dtype=np.float64, buffer=alloc(8 * n).buf
        )

    def _edge_balanced_cuts(self, n: int, parts: int) -> List:
        """Split ``range(n)`` into ``parts`` blocks of ~equal in-edge mass."""
        in_ptr = self.csr.in_ptr
        total = float(in_ptr[-1] + n)  # edges plus self terms
        cuts = []
        lo = 0
        for part in range(parts):
            if part == parts - 1:
                hi = n
            else:
                target = total * (part + 1) / parts
                # position where edge-mass + node count reaches the target
                hi = int(
                    np.searchsorted(
                        in_ptr[1:] + np.arange(1, n + 1), target, side="left"
                    )
                ) + 1
                hi = min(max(hi, lo), n)
            cuts.append((lo, hi))
            lo = hi
        return cuts

    def liveness(self) -> List[bool]:
        """Per-worker liveness snapshot (``[]`` in serial mode)."""
        return [proc.is_alive() for proc in self._procs]

    def close(self) -> None:
        """Terminate the workers and release the shared segments.

        Idempotent and best-effort: every teardown step runs even when
        earlier ones fail, so no child process or shared-memory block is
        leaked by an aborted solve.  Stopped (``SIGSTOP``) children that
        ignore the polite ``stop``/``SIGTERM`` sequence are ``SIGKILL``ed.
        """
        stop = b"stop" if self.backend == "shm" else ("stop",)
        for conn in self._conns:
            try:
                if isinstance(stop, bytes):
                    conn.send_bytes(stop)
                else:
                    conn.send(stop)
            except (BrokenPipeError, OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            # Healthy workers exit within milliseconds of the stop
            # message; a short grace period keeps teardown of a hung
            # (e.g. SIGSTOPped) child bounded before escalating.
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
        self._bounds = []
        # Views into the segments must be dropped before the buffers are
        # released, or SharedMemory.close() raises BufferError.
        self._shared_in_set = None
        self._shared_deficit = None
        self._shared_gains = None
        for block in self._shm_blocks:
            try:
                block.close()
            except (BufferError, OSError):
                pass
            try:
                block.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._shm_blocks = []
        self._replica_epoch = 0
        self._replica_digest = 0
        self._started = False

    # ------------------------------------------------------------------
    # Supervision primitives
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _recv(self, index: int):
        """Bounded receive from worker ``index``.

        Raises :class:`_WorkerFault` on timeout or a dead/closed pipe —
        the supervision faults that are eligible for a restart.
        """
        conn = self._conns[index]
        try:
            ready = conn.poll(self.timeout_s)
        except (OSError, ValueError) as exc:
            raise _WorkerFault(index, f"pipe failed ({exc})") from exc
        if not ready:
            self.timeouts += 1
            if self.tracer.enabled:
                self.tracer.incr("parallel.timeouts")
            raise _WorkerFault(
                index, f"timed out after {self.timeout_s}s"
            )
        try:
            if self.backend == "shm":
                return conn.recv_bytes()
            return conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            code = self._procs[index].exitcode
            raise _WorkerFault(
                index, f"crashed (exitcode {code})"
            ) from exc

    def _send(self, index: int, payload) -> None:
        """Send to worker ``index``; dead pipes raise :class:`_WorkerFault`."""
        conn = self._conns[index]
        try:
            if self.backend == "shm":
                conn.send_bytes(payload)
            else:
                conn.send(payload)
        except (BrokenPipeError, ConnectionResetError, OSError,
                ValueError) as exc:
            code = self._procs[index].exitcode
            raise _WorkerFault(
                index, f"crashed (exitcode {code})"
            ) from exc

    def _restart_worker(self, index: int, reason: str) -> None:
        """Kill and respawn worker ``index``, spending the restart budget."""
        self.restarts += 1
        if self.restarts > self.max_restarts:
            raise SolverError(
                f"parallel worker {index} {reason}; restart budget "
                f"({self.max_restarts}) exhausted"
            )
        if self.tracer.enabled:
            self.tracer.incr("parallel.restarts")
        proc = self._procs[index]
        try:
            self._conns[index].close()
        except OSError:
            pass
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)
        ctx = mp.get_context("fork")
        lo, hi = self._bounds[index]
        conn, fresh = self._spawn_worker(ctx, lo, hi)
        self._conns[index] = conn
        self._procs[index] = fresh

    def _revive(self, index: int, reason: str, resend) -> None:
        """Restart worker ``index`` until ``resend`` goes through.

        ``resend`` re-issues the in-flight request(s) to the fresh
        worker; a send that faults again keeps spending the restart
        budget until it is exhausted (at which point
        :meth:`_restart_worker` raises :class:`SolverError`).
        """
        while True:
            self._restart_worker(index, reason)
            try:
                resend(index)
                return
            except _WorkerFault as fault:
                reason = fault.reason

    # ------------------------------------------------------------------
    def gains(self, state: GreedyState) -> np.ndarray:
        """Full gain vector for the solver's current state.

        Under the ``shm`` protocol the state is published to the shared
        buffers each round; under ``pipe`` the round carries the epoch
        delta since the last verified sync and workers bounce a
        ``resync`` on any mismatch.  Worker crashes and hangs are
        retried within the restart budget; anything beyond it — and any
        application error a worker reports — raises
        :class:`SolverError` after the pool has been torn down.
        """
        if not self._started:
            self.start()
        if self.backend == "serial" or not self._conns:
            return state.gains_all()
        self._inject_pool_faults()
        try:
            if self.backend == "shm":
                return self._shm_round(state)
            return self._pipe_round(state)
        except SolverError:
            self.close()
            raise
        except _WorkerFault as fault:
            self.close()
            raise SolverError(
                f"parallel worker {fault.index} {fault.reason}; "
                f"worker pool torn down"
            ) from fault
        except Exception as exc:
            self.close()
            raise SolverError(
                f"parallel gain evaluation failed ({type(exc).__name__}: "
                f"{exc}); worker pool torn down"
            ) from exc

    def _inject_pool_faults(self) -> None:
        """Consult the active fault injector before a round (chaos tests).

        ``worker_crash`` SIGKILLs one rng-chosen worker so the round
        exercises the supervision/restart path; ``recv_delay`` stalls
        the parent the way a slow worker would.  No-op without an
        active injector.
        """
        from ..resilience.faults import active_faults

        faults = active_faults()
        if faults is None or not self._procs:
            return
        victim = faults.crash_worker_index(len(self._procs))
        if victim is not None:
            proc = self._procs[victim]
            if proc.is_alive() and proc.pid is not None:
                import os
                import signal

                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5)
        delay = faults.round_delay_s()
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # shm protocol
    # ------------------------------------------------------------------
    def _shm_round(self, state: GreedyState) -> np.ndarray:
        tracer = self.tracer
        round_start = time.perf_counter()
        np.copyto(self._shared_in_set, state.in_set)
        np.copyto(self._shared_deficit, state.deficit)
        seq = self._next_seq()
        # Stamp the round with the ambient trace id (``-`` when no span
        # is active) so worker-side records correlate with the parent's.
        trace = logs.current_trace_id() or "-"
        request = b"gains %d %d %s" % (seq, state.epoch, trace.encode())

        def resend(index: int) -> None:
            self._send(index, request)

        for index in range(len(self._conns)):
            try:
                self._send(index, request)
            except _WorkerFault as fault:
                self._revive(index, fault.reason, resend)
        ack_times = []
        for index in range(len(self._conns)):
            wait_start = time.perf_counter()
            self._shm_collect(index, seq, resend)
            ack_times.append(time.perf_counter() - round_start)
            if tracer.enabled:
                tracer.observe(
                    f"parallel.worker{index}.recv_s",
                    time.perf_counter() - wait_start,
                )
        gains = self._shared_gains.copy()
        round_s = time.perf_counter() - round_start
        if tracer.enabled:
            tracer.incr("parallel.rounds")
            # State published + gains drained: 1 byte/flag + 8/deficit +
            # 8/gain per item, vs O(n) *pickled* floats per worker for
            # the pipe protocol.
            tracer.incr("parallel.shared_bytes", 17 * state.in_set.shape[0])
            tracer.observe("parallel.round_s", round_s)
            self._observe_utilization(ack_times, round_s)
        if logs._SINK is not None:
            _LOG.event(
                "round", backend="shm", seq=seq, epoch=state.epoch,
                workers=len(self._conns), round_s=round(round_s, 6),
            )
        return gains

    def _observe_utilization(
        self, ack_times: List[float], round_s: float
    ) -> None:
        """Fold one round's busy-fraction proxy into the tracer.

        Each worker computes from round start until its ack lands, so
        ``mean(time-to-ack) / round wall time`` upper-bounds the pool's
        busy fraction; 1.0 means every worker worked the whole round,
        values near ``1/N`` mean one straggler held the round open.
        """
        if not ack_times or round_s <= 0:
            return
        utilization = min(
            1.0, sum(ack_times) / (len(ack_times) * round_s)
        )
        self.tracer.observe("parallel.pool_utilization", utilization)

    def _shm_collect(self, index: int, seq: int, resend) -> None:
        """Wait for worker ``index`` to ack round ``seq``."""
        while True:
            try:
                reply = self._recv(index)
            except _WorkerFault as fault:
                self._revive(index, fault.reason, resend)
                continue
            tag, _, rest = reply.partition(b" ")
            if tag == b"ok":
                if int(rest.split(b" ", 1)[0]) != seq:
                    continue  # stale ack from before a restart
                return
            if tag == b"pong":
                continue
            if tag == b"err":
                # err <seq> <epoch> <detail...>
                parts = rest.split(b" ", 2)
                detail = parts[2] if len(parts) == 3 else rest
                raise SolverError(
                    f"parallel worker {index} failed: "
                    f"{detail.decode('utf-8', 'replace').strip()}"
                )
            raise SolverError(
                f"parallel worker {index} sent unexpected reply "
                f"{reply[:64]!r}"
            )

    # ------------------------------------------------------------------
    # pipe protocol
    # ------------------------------------------------------------------
    def _pipe_round(self, state: GreedyState) -> np.ndarray:
        tracer = self.tracer
        round_start = time.perf_counter()
        seq = self._next_seq()
        base_epoch = self._replica_epoch
        base_digest = self._replica_digest
        # Parent-side staleness check: the tracked base must be a prefix
        # of the *current* state's order.  A fresh state on a warm pool
        # (epoch went backwards) or a different selection of equal length
        # (digest mismatch) forces a full resync; the worker-side check
        # in _pipe_worker_loop covers anything this misses.
        stale = (
            base_epoch > state.epoch
            or base_digest != order_digest(state.order[:base_epoch])
        )
        order = list(state.order)
        # Trace stamp mirrored from the shm protocol: workers log their
        # round records against the parent's trace id.
        trace = logs.current_trace_id()
        if stale:
            self.resyncs += 1
            if tracer.enabled:
                tracer.incr("parallel.resyncs")
            request = ("gains", seq, state.epoch, state.order_digest, [],
                       trace)
        else:
            request = ("gains", seq, base_epoch, base_digest,
                       order[base_epoch:], trace)

        def resend(index: int) -> None:
            # A fresh fork holds an empty replica: rebuild it, then
            # re-issue the round against the rebuilt base.
            self._send(index, ("sync", seq, order))
            self._send(
                index,
                ("gains", seq, state.epoch, state.order_digest, [], trace),
            )

        for index in range(len(self._conns)):
            try:
                if stale:
                    self._send(index, ("sync", seq, order))
                self._send(index, request)
            except _WorkerFault as fault:
                self._revive(index, fault.reason, resend)
        gains = np.empty(self.csr.n_items, dtype=np.float64)
        ack_times = []
        for index, (lo, hi) in enumerate(self._bounds):
            wait_start = time.perf_counter()
            gains[lo:hi] = self._pipe_collect(index, seq, state, resend)
            ack_times.append(time.perf_counter() - round_start)
            if tracer.enabled:
                tracer.observe(
                    f"parallel.worker{index}.recv_s",
                    time.perf_counter() - wait_start,
                )
        self._replica_epoch = state.epoch
        self._replica_digest = state.order_digest
        round_s = time.perf_counter() - round_start
        if tracer.enabled:
            tracer.incr("parallel.rounds")
            tracer.incr("parallel.piped_floats", self.csr.n_items)
            tracer.observe("parallel.round_s", round_s)
            self._observe_utilization(ack_times, round_s)
        if logs._SINK is not None:
            _LOG.event(
                "round", backend="pipe", seq=seq, epoch=state.epoch,
                workers=len(self._conns), resync=stale,
                round_s=round(round_s, 6),
            )
        return gains

    def _pipe_collect(self, index: int, seq: int, state: GreedyState,
                      resend) -> np.ndarray:
        """Wait for worker ``index``'s gain block for round ``seq``."""
        while True:
            try:
                reply = self._recv(index)
            except _WorkerFault as fault:
                self._revive(index, fault.reason, resend)
                continue
            tag = reply[0]
            if tag == "ok":
                _, rseq, epoch, block = reply
                if rseq != seq:
                    continue  # stale reply from before a restart
                if epoch != state.epoch:
                    raise SolverError(
                        f"parallel worker {index} answered epoch {epoch} "
                        f"for a round at epoch {state.epoch}"
                    )
                return block
            if tag == "resync":
                if reply[1] != seq:
                    continue
                # The replica rejected our base: replay the full order.
                self.resyncs += 1
                if self.tracer.enabled:
                    self.tracer.incr("parallel.resyncs")
                try:
                    self._send(index, ("sync", seq, list(state.order)))
                    self._send(
                        index,
                        ("gains", seq, state.epoch, state.order_digest, [],
                         logs.current_trace_id()),
                    )
                except _WorkerFault as fault:
                    self._revive(index, fault.reason, resend)
                continue
            if tag in ("synced", "pong"):
                continue
            if tag == "error":
                raise SolverError(
                    f"parallel worker {index} failed: {reply[2]}"
                )
            raise SolverError(
                f"parallel worker {index} sent unexpected reply {tag!r}"
            )


# ----------------------------------------------------------------------
# Work-span cost model (Figure 4e substitution)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelCostModel:
    """Calibrated cost model of one greedy run.

    Attributes:
        iteration_work: per-iteration serial work units (candidate self
            terms plus in-edge traversals), as actually incurred by the
            naive strategy on the given instance.
        per_op_seconds: measured cost of one work unit on this host.
        sync_seconds: per-iteration synchronization/merge overhead charged
            once per iteration per the paper's ``O(k + nkD/N)`` bound.
    """

    iteration_work: np.ndarray
    per_op_seconds: float
    sync_seconds: float

    def runtime(self, n_workers: int) -> float:
        """Modeled wall-clock seconds with ``n_workers`` workers."""
        if n_workers < 1:
            raise SolverError(f"n_workers must be >= 1, got {n_workers}")
        work = float(self.iteration_work.sum()) * self.per_op_seconds
        # One selection/merge step per iteration regardless of the worker
        # count (the paper's additive k term in O(k + nkD/N)).
        sync = len(self.iteration_work) * self.sync_seconds
        return work / n_workers + sync

    def speedup(self, n_workers: int) -> float:
        """Modeled speedup relative to one worker."""
        return self.runtime(1) / self.runtime(n_workers)


def calibrate_cost_model(
    graph,
    k: int,
    variant: "Variant | str",
    *,
    sync_seconds: float = 5e-5,
) -> ParallelCostModel:
    """Calibrate the cost model by running the naive greedy serially.

    The per-iteration work counts are exact (``n - |S|`` self terms plus
    all in-edges of live candidates — the quantity the paper bounds by
    ``n * D``); the per-op cost is the measured serial runtime divided by
    the total work.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    work_per_iteration = []

    def record(iteration, node, gain, cover):
        # The naive pass always touches every in-edge plus one self term
        # per candidate; retained nodes drop out of the candidate pool.
        work_per_iteration.append(csr.n_edges + csr.n_items - iteration)

    from .greedy import greedy_solve  # local import to avoid a cycle

    start = time.perf_counter()
    greedy_solve(csr, k=k, variant=variant, strategy="naive", callback=record)
    elapsed = time.perf_counter() - start
    work = np.asarray(work_per_iteration, dtype=np.float64)
    total = float(work.sum())
    per_op = elapsed / total if total else 0.0
    return ParallelCostModel(
        iteration_work=work,
        per_op_seconds=per_op,
        sync_seconds=sync_seconds,
    )


def speedup_curve(
    model: ParallelCostModel,
    workers: Sequence[int] = (1, 4, 8, 16, 32),
) -> List[dict]:
    """Modeled runtime/speedup rows for Figure 4e."""
    return [
        {
            "workers": w,
            "runtime_s": model.runtime(w),
            "speedup": model.speedup(w),
        }
        for w in workers
    ]
