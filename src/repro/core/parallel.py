"""Parallel gain evaluation and the work-span parallel cost model.

The paper (Performance Analysis, Sections 3.2 and 4.2) observes that the
greedy algorithm's per-iteration gain computations are independent across
candidates, giving a parallel complexity of ``O(k + n*k*D / N)`` for ``N``
workers.  This module provides both halves of that story:

* :class:`ParallelGainEvaluator` — a real process-pool executor.  Each
  worker holds its own :class:`~repro.core.gain.GreedyState` replica
  (cheaply kept in sync by replaying ``AddNode`` for each selected node,
  an ``O(D)`` message) and evaluates the gains of a contiguous block of
  candidates.  Plug it into ``greedy_solve(..., strategy="naive",
  parallel=...)``.

* :func:`simulate_parallel_runtime` / :func:`speedup_curve` — a
  deterministic work-span cost model that counts the exact per-iteration
  edge-work our implementation performs and applies the paper's parallel
  bound with a measured per-operation cost and a per-iteration
  synchronization overhead.  This reproduces the *shape* of the paper's
  Figure 4e (near-perfect scaling, ~20x on 32 cores) on hosts — like this
  reproduction's single-core container — that cannot run 32 hardware
  threads.  See DESIGN.md, substitution 3.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SolverError
from ..observability import coerce_tracer
from .csr import CSRGraph, as_csr
from .gain import GreedyState
from .variants import Variant

# Module-level slot used to hand the graph to forked workers without
# pickling it through the pipe (fork shares the parent's address space
# copy-on-write; the CSR arrays are read-only).
_WORKER_GRAPH: Optional[CSRGraph] = None
_WORKER_VARIANT: Optional[Variant] = None


def _worker_loop(conn, lo: int, hi: int) -> None:
    """Worker process: maintain a state replica, answer gain queries."""
    state = GreedyState(_WORKER_GRAPH, _WORKER_VARIANT)
    while True:
        message = conn.recv()
        tag = message[0]
        if tag == "add":
            for node in message[1]:
                state.add_node(node)
        elif tag == "gains":
            conn.send(state.gains_range(lo, hi))
        elif tag == "stop":
            conn.close()
            return


class ParallelGainEvaluator:
    """Evaluate naive-greedy gains across ``n_workers`` processes.

    Use as a context manager::

        with ParallelGainEvaluator(csr, variant, n_workers=4) as pool:
            result = greedy_solve(csr, k, variant,
                                  strategy="naive", parallel=pool)

    Falls back to serial evaluation when ``n_workers <= 1`` or when the
    platform lacks the ``fork`` start method.
    """

    def __init__(
        self,
        graph,
        variant: "Variant | str",
        n_workers: int = 2,
        *,
        tracer=None,
    ) -> None:
        if n_workers < 1:
            raise SolverError(f"n_workers must be >= 1, got {n_workers}")
        self.csr = as_csr(graph)
        self.variant = Variant.coerce(variant)
        self.tracer = coerce_tracer(tracer)
        self.n_workers = n_workers
        self._synced = 0
        self._conns: List = []
        self._procs: List = []
        self._bounds: List = []
        self._started = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelGainEvaluator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Fork the worker processes (no-op in serial mode)."""
        if self._started:
            return
        self._started = True
        if self.n_workers <= 1:
            return
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            # Platform without fork: run serially.
            self.n_workers = 1
            return
        global _WORKER_GRAPH, _WORKER_VARIANT
        _WORKER_GRAPH = self.csr
        _WORKER_VARIANT = self.variant
        n = self.csr.n_items
        # Partition candidates into blocks of near-equal *edge* counts so
        # workers finish together even on skewed degree distributions.
        cuts = self._edge_balanced_cuts(n, self.n_workers)
        try:
            for lo, hi in cuts:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_loop, args=(child_conn, lo, hi), daemon=True
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
                self._bounds.append((lo, hi))
        finally:
            _WORKER_GRAPH = None
            _WORKER_VARIANT = None

    def _edge_balanced_cuts(self, n: int, parts: int) -> List:
        """Split ``range(n)`` into ``parts`` blocks of ~equal in-edge mass."""
        in_ptr = self.csr.in_ptr
        total = float(in_ptr[-1] + n)  # edges plus self terms
        cuts = []
        lo = 0
        for part in range(parts):
            if part == parts - 1:
                hi = n
            else:
                target = total * (part + 1) / parts
                # position where edge-mass + node count reaches the target
                hi = int(
                    np.searchsorted(
                        in_ptr[1:] + np.arange(1, n + 1), target, side="left"
                    )
                ) + 1
                hi = min(max(hi, lo), n)
            cuts.append((lo, hi))
            lo = hi
        return cuts

    def close(self) -> None:
        """Terminate the worker processes."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        self._conns = []
        self._procs = []
        self._started = False

    # ------------------------------------------------------------------
    def gains(self, state: GreedyState) -> np.ndarray:
        """Full gain vector for the solver's current state.

        Newly retained nodes (anything appended to ``state.order`` since
        the previous call) are broadcast to the replicas first.
        """
        if not self._started:
            self.start()
        tracer = self.tracer
        new_nodes = state.order[self._synced:]
        self._synced = len(state.order)
        if self.n_workers <= 1 or not self._conns:
            return state.gains_all()
        round_start = time.perf_counter()
        if new_nodes:
            for conn in self._conns:
                conn.send(("add", list(new_nodes)))
        for conn in self._conns:
            conn.send(("gains",))
        gains = np.empty(self.csr.n_items, dtype=np.float64)
        if tracer.enabled:
            # Sequential drain: each wait measures how long the slowest-
            # so-far worker kept the merge step blocked.
            for index, (conn, (lo, hi)) in enumerate(
                zip(self._conns, self._bounds)
            ):
                wait_start = time.perf_counter()
                gains[lo:hi] = conn.recv()
                tracer.observe(
                    f"parallel.worker{index}.recv_s",
                    time.perf_counter() - wait_start,
                )
            tracer.incr("parallel.rounds")
            tracer.observe(
                "parallel.round_s", time.perf_counter() - round_start
            )
        else:
            for conn, (lo, hi) in zip(self._conns, self._bounds):
                gains[lo:hi] = conn.recv()
        return gains


# ----------------------------------------------------------------------
# Work-span cost model (Figure 4e substitution)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelCostModel:
    """Calibrated cost model of one greedy run.

    Attributes:
        iteration_work: per-iteration serial work units (candidate self
            terms plus in-edge traversals), as actually incurred by the
            naive strategy on the given instance.
        per_op_seconds: measured cost of one work unit on this host.
        sync_seconds: per-iteration synchronization/merge overhead charged
            once per iteration per the paper's ``O(k + nkD/N)`` bound.
    """

    iteration_work: np.ndarray
    per_op_seconds: float
    sync_seconds: float

    def runtime(self, n_workers: int) -> float:
        """Modeled wall-clock seconds with ``n_workers`` workers."""
        if n_workers < 1:
            raise SolverError(f"n_workers must be >= 1, got {n_workers}")
        work = float(self.iteration_work.sum()) * self.per_op_seconds
        # One selection/merge step per iteration regardless of the worker
        # count (the paper's additive k term in O(k + nkD/N)).
        sync = len(self.iteration_work) * self.sync_seconds
        return work / n_workers + sync

    def speedup(self, n_workers: int) -> float:
        """Modeled speedup relative to one worker."""
        return self.runtime(1) / self.runtime(n_workers)


def calibrate_cost_model(
    graph,
    k: int,
    variant: "Variant | str",
    *,
    sync_seconds: float = 5e-5,
) -> ParallelCostModel:
    """Calibrate the cost model by running the naive greedy serially.

    The per-iteration work counts are exact (``n - |S|`` self terms plus
    all in-edges of live candidates — the quantity the paper bounds by
    ``n * D``); the per-op cost is the measured serial runtime divided by
    the total work.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    work_per_iteration = []

    def record(iteration, node, gain, cover):
        # The naive pass always touches every in-edge plus one self term
        # per candidate; retained nodes drop out of the candidate pool.
        work_per_iteration.append(csr.n_edges + csr.n_items - iteration)

    from .greedy import greedy_solve  # local import to avoid a cycle

    start = time.perf_counter()
    greedy_solve(csr, k=k, variant=variant, strategy="naive", callback=record)
    elapsed = time.perf_counter() - start
    work = np.asarray(work_per_iteration, dtype=np.float64)
    total = float(work.sum())
    per_op = elapsed / total if total else 0.0
    return ParallelCostModel(
        iteration_work=work,
        per_op_seconds=per_op,
        sync_seconds=sync_seconds,
    )


def speedup_curve(
    model: ParallelCostModel,
    workers: Sequence[int] = (1, 4, 8, 16, 32),
) -> List[dict]:
    """Modeled runtime/speedup rows for Figure 4e."""
    return [
        {
            "workers": w,
            "runtime_s": model.runtime(w),
            "speedup": model.speedup(w),
        }
        for w in workers
    ]
