"""Parallel gain evaluation and the work-span parallel cost model.

The paper (Performance Analysis, Sections 3.2 and 4.2) observes that the
greedy algorithm's per-iteration gain computations are independent across
candidates, giving a parallel complexity of ``O(k + n*k*D / N)`` for ``N``
workers.  This module provides both halves of that story:

* :class:`ParallelGainEvaluator` — a real process-pool executor with two
  wire protocols:

  ``shm`` (default where available)
      Workers are forked once and communicate through
      ``multiprocessing.shared_memory`` buffers: the parent publishes the
      solver state (``in_set``, ``deficit``) into shared arrays with two
      ``memcpy``-speed copies, each worker computes its candidate block's
      gains straight into a shared output array, and the pipes carry only
      a few control bytes per round.  Per-iteration communication is
      O(1) pickled payload instead of O(n) pickled floats per worker.

  ``pipe`` (fallback)
      The original protocol: each worker holds its own
      :class:`~repro.core.gain.GreedyState` replica (kept in sync by
      replaying ``AddNode`` for each selected node) and sends its gain
      block back through the pipe, paying O(block) serialization per
      round.

  Plug it into ``greedy_solve(..., strategy="naive", parallel=...)`` or
  ``greedy_threshold_solve(..., parallel=...)``.  Both protocols produce
  byte-identical selections to the serial path.  When ``fork`` is
  unavailable the evaluator degrades to serial evaluation.

* :func:`simulate_parallel_runtime` / :func:`speedup_curve` — a
  deterministic work-span cost model that counts the exact per-iteration
  edge-work our implementation performs and applies the paper's parallel
  bound with a measured per-operation cost and a per-iteration
  synchronization overhead.  This reproduces the *shape* of the paper's
  Figure 4e (near-perfect scaling, ~20x on 32 cores) on hosts — like this
  reproduction's single-core container — that cannot run 32 hardware
  threads.  See DESIGN.md, substitution 3.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SolverError
from ..observability import coerce_tracer
from .csr import CSRGraph, as_csr
from .gain import GreedyState
from .kernels import KernelBackend, get_kernels
from .variants import Variant

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - py>=3.8 always has it
    _shared_memory = None

#: Recognized wire protocols; ``auto`` prefers shared memory.
PARALLEL_BACKENDS = ("auto", "shm", "pipe", "serial")

# Module-level slots used to hand state to forked workers without
# pickling it through the pipe (fork shares the parent's address space
# copy-on-write; the CSR arrays are read-only, the shared views are
# backed by the shared-memory segments).
_WORKER_GRAPH: Optional[CSRGraph] = None
_WORKER_VARIANT: Optional[Variant] = None
_WORKER_KERNELS: Optional[KernelBackend] = None
_WORKER_SHARED: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None


def _pipe_worker_loop(conn, lo: int, hi: int) -> None:
    """Pipe-protocol worker: maintain a state replica, answer queries."""
    state = GreedyState(_WORKER_GRAPH, _WORKER_VARIANT,
                        kernels=_WORKER_KERNELS)
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "add":
                for node in message[1]:
                    state.add_node(node)
            elif tag == "gains":
                conn.send(("ok", state.gains_range(lo, hi)))
            elif tag == "stop":
                return
            else:
                conn.send(("error", f"unknown control message {tag!r}"))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    except Exception as exc:  # surface worker failures to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _shm_worker_loop(conn, lo: int, hi: int) -> None:
    """Shared-memory worker: read state, write gains, ack with one byte."""
    csr = _WORKER_GRAPH
    kernels = _WORKER_KERNELS
    in_set, deficit, out = _WORKER_SHARED
    independent = _WORKER_VARIANT is Variant.INDEPENDENT
    try:
        while True:
            message = conn.recv_bytes()
            if message == b"stop":
                return
            if message == b"gains":
                try:
                    out[lo:hi] = kernels.gains_block(
                        lo, hi, csr.in_ptr, csr.in_src, csr.in_weight,
                        csr.node_weight, in_set, deficit, independent,
                    )
                    conn.send_bytes(b"ok")
                except Exception as exc:
                    conn.send_bytes(
                        b"err:" + f"{type(exc).__name__}: {exc}".encode()
                    )
            else:
                conn.send_bytes(b"err:unknown control message")
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ParallelGainEvaluator:
    """Evaluate full gain vectors across ``n_workers`` processes.

    Use as a context manager::

        with ParallelGainEvaluator(csr, variant, n_workers=4) as pool:
            result = greedy_solve(csr, k=k, variant=variant,
                                  strategy="naive", parallel=pool)

    Args:
        graph: the instance (``PreferenceGraph`` or ``CSRGraph``).
        variant: problem variant; workers replicate it.
        n_workers: process count; ``1`` short-circuits to serial.
        backend: wire protocol — ``"auto"`` (shared memory where
            available), ``"shm"``, ``"pipe"`` or ``"serial"``.
            Unavailable protocols degrade (``shm`` -> ``pipe`` ->
            ``serial``); the resolved choice is exposed as
            :attr:`backend`.
        tracer: observability sink; per-round timings/counters are
            recorded when enabled.
        kernels: kernel backend forwarded to the workers (see
            :mod:`repro.core.kernels`).

    The evaluator is exception-safe: a worker failure raises
    :class:`SolverError` in the parent *after* every child has been
    joined or terminated, and ``__exit__`` always tears the pool down
    even when the solve aborts mid-flight.
    """

    def __init__(
        self,
        graph,
        variant: "Variant | str",
        n_workers: int = 2,
        *,
        backend: str = "auto",
        tracer=None,
        kernels: "KernelBackend | str | None" = None,
    ) -> None:
        if n_workers < 1:
            raise SolverError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in PARALLEL_BACKENDS:
            raise SolverError(
                f"unknown parallel backend {backend!r}; expected one of "
                f"{PARALLEL_BACKENDS}"
            )
        self.csr = as_csr(graph)
        self.variant = Variant.coerce(variant)
        self.tracer = coerce_tracer(tracer)
        self.kernels = get_kernels(kernels)
        self.n_workers = n_workers
        self.backend = self._resolve_backend(backend, n_workers)
        self._synced = 0
        self._conns: List = []
        self._procs: List = []
        self._bounds: List = []
        self._shm_blocks: List = []
        self._shared_in_set: Optional[np.ndarray] = None
        self._shared_deficit: Optional[np.ndarray] = None
        self._shared_gains: Optional[np.ndarray] = None
        self._started = False

    @staticmethod
    def _resolve_backend(requested: str, n_workers: int) -> str:
        """Degrade gracefully: shm -> pipe -> serial."""
        if requested == "serial" or n_workers <= 1:
            return "serial"
        if "fork" not in mp.get_all_start_methods():
            # Without fork neither protocol can hand the graph to the
            # workers cheaply; evaluate serially.
            return "serial"
        if requested == "pipe":
            return "pipe"
        return "shm" if _shared_memory is not None else "pipe"

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelGainEvaluator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Fork the worker processes (no-op in serial mode)."""
        if self._started:
            return
        self._started = True
        if self.backend == "serial":
            return
        ctx = mp.get_context("fork")
        n = self.csr.n_items
        # Partition candidates into blocks of near-equal *edge* counts so
        # workers finish together even on skewed degree distributions.
        cuts = self._edge_balanced_cuts(n, self.n_workers)
        if self.backend == "shm":
            self._allocate_shared(n)
            target = _shm_worker_loop
            shared = (
                self._shared_in_set, self._shared_deficit, self._shared_gains
            )
        else:
            target = _pipe_worker_loop
            shared = None
        global _WORKER_GRAPH, _WORKER_VARIANT, _WORKER_KERNELS, _WORKER_SHARED
        _WORKER_GRAPH = self.csr
        _WORKER_VARIANT = self.variant
        _WORKER_KERNELS = self.kernels
        _WORKER_SHARED = shared
        try:
            for lo, hi in cuts:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=target, args=(child_conn, lo, hi), daemon=True
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
                self._bounds.append((lo, hi))
        except BaseException:
            self.close()
            raise
        finally:
            _WORKER_GRAPH = None
            _WORKER_VARIANT = None
            _WORKER_KERNELS = None
            _WORKER_SHARED = None
        if self.tracer.enabled:
            self.tracer.incr(f"parallel.start.{self.backend}")

    def _allocate_shared(self, n: int) -> None:
        """Create the three shared segments and their array views."""

        def alloc(nbytes: int):
            block = _shared_memory.SharedMemory(
                create=True, size=max(1, nbytes)
            )
            self._shm_blocks.append(block)
            return block

        self._shared_in_set = np.ndarray(
            (n,), dtype=bool, buffer=alloc(n).buf
        )
        self._shared_deficit = np.ndarray(
            (n,), dtype=np.float64, buffer=alloc(8 * n).buf
        )
        self._shared_gains = np.ndarray(
            (n,), dtype=np.float64, buffer=alloc(8 * n).buf
        )

    def _edge_balanced_cuts(self, n: int, parts: int) -> List:
        """Split ``range(n)`` into ``parts`` blocks of ~equal in-edge mass."""
        in_ptr = self.csr.in_ptr
        total = float(in_ptr[-1] + n)  # edges plus self terms
        cuts = []
        lo = 0
        for part in range(parts):
            if part == parts - 1:
                hi = n
            else:
                target = total * (part + 1) / parts
                # position where edge-mass + node count reaches the target
                hi = int(
                    np.searchsorted(
                        in_ptr[1:] + np.arange(1, n + 1), target, side="left"
                    )
                ) + 1
                hi = min(max(hi, lo), n)
            cuts.append((lo, hi))
            lo = hi
        return cuts

    def close(self) -> None:
        """Terminate the workers and release the shared segments.

        Idempotent and best-effort: every teardown step runs even when
        earlier ones fail, so no child process or shared-memory block is
        leaked by an aborted solve.
        """
        stop = b"stop" if self.backend == "shm" else ("stop",)
        for conn in self._conns:
            try:
                if isinstance(stop, bytes):
                    conn.send_bytes(stop)
                else:
                    conn.send(stop)
            except (BrokenPipeError, OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
        self._bounds = []
        # Views into the segments must be dropped before the buffers are
        # released, or SharedMemory.close() raises BufferError.
        self._shared_in_set = None
        self._shared_deficit = None
        self._shared_gains = None
        for block in self._shm_blocks:
            try:
                block.close()
            except (BufferError, OSError):
                pass
            try:
                block.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._shm_blocks = []
        self._started = False

    # ------------------------------------------------------------------
    def gains(self, state: GreedyState) -> np.ndarray:
        """Full gain vector for the solver's current state.

        Under the ``shm`` protocol the state is published to the shared
        buffers each round; under ``pipe`` any newly retained nodes
        (anything appended to ``state.order`` since the previous call)
        are broadcast to the replicas first.  Worker failures raise
        :class:`SolverError` after the pool has been torn down.
        """
        if not self._started:
            self.start()
        if self.backend == "serial" or not self._conns:
            return state.gains_all()
        try:
            if self.backend == "shm":
                return self._shm_round(state)
            return self._pipe_round(state)
        except SolverError:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise SolverError(
                f"parallel gain evaluation failed ({type(exc).__name__}: "
                f"{exc}); worker pool torn down"
            ) from exc

    def _shm_round(self, state: GreedyState) -> np.ndarray:
        tracer = self.tracer
        round_start = time.perf_counter()
        np.copyto(self._shared_in_set, state.in_set)
        np.copyto(self._shared_deficit, state.deficit)
        for conn in self._conns:
            conn.send_bytes(b"gains")
        for index, conn in enumerate(self._conns):
            wait_start = time.perf_counter()
            reply = conn.recv_bytes()
            if reply != b"ok":
                detail = reply[4:].decode("utf-8", "replace") \
                    if reply.startswith(b"err:") else repr(reply)
                raise SolverError(f"parallel worker {index} failed: {detail}")
            if tracer.enabled:
                tracer.observe(
                    f"parallel.worker{index}.recv_s",
                    time.perf_counter() - wait_start,
                )
        gains = self._shared_gains.copy()
        if tracer.enabled:
            tracer.incr("parallel.rounds")
            # State published + gains drained: 1 byte/flag + 8/deficit +
            # 8/gain per item, vs O(n) *pickled* floats per worker for
            # the pipe protocol.
            tracer.incr("parallel.shared_bytes", 17 * state.in_set.shape[0])
            tracer.observe(
                "parallel.round_s", time.perf_counter() - round_start
            )
        return gains

    def _pipe_round(self, state: GreedyState) -> np.ndarray:
        tracer = self.tracer
        new_nodes = state.order[self._synced:]
        self._synced = len(state.order)
        round_start = time.perf_counter()
        if new_nodes:
            for conn in self._conns:
                conn.send(("add", list(new_nodes)))
        for conn in self._conns:
            conn.send(("gains",))
        gains = np.empty(self.csr.n_items, dtype=np.float64)
        for index, (conn, (lo, hi)) in enumerate(
            zip(self._conns, self._bounds)
        ):
            wait_start = time.perf_counter()
            tag, payload = conn.recv()
            if tag != "ok":
                raise SolverError(f"parallel worker {index} failed: {payload}")
            gains[lo:hi] = payload
            if tracer.enabled:
                tracer.observe(
                    f"parallel.worker{index}.recv_s",
                    time.perf_counter() - wait_start,
                )
        if tracer.enabled:
            tracer.incr("parallel.rounds")
            tracer.incr("parallel.piped_floats", self.csr.n_items)
            tracer.observe(
                "parallel.round_s", time.perf_counter() - round_start
            )
        return gains


# ----------------------------------------------------------------------
# Work-span cost model (Figure 4e substitution)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelCostModel:
    """Calibrated cost model of one greedy run.

    Attributes:
        iteration_work: per-iteration serial work units (candidate self
            terms plus in-edge traversals), as actually incurred by the
            naive strategy on the given instance.
        per_op_seconds: measured cost of one work unit on this host.
        sync_seconds: per-iteration synchronization/merge overhead charged
            once per iteration per the paper's ``O(k + nkD/N)`` bound.
    """

    iteration_work: np.ndarray
    per_op_seconds: float
    sync_seconds: float

    def runtime(self, n_workers: int) -> float:
        """Modeled wall-clock seconds with ``n_workers`` workers."""
        if n_workers < 1:
            raise SolverError(f"n_workers must be >= 1, got {n_workers}")
        work = float(self.iteration_work.sum()) * self.per_op_seconds
        # One selection/merge step per iteration regardless of the worker
        # count (the paper's additive k term in O(k + nkD/N)).
        sync = len(self.iteration_work) * self.sync_seconds
        return work / n_workers + sync

    def speedup(self, n_workers: int) -> float:
        """Modeled speedup relative to one worker."""
        return self.runtime(1) / self.runtime(n_workers)


def calibrate_cost_model(
    graph,
    k: int,
    variant: "Variant | str",
    *,
    sync_seconds: float = 5e-5,
) -> ParallelCostModel:
    """Calibrate the cost model by running the naive greedy serially.

    The per-iteration work counts are exact (``n - |S|`` self terms plus
    all in-edges of live candidates — the quantity the paper bounds by
    ``n * D``); the per-op cost is the measured serial runtime divided by
    the total work.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    work_per_iteration = []

    def record(iteration, node, gain, cover):
        # The naive pass always touches every in-edge plus one self term
        # per candidate; retained nodes drop out of the candidate pool.
        work_per_iteration.append(csr.n_edges + csr.n_items - iteration)

    from .greedy import greedy_solve  # local import to avoid a cycle

    start = time.perf_counter()
    greedy_solve(csr, k=k, variant=variant, strategy="naive", callback=record)
    elapsed = time.perf_counter() - start
    work = np.asarray(work_per_iteration, dtype=np.float64)
    total = float(work.sum())
    per_op = elapsed / total if total else 0.0
    return ParallelCostModel(
        iteration_work=work,
        per_op_seconds=per_op,
        sync_seconds=sync_seconds,
    )


def speedup_curve(
    model: ParallelCostModel,
    workers: Sequence[int] = (1, 4, 8, 16, 32),
) -> List[dict]:
    """Modeled runtime/speedup rows for Figure 4e."""
    return [
        {
            "workers": w,
            "runtime_s": model.runtime(w),
            "speedup": model.speedup(w),
        }
        for w in workers
    ]
