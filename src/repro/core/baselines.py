"""Baseline selection algorithms from the paper's evaluation (Section 5.3).

* ``TopK-W`` — retain the ``k`` items with the highest node weight: the
  naive "keep the best sellers" policy the paper's introduction argues
  against, blind to alternatives.
* ``TopK-C`` — retain the ``k`` items with the highest *standalone
  coverage* (the item's weight plus everything it would cover as an
  alternative, i.e. its singleton gain).  Alternative-aware, but scores
  items in isolation and therefore double counts overlapping covers.
* ``Random`` — ``k`` uniformly random items (the paper reports the best
  of 10 random draws).

Each baseline also has a threshold-adapted version for the complementary
minimization problem (Figure 4f): the paper adapts them by binary search
over the prefix of the metric-sorted item list; with a monotone cover
function this is equivalent to — and implemented as — the shortest
qualifying prefix.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from .._compat import keyword_only_shim
from .._rng import SeedLike, resolve_rng
from ..errors import SolverError
from .cover import cover as exact_cover
from .cover import coverage_vector
from .csr import as_csr
from .gain import GreedyState
from .result import SolveResult
from .variants import Variant


def _result_from_order(
    csr, order: np.ndarray, k: int, variant: Variant, strategy: str,
    elapsed: float,
) -> SolveResult:
    chosen = order[:k]
    coverage = coverage_vector(csr, chosen, variant)
    return SolveResult(
        variant=variant,
        k=k,
        retained=[csr.items[i] for i in chosen.tolist()],
        retained_indices=np.asarray(chosen, dtype=np.int64),
        cover=float(coverage.sum()),
        coverage=coverage,
        item_ids=csr.items,
        prefix_covers=None,
        strategy=strategy,
        wall_time_s=elapsed,
    )


def _check_k(k: int, n: int) -> None:
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")


# ----------------------------------------------------------------------
# Rankings
# ----------------------------------------------------------------------
def top_k_weight_order(graph) -> np.ndarray:
    """All items sorted by descending node weight (TopK-W ranking)."""
    csr = as_csr(graph)
    # argsort of -weight is descending; stable sort keeps ties in index
    # order, matching the greedy's lowest-index tie-break.
    return np.argsort(-csr.node_weight, kind="stable")


def top_k_coverage_order(graph, variant: "Variant | str") -> np.ndarray:
    """All items sorted by descending standalone coverage (TopK-C ranking).

    An item's standalone coverage is its marginal gain with respect to the
    empty set: ``W(v) + sum_u W(u) * W(u, v)`` (identical under both
    variants when ``S`` is empty, but computed through the variant's gain
    rule for symmetry).
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    state = GreedyState(csr, variant)
    singleton_gains = state.gains_all()
    return np.argsort(-singleton_gains, kind="stable")


# ----------------------------------------------------------------------
# Top-k solvers
# ----------------------------------------------------------------------
@keyword_only_shim("k", "variant")
def top_k_weight_solve(
    graph, *, k: int, variant: "Variant | str"
) -> SolveResult:
    """``TopK-W``: the ``k`` best-selling items."""
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    _check_k(k, csr.n_items)
    start = time.perf_counter()
    order = top_k_weight_order(csr)
    elapsed = time.perf_counter() - start
    return _result_from_order(csr, order, k, variant, "topk-weight", elapsed)


@keyword_only_shim("k", "variant")
def top_k_coverage_solve(
    graph, *, k: int, variant: "Variant | str"
) -> SolveResult:
    """``TopK-C``: the ``k`` items with highest standalone coverage."""
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    _check_k(k, csr.n_items)
    start = time.perf_counter()
    order = top_k_coverage_order(csr, variant)
    elapsed = time.perf_counter() - start
    return _result_from_order(csr, order, k, variant, "topk-coverage", elapsed)


@keyword_only_shim("k", "variant")
def random_solve(
    graph,
    *,
    k: int,
    variant: "Variant | str",
    seed: SeedLike = None,
    draws: int = 1,
) -> SolveResult:
    """``Random``: the best of ``draws`` uniformly random size-``k`` sets.

    The paper reports the best of 10 executions; pass ``draws=10`` for
    that protocol.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    _check_k(k, csr.n_items)
    if draws < 1:
        raise SolverError(f"draws must be >= 1, got {draws}")
    rng = resolve_rng(seed)
    start = time.perf_counter()
    best_cover = -1.0
    best_choice: Optional[np.ndarray] = None
    for _ in range(draws):
        choice = rng.choice(csr.n_items, size=k, replace=False)
        value = exact_cover(csr, choice, variant)
        if value > best_cover:
            best_cover = value
            best_choice = choice
    elapsed = time.perf_counter() - start
    assert best_choice is not None
    return _result_from_order(
        csr, np.asarray(best_choice), k, variant,
        f"random(best-of-{draws})", elapsed,
    )


# ----------------------------------------------------------------------
# Threshold-adapted baselines (complementary problem, Figure 4f)
# ----------------------------------------------------------------------
def _smallest_qualifying_prefix(
    csr, order: np.ndarray, threshold: float, variant: Variant
) -> int:
    """Binary search for the shortest prefix of ``order`` covering >= threshold.

    Monotonicity of the cover function makes prefix cover nondecreasing in
    the prefix length, so binary search applies — this mirrors the paper's
    adaptation of TopK-W / TopK-C to the minimization problem.
    """
    if not (0.0 <= threshold <= 1.0):
        raise SolverError(f"threshold must be in [0, 1], got {threshold}")
    lo, hi = 0, len(order)
    if exact_cover(csr, order, variant) < threshold - 1e-12:
        raise SolverError(
            f"threshold {threshold} unreachable even retaining all items"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if exact_cover(csr, order[:mid], variant) >= threshold - 1e-12:
            hi = mid
        else:
            lo = mid + 1
    return lo


@keyword_only_shim("threshold", "variant")
def top_k_weight_threshold(
    graph, *, threshold: float, variant: "Variant | str"
) -> SolveResult:
    """TopK-W adapted to the minimization problem (smallest prefix)."""
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    start = time.perf_counter()
    order = top_k_weight_order(csr)
    size = _smallest_qualifying_prefix(csr, order, threshold, variant)
    elapsed = time.perf_counter() - start
    return _result_from_order(
        csr, order, size, variant, "topk-weight-threshold", elapsed
    )


@keyword_only_shim("threshold", "variant")
def top_k_coverage_threshold(
    graph, *, threshold: float, variant: "Variant | str"
) -> SolveResult:
    """TopK-C adapted to the minimization problem (smallest prefix)."""
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    start = time.perf_counter()
    order = top_k_coverage_order(csr, variant)
    size = _smallest_qualifying_prefix(csr, order, threshold, variant)
    elapsed = time.perf_counter() - start
    return _result_from_order(
        csr, order, size, variant, "topk-coverage-threshold", elapsed
    )
