"""Immutable array-backed preference graph for large instances.

The paper's application operates on graphs with millions of nodes, where
per-node Python dictionaries are too slow and too large.  :class:`CSRGraph`
stores the graph twice in compressed-sparse-row form:

* grouped by **destination** (``in_ptr``/``in_src``/``in_weight``) — the
  incoming edges of each node, which is what the ``Gain``/``AddNode``
  procedures of Algorithms 2–5 iterate over ("each ``u`` with an edge into
  ``v``");
* grouped by **source** (``out_ptr``/``out_dst``/``out_weight``) — the
  outgoing edges, which the accelerated greedy needs to propagate deficit
  updates.

Items are mapped to dense integer indices ``0..n-1``; the original ids are
kept in :attr:`items` for reporting.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphValidationError, UnknownItemError
from .variants import Variant


class CSRGraph:
    """Read-only CSR view of a preference graph.

    Construct with :meth:`from_preference_graph` or :meth:`from_arrays`;
    all arrays are made non-writable so a graph can be shared across
    solver invocations (and across processes via fork) without copies.
    """

    __slots__ = (
        "node_weight",
        "in_ptr",
        "in_src",
        "in_weight",
        "out_ptr",
        "out_dst",
        "out_weight",
        "items",
        "_index_of",
        "_validated",
        "_digest",
    )

    def __init__(
        self,
        node_weight: np.ndarray,
        in_ptr: np.ndarray,
        in_src: np.ndarray,
        in_weight: np.ndarray,
        out_ptr: np.ndarray,
        out_dst: np.ndarray,
        out_weight: np.ndarray,
        items: List[Hashable],
    ) -> None:
        self.node_weight = node_weight
        self.in_ptr = in_ptr
        self.in_src = in_src
        self.in_weight = in_weight
        self.out_ptr = out_ptr
        self.out_dst = out_dst
        self.out_weight = out_weight
        self.items = items
        self._index_of = {item: i for i, item in enumerate(items)}
        # Validation outcomes (per variant, at the default tolerance) and
        # the content digest are cached: the arrays below are frozen, so
        # both are immutable properties of the instance.
        self._validated = set()
        self._digest = None
        for array in (
            node_weight, in_ptr, in_src, in_weight,
            out_ptr, out_dst, out_weight,
        ):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_preference_graph(cls, graph) -> "CSRGraph":
        """Build from a :class:`repro.core.graph.PreferenceGraph`."""
        items = list(graph.items())
        index_of = {item: i for i, item in enumerate(items)}
        n = len(items)
        node_weight = np.fromiter(
            (graph.node_weight(item) for item in items),
            dtype=np.float64,
            count=n,
        )
        sources: List[int] = []
        targets: List[int] = []
        weights: List[float] = []
        for source, target, weight in graph.edges():
            sources.append(index_of[source])
            targets.append(index_of[target])
            weights.append(weight)
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        wgt = np.asarray(weights, dtype=np.float64)
        return cls._from_coo(node_weight, src, dst, wgt, items)

    @classmethod
    def from_arrays(
        cls,
        node_weight: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_weight: np.ndarray,
        items: Optional[Sequence[Hashable]] = None,
    ) -> "CSRGraph":
        """Build directly from COO edge arrays.

        This is the fast path used by the synthetic dataset generators,
        which produce numpy arrays without ever materializing a
        dictionary-backed graph.  ``items`` defaults to ``range(n)``.
        """
        node_weight = np.ascontiguousarray(node_weight, dtype=np.float64)
        edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        edge_weight = np.ascontiguousarray(edge_weight, dtype=np.float64)
        n = node_weight.shape[0]
        if not (edge_src.shape == edge_dst.shape == edge_weight.shape):
            raise GraphValidationError("edge arrays must have equal length")
        if edge_src.size and (
            edge_src.min() < 0 or edge_src.max() >= n
            or edge_dst.min() < 0 or edge_dst.max() >= n
        ):
            raise GraphValidationError("edge endpoint index out of range")
        if np.any(edge_src == edge_dst):
            raise GraphValidationError("self-edges are not allowed")
        if edge_src.size:
            keys = edge_src * np.int64(n) + edge_dst
            if np.unique(keys).size != keys.size:
                raise GraphValidationError(
                    "duplicate edges: the model has one probability per "
                    "ordered item pair"
                )
        item_list = list(items) if items is not None else list(range(n))
        if len(item_list) != n:
            raise GraphValidationError(
                f"items length {len(item_list)} != node count {n}"
            )
        return cls._from_coo(node_weight, edge_src, edge_dst, edge_weight,
                             item_list)

    @classmethod
    def _from_coo(
        cls,
        node_weight: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        wgt: np.ndarray,
        items: List[Hashable],
    ) -> "CSRGraph":
        n = node_weight.shape[0]

        def group(keys: np.ndarray, companions: Tuple[np.ndarray, ...]):
            order = np.argsort(keys, kind="stable")
            ptr = np.zeros(n + 1, dtype=np.int64)
            np.add.at(ptr, keys + 1, 1)
            np.cumsum(ptr, out=ptr)
            return ptr, tuple(c[order] for c in companions)

        in_ptr, (in_src, in_weight) = group(dst, (src, wgt))
        out_ptr, (out_dst, out_weight) = group(src, (dst, wgt))
        return cls(
            node_weight,
            in_ptr, in_src, in_weight,
            out_ptr, out_dst, out_weight,
            items,
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Number of items (nodes)."""
        return self.node_weight.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of directed preference edges."""
        return self.in_src.shape[0]

    def __len__(self) -> int:
        return self.n_items

    def index_of(self, item: Hashable) -> int:
        """Dense index of an original item id."""
        try:
            return self._index_of[item]
        except KeyError as exc:
            raise UnknownItemError(item) from exc

    def in_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(sources, weights)`` of edges pointing *into* ``node``."""
        lo, hi = self.in_ptr[node], self.in_ptr[node + 1]
        return self.in_src[lo:hi], self.in_weight[lo:hi]

    def out_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of edges leaving ``node``."""
        lo, hi = self.out_ptr[node], self.out_ptr[node + 1]
        return self.out_dst[lo:hi], self.out_weight[lo:hi]

    def in_degrees(self) -> np.ndarray:
        """Vector of incoming degrees."""
        return np.diff(self.in_ptr)

    def out_degrees(self) -> np.ndarray:
        """Vector of outgoing degrees."""
        return np.diff(self.out_ptr)

    def max_in_degree(self) -> int:
        """The paper's ``D``."""
        degrees = self.in_degrees()
        return int(degrees.max()) if degrees.size else 0

    def out_weight_sums(self) -> np.ndarray:
        """Per-node sums of outgoing edge weights."""
        sums = np.zeros(self.n_items, dtype=np.float64)
        np.add.at(sums, self._out_sources(), self.out_weight)
        return sums

    def _out_sources(self) -> np.ndarray:
        """Source index of every entry of the out-CSR value arrays."""
        return np.repeat(
            np.arange(self.n_items, dtype=np.int64), self.out_degrees()
        )

    def is_validated(self, variant: "Variant | str") -> bool:
        """Whether :meth:`validate` already succeeded for ``variant``.

        Because the arrays are frozen at construction, a successful
        validation holds for the lifetime of the instance; solvers use
        this to skip the O(m) invariant sweep on repeat solves.
        """
        return Variant.coerce(variant) in self._validated

    def validate(
        self,
        variant: "Variant | str" = Variant.INDEPENDENT,
        *,
        tolerance: float = 1e-6,
    ) -> None:
        """Array-level equivalent of ``PreferenceGraph.validate``.

        Successful runs at the default tolerance are memoized (the
        instance is immutable), making repeat validation O(1) — the
        fast path the serving refresh loop and :func:`repro.solve`
        rely on.
        """
        variant = Variant.coerce(variant)
        if tolerance == 1e-6 and variant in self._validated:
            return
        if self.n_items == 0:
            raise GraphValidationError("graph has no items")
        if np.any(self.node_weight < 0):
            raise GraphValidationError("negative node weight")
        total = float(self.node_weight.sum())
        if abs(total - 1.0) > tolerance:
            raise GraphValidationError(
                f"node weights must sum to 1, got {total:.9f}"
            )
        if self.in_weight.size:
            if self.in_weight.min() <= 0 or self.in_weight.max() > 1 + tolerance:
                raise GraphValidationError("edge weight out of (0, 1]")
        if variant is Variant.NORMALIZED:
            sums = self.out_weight_sums()
            worst = float(sums.max()) if sums.size else 0.0
            if worst > 1.0 + tolerance:
                raise GraphValidationError(
                    f"Normalized variant requires out-weight sums <= 1, "
                    f"max is {worst:.9f}"
                )
        if tolerance == 1e-6:
            self._validated.add(variant)

    def content_digest(self) -> str:
        """Hex fingerprint of the graph's structure and weights.

        Covers the incoming CSR arrays and the node weights — everything
        that determines solver behavior.  Computed once and cached (the
        arrays are frozen); the serving layer keys solution snapshots on
        it so a snapshot can never be served for a different graph.
        """
        if self._digest is None:
            import struct
            import zlib

            digest = zlib.crc32(
                struct.pack("<qq", self.n_items, self.n_edges)
            )
            for array in (
                self.in_ptr, self.in_src, self.in_weight, self.node_weight,
            ):
                digest = zlib.crc32(
                    np.ascontiguousarray(array).tobytes(), digest
                )
            self._digest = f"{digest & 0xFFFFFFFF:08x}"
        return self._digest

    def to_preference_graph(self):
        """Convert back to the dictionary-backed representation."""
        from .graph import PreferenceGraph

        graph = PreferenceGraph()
        for i, item in enumerate(self.items):
            graph.add_item(item, float(self.node_weight[i]))
        for v in range(self.n_items):
            dsts, weights = self.out_edges(v)
            for u, w in zip(dsts.tolist(), weights.tolist()):
                graph.add_edge(self.items[v], self.items[u], float(w))
        return graph

    def __repr__(self) -> str:
        return f"CSRGraph(n_items={self.n_items}, n_edges={self.n_edges})"


def as_csr(graph) -> CSRGraph:
    """Coerce a ``PreferenceGraph`` or ``CSRGraph`` to :class:`CSRGraph`."""
    if isinstance(graph, CSRGraph):
        return graph
    return CSRGraph.from_preference_graph(graph)
