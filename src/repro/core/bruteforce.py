"""Exact brute-force solver (the paper's ``BF`` baseline).

Enumerates every size-``k`` subset and returns one with maximum cover —
the only solver guaranteeing the optimum, used in the evaluation
(Figures 4a/4b) to measure the greedy algorithm's *actual* approximation
ratios and to demonstrate that exact solving is infeasible beyond toy
instances (n=30, k=15 already means 155M candidate subsets).
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Tuple

import numpy as np

from .._compat import keyword_only_shim
from ..errors import SolverError
from .cover import coverage_vector
from .csr import as_csr
from .result import SolveResult
from .variants import Variant


@keyword_only_shim("k", "variant")
def brute_force_solve(
    graph,
    *,
    k: int,
    variant: "Variant | str",
    max_subsets: Optional[int] = 20_000_000,
) -> SolveResult:
    """Find an optimal retained set by exhaustive enumeration.

    Args:
        graph: ``PreferenceGraph`` or ``CSRGraph``.
        k: retained-set size.
        variant: problem variant.
        max_subsets: safety valve — raise :class:`SolverError` instead of
            attempting an enumeration larger than this (pass ``None`` to
            disable; expect astronomical runtimes).

    Ties are broken toward the lexicographically smallest index tuple, so
    the result is deterministic.
    """
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    n = csr.n_items
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")
    total = _n_choose_k(n, k)
    if max_subsets is not None and total > max_subsets:
        raise SolverError(
            f"brute force over C({n},{k}) = {total} subsets exceeds the "
            f"max_subsets={max_subsets} safety limit"
        )

    node_weight = csr.node_weight
    # Precompute, for every node, its outgoing edges as index/weight
    # arrays: evaluating one subset is then a sweep over non-retained
    # nodes.
    out_edges = [csr.out_edges(v) for v in range(n)]

    best_cover = -1.0
    best_subset: Tuple[int, ...] = ()
    start = time.perf_counter()
    in_set = np.zeros(n, dtype=bool)
    for subset in itertools.combinations(range(n), k):
        in_set[:] = False
        in_set[list(subset)] = True
        value = float(node_weight[in_set].sum())
        for v in range(n):
            if in_set[v]:
                continue
            targets, weights = out_edges[v]
            mask = in_set[targets]
            if not mask.any():
                continue
            retained = weights[mask]
            if variant is Variant.INDEPENDENT:
                prob = 1.0 - float(np.prod(1.0 - retained))
            else:
                prob = min(1.0, float(retained.sum()))
            value += float(node_weight[v]) * prob
        if value > best_cover + 1e-15:
            best_cover = value
            best_subset = subset
    elapsed = time.perf_counter() - start

    coverage = coverage_vector(csr, best_subset, variant)
    return SolveResult(
        variant=variant,
        k=k,
        retained=[csr.items[i] for i in best_subset],
        retained_indices=np.asarray(best_subset, dtype=np.int64),
        cover=float(best_cover),
        coverage=coverage,
        item_ids=csr.items,
        prefix_covers=None,
        strategy="brute-force",
        wall_time_s=elapsed,
        gain_evaluations=int(total),
    )


def _n_choose_k(n: int, k: int) -> int:
    """Binomial coefficient (exact integer)."""
    import math

    return math.comb(n, k)
