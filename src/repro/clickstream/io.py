"""Clickstream serialization.

Two formats are supported:

* **YooChoose CSV** — the RecSys 2015 challenge layout the paper's public
  YC dataset ships in: a clicks file (``session,timestamp,item,category``)
  and a buys file (``session,timestamp,item,price,quantity``).  The
  reader reassembles sessions by joining the two files on session id, so
  the genuine ``yoochoose-clicks.dat`` / ``yoochoose-buys.dat`` files can
  be dropped into this reproduction unchanged.
* **JSON lines** — one session per line
  (``{"session_id": ..., "clicks": [...], "purchase": ...}``), the
  compact native format used by the examples and tests.

Both readers support *lenient ingestion*: real export pipelines produce
truncated lines, schema drift and binary junk, and a multi-hour solve
should not die on line 48 million of a clickstream dump.  ``on_error``
selects the policy — ``"raise"`` (default, fail on the first bad
record), ``"skip"`` (drop bad records, count them) or ``"quarantine"``
(drop, count *and* keep a bounded sample of the offending lines).  In
the lenient modes a :class:`QuarantineReport` is attached to the
returned :class:`~repro.clickstream.models.Clickstream` as
``.quarantine``, and an ``error_budget`` fraction bounds how much of
the input may be bad before ingestion aborts anyway — silently
accepting a 90%-corrupt file would poison the graph, not save the run.
"""

from __future__ import annotations

import csv
import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ClickstreamFormatError
from ..observability import coerce_tracer
from ..resilience.faults import active_faults
from .models import Clickstream, Session

PathLike = Union[str, Path]

#: Accepted ``on_error`` ingestion policies.
ON_ERROR = ("raise", "skip", "quarantine")

#: Offending-line samples kept per quarantine report.
_SAMPLE_LIMIT = 5

#: Records to observe before the error budget may abort mid-stream
#: (prevents a bad first line from tripping a fractional budget).
_BUDGET_MIN_RECORDS = 20

#: Types accepted as item / session identifiers.  A *string* ``clicks``
#: value is specifically rejected: ``tuple("abc")`` silently explodes
#: into per-character items.
_SCALAR_TYPES = (str, int, float, bool)


def _bad_record(
    path: PathLike, line_no: int, reason: str, detail: str
) -> ClickstreamFormatError:
    """A format error that names the offending line and carries a tag."""
    error = ClickstreamFormatError(f"{path}:{line_no}: {detail}")
    error.reason = reason
    error.line_no = line_no
    return error


@dataclass
class QuarantineReport:
    """Tally of records rejected by a lenient ingestion pass.

    Attributes:
        source: the file(s) the report covers.
        mode: the ``on_error`` policy that produced it.
        error_budget: the abort fraction in force (``None`` = unlimited).
        total: records examined (blank lines excluded).
        quarantined: records rejected.
        reasons: rejection tally keyed by reason tag
            (``invalid-json``, ``clicks-not-a-list``,
            ``buys-short-row``, ...).
        samples: up to ``5`` human-readable ``location: detail`` entries
            for the first offending records.  Retention is bounded: once
            the cap is hit further offenders only bump ``suppressed``,
            so a pathological input cannot balloon the report.
        suppressed: rejected records whose sample was dropped because
            the ``samples`` cap was already reached.
    """

    source: str
    mode: str = "quarantine"
    error_budget: Optional[float] = None
    total: int = 0
    quarantined: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)
    samples: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def bad_fraction(self) -> float:
        """Fraction of examined records that were rejected."""
        return self.quarantined / self.total if self.total else 0.0

    def record(self, error: ClickstreamFormatError) -> None:
        """Count one rejected record (sample kept in quarantine mode)."""
        self.quarantined += 1
        reason = getattr(error, "reason", "invalid")
        self.reasons[reason] = self.reasons.get(reason, 0) + 1
        if self.mode != "quarantine":
            return
        if len(self.samples) < _SAMPLE_LIMIT:
            self.samples.append(str(error))
        else:
            self.suppressed += 1

    def check_budget(self, *, final: bool = False) -> None:
        """Abort ingestion when too much of the input is bad.

        Mid-stream the check waits for a minimum sample size so one bad
        leading line cannot trip a fractional budget; the ``final``
        check applies regardless.
        """
        if self.error_budget is None or self.total == 0:
            return
        if not final and self.total < _BUDGET_MIN_RECORDS:
            return
        if self.bad_fraction > self.error_budget:
            raise ClickstreamFormatError(
                f"{self.source}: error budget exceeded: "
                f"{self.quarantined}/{self.total} records "
                f"({self.bad_fraction:.1%}) rejected, budget "
                f"{self.error_budget:.1%}; reasons: "
                f"{dict(sorted(self.reasons.items()))}"
            )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"quarantined {self.quarantined}/{self.total} records "
            f"({self.bad_fraction:.1%}) from {self.source}"
        ]
        for reason, count in sorted(self.reasons.items()):
            lines.append(f"  {reason}: {count}")
        for sample in self.samples:
            lines.append(f"  e.g. {sample}")
        if self.suppressed:
            lines.append(f"  ... {self.suppressed} more suppressed")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "source": self.source,
            "mode": self.mode,
            "total": self.total,
            "quarantined": self.quarantined,
            "bad_fraction": self.bad_fraction,
            "reasons": dict(sorted(self.reasons.items())),
            "samples": list(self.samples),
            "suppressed": self.suppressed,
        }


def _check_on_error(on_error: str) -> None:
    if on_error not in ON_ERROR:
        raise ClickstreamFormatError(
            f"unknown on_error policy {on_error!r}; expected one of "
            f"{ON_ERROR}"
        )


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def write_jsonl(clickstream: Clickstream, path: PathLike) -> None:
    """Write one session per line as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        for session in clickstream:
            record = {
                "session_id": session.session_id,
                "clicks": list(session.clicks),
                "purchase": session.purchase,
            }
            handle.write(json.dumps(record) + "\n")


def _session_from_jsonl(path: PathLike, line_no: int, line: str) -> Session:
    """Parse and validate one JSONL record (raises on any defect)."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise _bad_record(
            path, line_no, "invalid-json", f"invalid JSON: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise _bad_record(
            path, line_no, "not-an-object",
            f"expected a JSON object per line, got "
            f"{type(record).__name__}",
        )
    if "session_id" not in record or "clicks" not in record:
        raise _bad_record(
            path, line_no, "missing-fields",
            "session must have 'session_id' and 'clicks'",
        )
    session_id = record["session_id"]
    if not isinstance(session_id, _SCALAR_TYPES):
        raise _bad_record(
            path, line_no, "non-scalar-session-id",
            f"'session_id' must be a scalar, got "
            f"{type(session_id).__name__}",
        )
    clicks = record["clicks"]
    if not isinstance(clicks, list):
        # A string here is the classic silent corruption: tuple("abc")
        # explodes into per-character phantom items.
        raise _bad_record(
            path, line_no, "clicks-not-a-list",
            f"'clicks' must be a list of item ids, got "
            f"{type(clicks).__name__}",
        )
    for click in clicks:
        if not isinstance(click, _SCALAR_TYPES):
            raise _bad_record(
                path, line_no, "non-scalar-click",
                f"click item ids must be scalars, got "
                f"{type(click).__name__}",
            )
    purchase = record.get("purchase")
    if purchase is not None and not isinstance(purchase, _SCALAR_TYPES):
        raise _bad_record(
            path, line_no, "non-scalar-purchase",
            f"'purchase' must be a scalar item id or null, got "
            f"{type(purchase).__name__}",
        )
    return Session(
        session_id=session_id, clicks=tuple(clicks), purchase=purchase
    )


def read_jsonl(
    path: PathLike,
    *,
    on_error: str = "raise",
    error_budget: Optional[float] = 0.05,
    tracer=None,
) -> Clickstream:
    """Read a JSON-lines clickstream written by :func:`write_jsonl`.

    Every record is validated before it becomes a
    :class:`~repro.clickstream.models.Session`: ``clicks`` must be a
    list of scalar item ids (a *string* value would silently explode
    into per-character items) and ``session_id``/``purchase`` must be
    scalars.  Defects raise :class:`ClickstreamFormatError` naming the
    line under ``on_error="raise"``; the lenient policies (``"skip"`` /
    ``"quarantine"``) drop bad records, attach a
    :class:`QuarantineReport` to the result as ``.quarantine``, and
    abort only when more than ``error_budget`` of the input is bad.
    """
    _check_on_error(on_error)
    tracer = coerce_tracer(tracer)
    faults = active_faults()
    report = QuarantineReport(
        source=str(path), mode=on_error,
        error_budget=error_budget if on_error != "raise" else None,
    )
    sessions: List[Session] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if faults is not None:
                line = faults.corrupt_record(line)
            report.total += 1
            try:
                sessions.append(_session_from_jsonl(path, line_no, line))
            except ClickstreamFormatError as error:
                if on_error == "raise":
                    raise
                report.record(error)
                if tracer.enabled:
                    tracer.incr("ingest.quarantined")
                report.check_budget()
    report.check_budget(final=True)
    stream = Clickstream(sessions)
    stream.quarantine = report if on_error != "raise" else None
    return stream


# ----------------------------------------------------------------------
# YooChoose CSV
# ----------------------------------------------------------------------
def write_yoochoose(
    clickstream: Clickstream,
    clicks_path: PathLike,
    buys_path: PathLike,
) -> None:
    """Write YooChoose-format clicks and buys files.

    Timestamps are synthesized as per-session sequence numbers (the
    adaptation engine never uses them); category, price and quantity
    columns are filled with placeholder zeros.
    """
    with open(clicks_path, "w", newline="", encoding="utf-8") as clicks_file:
        writer = csv.writer(clicks_file)
        for session in clickstream:
            for seq, item in enumerate(session.clicks):
                timestamp = f"2014-04-01T00:00:{seq:02d}.000Z"
                writer.writerow([session.session_id, timestamp, item, 0])
    with open(buys_path, "w", newline="", encoding="utf-8") as buys_file:
        writer = csv.writer(buys_file)
        for session in clickstream:
            if session.purchase is not None:
                timestamp = "2014-04-01T00:01:00.000Z"
                writer.writerow(
                    [session.session_id, timestamp, session.purchase, 0, 1]
                )


def read_yoochoose(
    clicks_path: PathLike,
    buys_path: PathLike,
    *,
    max_sessions: Optional[int] = None,
    on_error: str = "raise",
    error_budget: Optional[float] = 0.05,
    tracer=None,
) -> Clickstream:
    """Read YooChoose clicks/buys files into a clickstream.

    Sessions with multiple distinct purchased items are kept with the
    *first* purchase (the paper works with single-purchase sessions; the
    real dataset is customarily filtered this way).  ``max_sessions``
    truncates for quick experiments.

    Row validation follows the challenge layout: clicks rows need at
    least 3 columns (``session,timestamp,item``; category optional) and
    buys rows all 5 (``session,timestamp,item,price,quantity``) — a
    3–4 column buys row is a truncated export, not a purchase, and is
    rejected rather than silently counted as demand.  ``on_error`` and
    ``error_budget`` behave as in :func:`read_jsonl`; in the lenient
    modes the attached :class:`QuarantineReport` spans both files.
    """
    _check_on_error(on_error)
    tracer = coerce_tracer(tracer)
    report = QuarantineReport(
        source=f"{clicks_path} + {buys_path}", mode=on_error,
        error_budget=error_budget if on_error != "raise" else None,
    )

    def reject(error: ClickstreamFormatError) -> None:
        if on_error == "raise":
            raise error
        report.record(error)
        if tracer.enabled:
            tracer.incr("ingest.quarantined")
        report.check_budget()

    purchases: Dict[str, str] = {}
    with open(buys_path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            report.total += 1
            if len(row) < 5:
                reject(_bad_record(
                    buys_path, line_no, "buys-short-row",
                    f"buys rows need 5 columns (session,timestamp,item,"
                    f"price,quantity), got {len(row)}",
                ))
                continue
            session_id, _timestamp, item = row[0], row[1], row[2]
            purchases.setdefault(session_id, item)

    clicks: Dict[str, List[str]] = defaultdict(list)
    session_order: List[str] = []
    with open(clicks_path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            report.total += 1
            if len(row) < 3:
                reject(_bad_record(
                    clicks_path, line_no, "clicks-short-row",
                    f"clicks rows need >=3 columns (session,timestamp,"
                    f"item[,category]), got {len(row)}",
                ))
                continue
            session_id, _timestamp, item = row[0], row[1], row[2]
            if session_id not in clicks:
                session_order.append(session_id)
            clicks[session_id].append(item)
    report.check_budget(final=True)

    # Purchases without any click row still form (click-less) sessions.
    for session_id in purchases:
        if session_id not in clicks:
            session_order.append(session_id)
            clicks[session_id] = []

    sessions = []
    for session_id in session_order:
        sessions.append(
            Session(
                session_id=session_id,
                clicks=tuple(clicks[session_id]),
                purchase=purchases.get(session_id),
            )
        )
        if max_sessions is not None and len(sessions) >= max_sessions:
            break
    stream = Clickstream(sessions)
    stream.quarantine = report if on_error != "raise" else None
    return stream
