"""Clickstream serialization.

Two formats are supported:

* **YooChoose CSV** — the RecSys 2015 challenge layout the paper's public
  YC dataset ships in: a clicks file (``session,timestamp,item,category``)
  and a buys file (``session,timestamp,item,price,quantity``).  The
  reader reassembles sessions by joining the two files on session id, so
  the genuine ``yoochoose-clicks.dat`` / ``yoochoose-buys.dat`` files can
  be dropped into this reproduction unchanged.
* **JSON lines** — one session per line
  (``{"session_id": ..., "clicks": [...], "purchase": ...}``), the
  compact native format used by the examples and tests.
"""

from __future__ import annotations

import csv
import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ClickstreamFormatError
from .models import Clickstream, Session

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def write_jsonl(clickstream: Clickstream, path: PathLike) -> None:
    """Write one session per line as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        for session in clickstream:
            record = {
                "session_id": session.session_id,
                "clicks": list(session.clicks),
                "purchase": session.purchase,
            }
            handle.write(json.dumps(record) + "\n")


def read_jsonl(path: PathLike) -> Clickstream:
    """Read a JSON-lines clickstream written by :func:`write_jsonl`."""
    sessions: List[Session] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ClickstreamFormatError(
                    f"{path}:{line_no}: invalid JSON: {exc}"
                ) from exc
            if "session_id" not in record or "clicks" not in record:
                raise ClickstreamFormatError(
                    f"{path}:{line_no}: session must have 'session_id' "
                    f"and 'clicks'"
                )
            sessions.append(
                Session(
                    session_id=record["session_id"],
                    clicks=tuple(record["clicks"]),
                    purchase=record.get("purchase"),
                )
            )
    return Clickstream(sessions)


# ----------------------------------------------------------------------
# YooChoose CSV
# ----------------------------------------------------------------------
def write_yoochoose(
    clickstream: Clickstream,
    clicks_path: PathLike,
    buys_path: PathLike,
) -> None:
    """Write YooChoose-format clicks and buys files.

    Timestamps are synthesized as per-session sequence numbers (the
    adaptation engine never uses them); category, price and quantity
    columns are filled with placeholder zeros.
    """
    with open(clicks_path, "w", newline="", encoding="utf-8") as clicks_file:
        writer = csv.writer(clicks_file)
        for session in clickstream:
            for seq, item in enumerate(session.clicks):
                timestamp = f"2014-04-01T00:00:{seq:02d}.000Z"
                writer.writerow([session.session_id, timestamp, item, 0])
    with open(buys_path, "w", newline="", encoding="utf-8") as buys_file:
        writer = csv.writer(buys_file)
        for session in clickstream:
            if session.purchase is not None:
                timestamp = "2014-04-01T00:01:00.000Z"
                writer.writerow(
                    [session.session_id, timestamp, session.purchase, 0, 1]
                )


def read_yoochoose(
    clicks_path: PathLike,
    buys_path: PathLike,
    *,
    max_sessions: Optional[int] = None,
) -> Clickstream:
    """Read YooChoose clicks/buys files into a clickstream.

    Sessions with multiple distinct purchased items are kept with the
    *first* purchase (the paper works with single-purchase sessions; the
    real dataset is customarily filtered this way).  ``max_sessions``
    truncates for quick experiments.
    """
    purchases: Dict[str, str] = {}
    with open(buys_path, "r", encoding="utf-8") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) < 3:
                raise ClickstreamFormatError(
                    f"{buys_path}:{line_no}: expected >=3 columns, "
                    f"got {len(row)}"
                )
            session_id, _timestamp, item = row[0], row[1], row[2]
            purchases.setdefault(session_id, item)

    clicks: Dict[str, List[str]] = defaultdict(list)
    session_order: List[str] = []
    with open(clicks_path, "r", encoding="utf-8") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) < 3:
                raise ClickstreamFormatError(
                    f"{clicks_path}:{line_no}: expected >=3 columns, "
                    f"got {len(row)}"
                )
            session_id, _timestamp, item = row[0], row[1], row[2]
            if session_id not in clicks:
                session_order.append(session_id)
            clicks[session_id].append(item)

    # Purchases without any click row still form (click-less) sessions.
    for session_id in purchases:
        if session_id not in clicks:
            session_order.append(session_id)
            clicks[session_id] = []

    sessions = []
    for session_id in session_order:
        sessions.append(
            Session(
                session_id=session_id,
                clicks=tuple(clicks[session_id]),
                purchase=purchases.get(session_id),
            )
        )
        if max_sessions is not None and len(sessions) >= max_sessions:
            break
    return Clickstream(sessions)
