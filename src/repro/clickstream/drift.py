"""Temporal drift: evolving consumer populations over periods.

The paper's conclusion names "incremental maintenance in response to
changes over time" as ongoing work.  To exercise that direction end to
end, this module evolves a :class:`~repro.clickstream.generator.ConsumerModel`
across discrete periods (think weeks):

* item popularity follows a multiplicative log-normal random walk
  (renormalized each period) — sales ranks churn gradually;
* optionally, a small fraction of acceptance probabilities is
  re-drawn — substitution preferences drift too.

Each period yields a fresh clickstream and the corresponding
ground-truth preference graph, which is exactly what
:class:`repro.extensions.incremental.IncrementalSolver` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Optional, Tuple

import numpy as np

from .._rng import SeedLike, resolve_rng, spawn_rng
from ..core.graph import PreferenceGraph
from ..errors import ClickstreamFormatError
from .generator import ConsumerModel, ShopperConfig
from .models import Clickstream


@dataclass(frozen=True)
class DriftConfig:
    """How fast the market moves per period.

    Attributes:
        popularity_sigma: standard deviation of the log-normal
            multiplicative shock applied to each item's popularity per
            period (0.1 = gentle churn, 0.5 = volatile market).
        acceptance_churn: fraction of items whose alternative-acceptance
            probabilities are re-drawn each period.
    """

    popularity_sigma: float = 0.15
    acceptance_churn: float = 0.02

    def __post_init__(self) -> None:
        if self.popularity_sigma < 0:
            raise ClickstreamFormatError("popularity_sigma must be >= 0")
        if not (0.0 <= self.acceptance_churn <= 1.0):
            raise ClickstreamFormatError(
                "acceptance_churn must be in [0, 1]"
            )


@dataclass(frozen=True)
class GraphDelta:
    """A batch of point updates turning one preference graph into another.

    This is the serving layer's invalidation currency: a delta feed
    (consecutive periods of a :class:`DriftingMarket`, a diff of two
    observed graphs, or a synthetic :func:`random_delta`) tells the
    :class:`~repro.serving.AssortmentService` that its active snapshot
    no longer describes the market, triggering an incremental re-solve.

    Attributes:
        node_weights: items whose request probability changed, mapped to
            the new weight (items unknown to the target graph are
            inserted).
        edge_updates: ``(source, target, weight)`` triples to upsert.
        edge_removals: ``(source, target)`` pairs to delete.
        sequence: monotonically increasing feed position; consumers use
            it to discard stale or duplicated deltas.
    """

    node_weights: Mapping[Hashable, float] = field(default_factory=dict)
    edge_updates: Tuple[Tuple[Hashable, Hashable, float], ...] = ()
    edge_removals: Tuple[Tuple[Hashable, Hashable], ...] = ()
    sequence: int = 0

    @property
    def is_empty(self) -> bool:
        """True when applying the delta would change nothing."""
        return not (
            self.node_weights or self.edge_updates or self.edge_removals
        )

    @property
    def n_changes(self) -> int:
        """Total number of point updates carried by the delta."""
        return (
            len(self.node_weights)
            + len(self.edge_updates)
            + len(self.edge_removals)
        )

    def apply_to(self, graph: PreferenceGraph) -> PreferenceGraph:
        """Apply every update to ``graph`` in place and return it.

        Removals run last so an update+removal pair in one delta nets to
        the removal (matching how :func:`graph_delta` emits diffs).
        """
        for item, weight in self.node_weights.items():
            graph.add_item(item, weight)
        for source, target, weight in self.edge_updates:
            graph.add_edge(source, target, weight)
        for source, target in self.edge_removals:
            graph.remove_edge(source, target)
        return graph

    # -- wire form (the delta-feed transport) ---------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload; node weights as pairs to keep item types."""
        return {
            "sequence": self.sequence,
            "node_weights": [
                [item, weight] for item, weight in self.node_weights.items()
            ],
            "edge_updates": [list(edge) for edge in self.edge_updates],
            "edge_removals": [list(edge) for edge in self.edge_removals],
        }

    def to_json(self) -> str:
        """One feed line: the :meth:`to_dict` payload as compact JSON."""
        import json

        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphDelta":
        """Parse a :meth:`to_dict` payload, validating shapes strictly."""
        try:
            node_weights = {
                item: float(weight)
                for item, weight in payload.get("node_weights", [])
            }
            edge_updates = tuple(
                (source, target, float(weight))
                for source, target, weight in payload.get("edge_updates", [])
            )
            edge_removals = tuple(
                (source, target)
                for source, target in payload.get("edge_removals", [])
            )
            sequence = int(payload.get("sequence", 0))
        except (TypeError, ValueError) as exc:
            raise ClickstreamFormatError(
                f"malformed GraphDelta payload: {exc}"
            ) from exc
        return cls(
            node_weights=node_weights,
            edge_updates=edge_updates,
            edge_removals=edge_removals,
            sequence=sequence,
        )

    @classmethod
    def from_json(cls, line: str) -> "GraphDelta":
        """Parse one feed line (raises ClickstreamFormatError when corrupt)."""
        import json

        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ClickstreamFormatError(
                f"delta feed line is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ClickstreamFormatError(
                f"delta feed line must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        return cls.from_dict(payload)


def graph_delta(
    old: PreferenceGraph, new: PreferenceGraph, *, sequence: int = 0
) -> GraphDelta:
    """Diff two preference graphs into the delta turning ``old`` into ``new``.

    Node removals are not modeled (the catalog only grows in this
    system); an item present in ``old`` but absent from ``new`` raises
    :class:`~repro.errors.ClickstreamFormatError` to surface corrupt
    feeds early.
    """
    node_weights = {}
    for item in new.items():
        weight = new.node_weight(item)
        if item not in old or old.node_weight(item) != weight:
            node_weights[item] = weight
    for item in old.items():
        if item not in new:
            raise ClickstreamFormatError(
                f"delta feed cannot express removal of item {item!r}"
            )
    edge_updates = []
    edge_removals = []
    for source, target, weight in new.edges():
        if not old.has_edge(source, target) \
                or old.edge_weight(source, target) != weight:
            edge_updates.append((source, target, weight))
    for source, target, _ in old.edges():
        if not new.has_edge(source, target):
            edge_removals.append((source, target))
    return GraphDelta(
        node_weights=node_weights,
        edge_updates=tuple(edge_updates),
        edge_removals=tuple(edge_removals),
        sequence=sequence,
    )


def random_delta(
    graph: PreferenceGraph,
    *,
    sigma: float = 0.1,
    edge_churn: float = 0.0,
    seed: SeedLike = None,
    sequence: int = 0,
) -> GraphDelta:
    """A synthetic drift step over ``graph``: log-normal popularity shocks
    plus optional edge-weight churn.

    Node weights are renormalized to sum to one after the shock, so the
    emitted delta always produces a graph that still validates.  Used by
    the serving tests and the ``repro serve`` synthetic workload.
    """
    if sigma < 0:
        raise ClickstreamFormatError("sigma must be >= 0")
    if not (0.0 <= edge_churn <= 1.0):
        raise ClickstreamFormatError("edge_churn must be in [0, 1]")
    rng = resolve_rng(seed)
    items = list(graph.items())
    weights = np.asarray(
        [graph.node_weight(item) for item in items], dtype=np.float64
    )
    shocked = weights * rng.lognormal(0.0, sigma, size=weights.shape) \
        if sigma > 0 else weights.copy()
    shocked /= shocked.sum()
    node_weights = {
        item: float(w)
        for item, w, old_w in zip(items, shocked.tolist(), weights.tolist())
        if w != old_w
    }
    edge_updates = []
    if edge_churn > 0:
        # Churned edges are only ever scaled *down*, which preserves the
        # (0, 1] range and the Normalized out-weight budget unconditionally.
        for source, target, weight in graph.edges():
            if rng.random() < edge_churn:
                edge_updates.append(
                    (source, target, float(weight * rng.uniform(0.5, 1.0)))
                )
    return GraphDelta(
        node_weights=node_weights,
        edge_updates=tuple(edge_updates),
        sequence=sequence,
    )


class DriftingMarket:
    """A consumer population whose preferences evolve period by period.

    Usage::

        market = DriftingMarket(ShopperConfig(n_items=500), seed=0)
        for period in range(8):
            stream = market.generate(20_000)
            truth = market.true_graph()
            ...                       # adapt / re-solve
            market.advance()          # next period
    """

    def __init__(
        self,
        shopper_config: ShopperConfig,
        drift: Optional[DriftConfig] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        self._rng = resolve_rng(seed)
        self.drift = drift or DriftConfig()
        self.model = ConsumerModel(shopper_config, seed=spawn_rng(self._rng))
        self.period = 0

    # ------------------------------------------------------------------
    def generate(self, n_sessions: int) -> Clickstream:
        """Clickstream of the current period."""
        return self.model.generate(
            n_sessions,
            seed=spawn_rng(self._rng),
            session_prefix=f"p{self.period}-s",
        )

    def true_graph(self) -> PreferenceGraph:
        """Ground-truth preference graph of the current period."""
        return self.model.true_graph()

    def advance(self) -> None:
        """Move to the next period, mutating the population in place."""
        drift = self.drift
        model = self.model
        rng = self._rng

        # Popularity random walk.
        if drift.popularity_sigma > 0:
            shocks = rng.lognormal(
                mean=0.0, sigma=drift.popularity_sigma,
                size=model.popularity.shape,
            )
            popularity = model.popularity * shocks
            model.popularity = popularity / popularity.sum()

        # Acceptance churn: re-draw a few items' acceptance vectors.
        if drift.acceptance_churn > 0:
            config = model.config
            n = config.n_items
            churned = rng.random(n) < drift.acceptance_churn
            for item in np.flatnonzero(churned).tolist():
                n_alt = model.alternatives[item].size
                if n_alt == 0:
                    continue
                if config.behavior == "independent":
                    low, high = config.acceptance_range
                    model.acceptance[item] = rng.uniform(
                        low, high, size=n_alt
                    )
                else:
                    low, high = config.normalized_budget_range
                    budget = rng.uniform(low, high)
                    model.acceptance[item] = budget * rng.dirichlet(
                        np.ones(n_alt)
                    )
        self.period += 1

    # ------------------------------------------------------------------
    def run(
        self, n_periods: int, sessions_per_period: int
    ) -> Iterator[Tuple[int, Clickstream, PreferenceGraph]]:
        """Yield ``(period, clickstream, true_graph)`` for each period.

        Advances the market after each yield; after the generator is
        exhausted the market sits at ``period == start + n_periods``.
        """
        for _ in range(n_periods):
            yield self.period, self.generate(sessions_per_period), \
                self.true_graph()
            self.advance()
