"""Temporal drift: evolving consumer populations over periods.

The paper's conclusion names "incremental maintenance in response to
changes over time" as ongoing work.  To exercise that direction end to
end, this module evolves a :class:`~repro.clickstream.generator.ConsumerModel`
across discrete periods (think weeks):

* item popularity follows a multiplicative log-normal random walk
  (renormalized each period) — sales ranks churn gradually;
* optionally, a small fraction of acceptance probabilities is
  re-drawn — substitution preferences drift too.

Each period yields a fresh clickstream and the corresponding
ground-truth preference graph, which is exactly what
:class:`repro.extensions.incremental.IncrementalSolver` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from .._rng import SeedLike, resolve_rng, spawn_rng
from ..core.graph import PreferenceGraph
from ..errors import ClickstreamFormatError
from .generator import ConsumerModel, ShopperConfig
from .models import Clickstream


@dataclass(frozen=True)
class DriftConfig:
    """How fast the market moves per period.

    Attributes:
        popularity_sigma: standard deviation of the log-normal
            multiplicative shock applied to each item's popularity per
            period (0.1 = gentle churn, 0.5 = volatile market).
        acceptance_churn: fraction of items whose alternative-acceptance
            probabilities are re-drawn each period.
    """

    popularity_sigma: float = 0.15
    acceptance_churn: float = 0.02

    def __post_init__(self) -> None:
        if self.popularity_sigma < 0:
            raise ClickstreamFormatError("popularity_sigma must be >= 0")
        if not (0.0 <= self.acceptance_churn <= 1.0):
            raise ClickstreamFormatError(
                "acceptance_churn must be in [0, 1]"
            )


class DriftingMarket:
    """A consumer population whose preferences evolve period by period.

    Usage::

        market = DriftingMarket(ShopperConfig(n_items=500), seed=0)
        for period in range(8):
            stream = market.generate(20_000)
            truth = market.true_graph()
            ...                       # adapt / re-solve
            market.advance()          # next period
    """

    def __init__(
        self,
        shopper_config: ShopperConfig,
        drift: Optional[DriftConfig] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        self._rng = resolve_rng(seed)
        self.drift = drift or DriftConfig()
        self.model = ConsumerModel(shopper_config, seed=spawn_rng(self._rng))
        self.period = 0

    # ------------------------------------------------------------------
    def generate(self, n_sessions: int) -> Clickstream:
        """Clickstream of the current period."""
        return self.model.generate(
            n_sessions,
            seed=spawn_rng(self._rng),
            session_prefix=f"p{self.period}-s",
        )

    def true_graph(self) -> PreferenceGraph:
        """Ground-truth preference graph of the current period."""
        return self.model.true_graph()

    def advance(self) -> None:
        """Move to the next period, mutating the population in place."""
        drift = self.drift
        model = self.model
        rng = self._rng

        # Popularity random walk.
        if drift.popularity_sigma > 0:
            shocks = rng.lognormal(
                mean=0.0, sigma=drift.popularity_sigma,
                size=model.popularity.shape,
            )
            popularity = model.popularity * shocks
            model.popularity = popularity / popularity.sum()

        # Acceptance churn: re-draw a few items' acceptance vectors.
        if drift.acceptance_churn > 0:
            config = model.config
            n = config.n_items
            churned = rng.random(n) < drift.acceptance_churn
            for item in np.flatnonzero(churned).tolist():
                n_alt = model.alternatives[item].size
                if n_alt == 0:
                    continue
                if config.behavior == "independent":
                    low, high = config.acceptance_range
                    model.acceptance[item] = rng.uniform(
                        low, high, size=n_alt
                    )
                else:
                    low, high = config.normalized_budget_range
                    budget = rng.uniform(low, high)
                    model.acceptance[item] = budget * rng.dirichlet(
                        np.ones(n_alt)
                    )
        self.period += 1

    # ------------------------------------------------------------------
    def run(
        self, n_periods: int, sessions_per_period: int
    ) -> Iterator[Tuple[int, Clickstream, PreferenceGraph]]:
        """Yield ``(period, clickstream, true_graph)`` for each period.

        Advances the market after each yield; after the generator is
        exhausted the market sits at ``period == start + n_periods``.
        """
        for _ in range(n_periods):
            yield self.period, self.generate(sessions_per_period), \
                self.true_graph()
            self.advance()
