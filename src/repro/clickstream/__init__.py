"""Clickstream substrate: session model, I/O and synthetic generators."""

from .drift import DriftConfig, DriftingMarket
from .generator import ConsumerModel, ShopperConfig
from .io import read_jsonl, read_yoochoose, write_jsonl, write_yoochoose
from .models import Clickstream, Session, sessions_from_dicts

__all__ = [
    "Clickstream",
    "ConsumerModel",
    "DriftConfig",
    "DriftingMarket",
    "Session",
    "ShopperConfig",
    "read_jsonl",
    "read_yoochoose",
    "sessions_from_dicts",
    "write_jsonl",
    "write_yoochoose",
]
