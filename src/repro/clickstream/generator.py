"""Synthetic e-commerce consumer simulator.

The paper's private datasets (PE/PF/PM) cannot be redistributed, so this
module provides their stand-in: a parametric consumer-behavior model that
generates clickstreams exercising exactly the code paths the real data
would (see DESIGN.md, substitution 1).  The model:

* assigns item popularity by a Zipf law (heavy-tailed sales, as in real
  catalogs);
* partitions the catalog into substitution clusters (items of the same
  product family) and gives each item a small set of in-cluster
  alternatives with acceptance probabilities;
* simulates sessions under either variant's semantics —
  ``independent`` shoppers click each alternative independently with its
  acceptance probability, ``normalized`` shoppers click at most one
  alternative (mutually exclusive choices);
* optionally emits browse-only sessions and noise clicks.

Because the generator *knows* the acceptance probabilities, it exposes
the ground-truth preference graph (:meth:`ConsumerModel.true_graph`),
letting tests verify that the Data Adaptation Engine's estimates converge
to the truth as sessions accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .._rng import SeedLike, resolve_rng
from ..core.graph import PreferenceGraph
from ..errors import ClickstreamFormatError
from .models import Clickstream, Session


@dataclass(frozen=True)
class ShopperConfig:
    """Parameters of the synthetic consumer model.

    Attributes:
        n_items: catalog size.
        behavior: ``"independent"`` or ``"normalized"`` — which variant's
            dependency structure shoppers exhibit.
        zipf_exponent: popularity skew; weight of the rank-``r`` item is
            proportional to ``1 / r**zipf_exponent``.
        cluster_size: size of each substitution cluster (product family).
        max_alternatives: upper bound on the number of alternatives per
            item (the paper's graphs average ~4–5 edges per item).
        acceptance_range: range from which independent-mode acceptance
            probabilities are drawn.
        normalized_budget_range: range of the per-item total probability
            that *some* alternative is acceptable (normalized mode); the
            individual edge weights are a random split of this budget.
        browse_only_rate: fraction of sessions with no purchase (YC-style
            streams have many).
        self_click_rate: probability the shopper also clicks the item
            they end up buying (the engine must ignore these clicks).
        item_prefix: item ids are ``f"{item_prefix}{index}"``.
    """

    n_items: int
    behavior: str = "independent"
    zipf_exponent: float = 1.05
    cluster_size: int = 8
    max_alternatives: int = 4
    acceptance_range: Tuple[float, float] = (0.15, 0.75)
    normalized_budget_range: Tuple[float, float] = (0.4, 0.95)
    browse_only_rate: float = 0.0
    self_click_rate: float = 0.3
    item_prefix: str = "item-"

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise ClickstreamFormatError("n_items must be >= 1")
        if self.behavior not in ("independent", "normalized"):
            raise ClickstreamFormatError(
                f"behavior must be 'independent' or 'normalized', "
                f"got {self.behavior!r}"
            )
        if self.cluster_size < 1:
            raise ClickstreamFormatError("cluster_size must be >= 1")
        if not (0.0 <= self.browse_only_rate < 1.0):
            raise ClickstreamFormatError("browse_only_rate must be in [0, 1)")


class ConsumerModel:
    """A fully specified shopper population over a synthetic catalog.

    Construction materializes the ground truth: item popularity and, for
    every item, its alternatives with acceptance probabilities.  Session
    generation then samples from that truth.
    """

    def __init__(self, config: ShopperConfig, *, seed: SeedLike = None):
        self.config = config
        rng = resolve_rng(seed)
        n = config.n_items

        # Zipf popularity over a random permutation of items, so cluster
        # membership (consecutive indices) is uncorrelated with rank.
        ranks = rng.permutation(n) + 1
        raw = 1.0 / np.power(ranks.astype(np.float64), config.zipf_exponent)
        self.popularity = raw / raw.sum()

        # Substitution structure: ring neighbors inside each cluster.
        self.alternatives: List[np.ndarray] = []
        self.acceptance: List[np.ndarray] = []
        for item in range(n):
            cluster_start = (item // config.cluster_size) * config.cluster_size
            cluster_end = min(cluster_start + config.cluster_size, n)
            cluster_n = cluster_end - cluster_start
            if cluster_n <= 1:
                self.alternatives.append(np.empty(0, dtype=np.int64))
                self.acceptance.append(np.empty(0, dtype=np.float64))
                continue
            n_alt = int(rng.integers(1, min(config.max_alternatives,
                                            cluster_n - 1) + 1))
            offsets = 1 + np.arange(n_alt)
            alts = cluster_start + (item - cluster_start + offsets) % cluster_n
            if config.behavior == "independent":
                low, high = config.acceptance_range
                probs = rng.uniform(low, high, size=n_alt)
            else:
                low, high = config.normalized_budget_range
                budget = rng.uniform(low, high)
                split = rng.dirichlet(np.ones(n_alt))
                probs = budget * split
            self.alternatives.append(alts.astype(np.int64))
            self.acceptance.append(probs)

        self._item_ids = [f"{config.item_prefix}{i}" for i in range(n)]

    # ------------------------------------------------------------------
    @property
    def item_ids(self) -> List[str]:
        """Item ids in index order."""
        return list(self._item_ids)

    def true_graph(self) -> PreferenceGraph:
        """The exact preference graph the shopper population follows.

        Node weights are the purchase popularity; the edge ``A -> B``
        carries the probability a shopper who desires ``A`` accepts ``B``
        — exactly what the Data Adaptation Engine estimates from
        clicks.
        """
        graph = PreferenceGraph()
        for item, weight in zip(self._item_ids, self.popularity):
            graph.add_item(item, float(weight))
        for source in range(self.config.n_items):
            for target, prob in zip(
                self.alternatives[source].tolist(),
                self.acceptance[source].tolist(),
            ):
                graph.add_edge(
                    self._item_ids[source], self._item_ids[target],
                    float(prob),
                )
        return graph

    # ------------------------------------------------------------------
    def generate(
        self,
        n_sessions: int,
        *,
        seed: SeedLike = None,
        session_prefix: str = "s",
    ) -> Clickstream:
        """Simulate ``n_sessions`` browsing sessions.

        Purchasing sessions draw the desired item from the popularity
        distribution, click alternatives per the configured behavior, and
        purchase the desired item (the full catalog is in stock, matching
        the paper's setting).  Browse-only sessions click one or two
        popular items and buy nothing.
        """
        rng = resolve_rng(seed)
        config = self.config
        n = config.n_items
        sessions: List[Session] = []

        purchasing = rng.random(n_sessions) >= config.browse_only_rate
        desired_all = rng.choice(n, size=n_sessions, p=self.popularity)
        for index in range(n_sessions):
            session_id = f"{session_prefix}{index}"
            if not purchasing[index]:
                n_clicks = int(rng.integers(1, 3))
                clicked = rng.choice(n, size=n_clicks, p=self.popularity)
                sessions.append(
                    Session(
                        session_id=session_id,
                        clicks=tuple(self._item_ids[i] for i in clicked),
                        purchase=None,
                    )
                )
                continue

            desired = int(desired_all[index])
            clicks: List[str] = []
            alts = self.alternatives[desired]
            probs = self.acceptance[desired]
            if alts.size:
                if config.behavior == "independent":
                    hits = rng.random(alts.size) < probs
                    clicks.extend(
                        self._item_ids[i] for i in alts[hits].tolist()
                    )
                else:
                    # Mutually exclusive choice: alternative j with
                    # probability probs[j], none with the remainder.
                    roll = rng.random()
                    cumulative = np.cumsum(probs)
                    chosen = int(np.searchsorted(cumulative, roll))
                    if chosen < alts.size:
                        clicks.append(self._item_ids[int(alts[chosen])])
            if rng.random() < config.self_click_rate:
                clicks.append(self._item_ids[desired])
            rng.shuffle(clicks)
            sessions.append(
                Session(
                    session_id=session_id,
                    clicks=tuple(clicks),
                    purchase=self._item_ids[desired],
                )
            )
        return Clickstream(sessions)
