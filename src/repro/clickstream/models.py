"""Clickstream data model (paper Section 5.2).

E-commerce platforms record browsing history as a *clickstream*: events
(clicks and purchases) grouped by session.  Following the paper, we
assume only the minimal information available on most platforms — clicks
and purchases per session — and model a session as the set of items
clicked plus the (at most one) item purchased.  Sessions ending in a
purchase are the signal the Data Adaptation Engine consumes: the
purchased item is the *desired* item, and clicked items are the
alternatives the consumer considered.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..errors import ClickstreamFormatError

ItemId = Hashable


@dataclass(frozen=True)
class Session:
    """One browsing session.

    Attributes:
        session_id: opaque identifier.
        clicks: item ids clicked during the session, in click order.
            May include the purchased item; the adaptation engine ignores
            clicks on the purchased item itself.
        purchase: the single purchased item, or ``None`` for a browse-only
            session (the paper argues such sessions are not driven by an
            intention to buy and do not affect the model).
    """

    session_id: Hashable
    clicks: Tuple[ItemId, ...]
    purchase: Optional[ItemId] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "clicks", tuple(self.clicks))

    @property
    def has_purchase(self) -> bool:
        """Whether the session ended with a purchase."""
        return self.purchase is not None

    def alternatives(self) -> Tuple[ItemId, ...]:
        """Distinct clicked items other than the purchase, in click order.

        These are the items the paper's construction treats as considered
        alternatives to the desired (purchased) item.
        """
        seen = set()
        result = []
        for item in self.clicks:
            if item == self.purchase or item in seen:
                continue
            seen.add(item)
            result.append(item)
        return tuple(result)


class Clickstream:
    """A collection of sessions with summary accessors.

    Iterable and indexable; construction validates that session ids are
    unique so downstream joins are unambiguous.
    """

    def __init__(self, sessions: Iterable[Session]) -> None:
        self._sessions: List[Session] = list(sessions)
        ids = set()
        for session in self._sessions:
            if session.session_id in ids:
                raise ClickstreamFormatError(
                    f"duplicate session id {session.session_id!r}"
                )
            ids.add(session.session_id)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self._sessions)

    def __getitem__(self, index: int) -> Session:
        return self._sessions[index]

    @property
    def n_sessions(self) -> int:
        """Total number of sessions (with or without purchase)."""
        return len(self._sessions)

    @property
    def n_purchases(self) -> int:
        """Number of sessions ending with a purchase."""
        return sum(1 for s in self._sessions if s.has_purchase)

    def purchasing_sessions(self) -> "Clickstream":
        """The sub-stream of sessions that ended with a purchase."""
        return Clickstream(s for s in self._sessions if s.has_purchase)

    def items(self) -> List[ItemId]:
        """All distinct item ids appearing anywhere, in first-seen order."""
        seen: Dict[ItemId, None] = {}
        for session in self._sessions:
            for item in session.clicks:
                seen.setdefault(item, None)
            if session.purchase is not None:
                seen.setdefault(session.purchase, None)
        return list(seen)

    def purchase_counts(self) -> Counter:
        """Counter of purchases per item."""
        counts: Counter = Counter()
        for session in self._sessions:
            if session.purchase is not None:
                counts[session.purchase] += 1
        return counts

    def stats(self) -> Dict[str, int]:
        """Table 2-style summary: sessions, purchases, items."""
        return {
            "sessions": self.n_sessions,
            "purchases": self.n_purchases,
            "items": len(self.items()),
        }

    def extend(self, other: "Clickstream") -> "Clickstream":
        """Concatenate two clickstreams into a new one."""
        return Clickstream(list(self._sessions) + list(other._sessions))

    def __repr__(self) -> str:
        return (
            f"Clickstream(sessions={self.n_sessions}, "
            f"purchases={self.n_purchases})"
        )


def sessions_from_dicts(records: Iterable[dict]) -> Clickstream:
    """Build a clickstream from ``{"clicks": [...], "purchase": ...}`` dicts.

    Missing ``session_id`` fields are auto-numbered.  This is the format
    used by :func:`repro.examples_data.figure3_sessions`.
    """
    sessions = []
    for i, record in enumerate(records):
        if "clicks" not in record:
            raise ClickstreamFormatError(
                f"session record {i} lacks a 'clicks' field"
            )
        sessions.append(
            Session(
                session_id=record.get("session_id", i),
                clicks=tuple(record["clicks"]),
                purchase=record.get("purchase"),
            )
        )
    return Clickstream(sessions)
