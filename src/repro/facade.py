"""The unified solver entry point: :func:`repro.solve`.

The package grew one ``*_solve`` function per problem flavor (budget,
threshold, storage capacity, category quotas, revenue objective,
retain/exclude constraints), each with its own signature.  ``solve()``
is the single facade over all of them: one keyword-only signature, one
dispatch table, and one place where observability is wired in — every
call returns a :class:`~repro.core.result.SolveResult` with a
:class:`~repro.observability.Telemetry` payload attached to
``result.telemetry`` (stage timings always; per-iteration events when
a :class:`~repro.observability.SolverTrace` is passed).

Dispatch rules::

    solve(g, variant=v, k=10)                          -> greedy_solve
    solve(g, variant=v, threshold=0.9)                 -> greedy_threshold_solve
    solve(g, variant=v, k=10,
          constraints={"must_retain": [...],
                       "exclude": [...]})              -> constrained greedy
    solve(g, variant=v,
          constraints={"budget": 3.5, "costs": {...}}) -> capacity_greedy_solve
    solve(g, variant=v, k=10,
          constraints={"categories": {...},
                       "quotas": {...}})               -> quota_greedy_solve
    solve(g, variant=v, k=10,
          objective={"revenue": {...}})                -> revenue_greedy_solve

Exactly one of ``k`` / ``threshold`` / ``constraints["budget"]`` must
select the stopping rule; conflicting combinations raise
:class:`~repro.errors.SolverError` instead of silently preferring one.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from .core.context import solve_context_digest
from .core.csr import as_csr
from .core.greedy import greedy_solve
from .core.parallel import PARALLEL_BACKENDS
from .core.threshold import greedy_threshold_solve
from .core.variants import Variant
from .errors import SolverError, SolverInterrupted
from .observability import MetricsRegistry, SolverTrace, Telemetry, logs

_LOG = logs.get_logger("facade")

#: Constraint keys understood by :func:`solve`.
CONSTRAINT_KEYS = (
    "must_retain", "exclude", "budget", "costs", "categories", "quotas",
)

#: Objective keys understood by :func:`solve`.
OBJECTIVE_KEYS = ("revenue",)


def _check_mapping(name: str, value, allowed) -> dict:
    """Validate an option mapping and return a mutable copy."""
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise SolverError(
            f"{name} must be a mapping with keys from {allowed}, "
            f"got {type(value).__name__}"
        )
    unknown = set(value) - set(allowed)
    if unknown:
        raise SolverError(
            f"unknown {name} key(s) {sorted(unknown)}; expected a subset "
            f"of {allowed}"
        )
    return dict(value)


def solve(
    graph,
    *,
    variant: "Variant | str",
    k: Optional[int] = None,
    threshold: Optional[float] = None,
    strategy: str = "auto",
    constraints: Optional[Mapping] = None,
    objective: Optional[Mapping] = None,
    tracer: Optional[SolverTrace] = None,
    workers: Optional[int] = None,
    parallel_backend: str = "auto",
    kernels=None,
    checkpoint=None,
    guard=None,
    validated: bool = False,
):
    """Solve a Preference Cover problem through one unified entry point.

    Args:
        graph: ``PreferenceGraph`` or ``CSRGraph``.
        variant: ``"independent"`` / ``"normalized"`` / ``Variant``.
        k: retained-set size budget (maximization objective).
        threshold: cover target (complementary minimization).  Mutually
            exclusive with ``k``.
        strategy: greedy execution strategy (``auto`` / ``naive`` /
            ``lazy`` / ``accelerated``); forwarded to the solvers that
            support it.
        constraints: optional mapping with any of
            ``must_retain`` / ``exclude`` (item lists),
            ``budget`` + ``costs`` (storage knapsack), or
            ``categories`` + ``quotas`` (partition matroid).
        objective: optional mapping; ``{"revenue": revenues}`` switches
            the objective from cover to expected revenue.
        tracer: a :class:`~repro.observability.SolverTrace` for
            per-iteration events; ``None`` records stage timings only.
        workers: spread gain evaluation across this many worker
            processes.  Applies to naive-strategy ``k`` solves and to
            threshold solves; with ``strategy="auto"`` and ``workers > 1``
            the naive (parallelizable) strategy is selected.  Combining
            ``workers`` with an explicit incremental strategy
            (``lazy`` / ``accelerated``) raises :class:`SolverError`.
        parallel_backend: wire protocol for the worker pool — ``auto``
            (shared memory where available), ``shm``, ``pipe`` or
            ``serial``; see :class:`~repro.core.parallel.ParallelGainEvaluator`.
        kernels: arithmetic backend for the solver hot loops (``auto`` /
            ``numpy`` / ``numba`` or a
            :class:`~repro.core.kernels.KernelBackend`); ``None``
            consults the ``REPRO_KERNELS`` environment variable.
        checkpoint: a checkpoint directory (str/Path) or a
            :class:`~repro.resilience.Checkpointer`; the solve snapshots
            its greedy state periodically and resumes from the longest
            valid prefix on the next call.  Supported by plain ``k``
            and ``threshold`` solves (with or without ``workers``).
        guard: a :class:`~repro.resilience.RunGuard`; a crossed
            deadline or RSS ceiling stops the solve after the current
            round, either raising
            :class:`~repro.errors.SolverInterrupted` or returning the
            partial result flagged ``interrupted=True``, per the
            guard's ``on_trigger``.
        validated: the graph's invariants are checked before solving
            (raising :class:`~repro.errors.GraphValidationError` on
            violation).  Successful checks are memoized per graph
            object, so repeat solves over the same graph pay nothing;
            pass ``validated=True`` to skip the check entirely when the
            graph is known-valid — the fast path the serving refresh
            loop uses so a fresh snapshot does not cost an extra O(m)
            sweep.

    Returns:
        :class:`~repro.core.result.SolveResult` with
        ``result.telemetry`` attached and ``result.context_digest``
        stamped with the solve's full-context fingerprint.

    Raises:
        SolverError: conflicting or missing stopping rules
            (``k`` *and* ``threshold``, neither, or ``budget`` mixed
            with either), threshold runs with constraints, unknown
            constraint/objective keys, an unknown ``parallel_backend``
            (validated eagerly, even when no pool is built), an explicit
            ``strategy`` on a threshold solve with ``workers > 1``
            (which would otherwise be silently ignored), ``workers``
            combined with a dispatch target that cannot use a worker
            pool, or ``checkpoint``/``guard`` on a dispatch target
            that does not support resilience hooks (budget, revenue,
            quota solves).
    """
    variant = Variant.coerce(variant)
    graph = as_csr(graph)
    if not validated:
        graph.validate(variant)
    # Validate eagerly rather than deferring to ParallelGainEvaluator:
    # with workers unset (or <= 1) no pool is ever built, and a typo'd
    # backend would otherwise be accepted silently.
    if parallel_backend not in PARALLEL_BACKENDS:
        raise SolverError(
            f"unknown parallel backend {parallel_backend!r}; expected one "
            f"of {PARALLEL_BACKENDS}"
        )
    options = _check_mapping("constraints", constraints, CONSTRAINT_KEYS)
    goal = _check_mapping("objective", objective, OBJECTIVE_KEYS)

    metrics = tracer.metrics if tracer is not None else MetricsRegistry()
    telemetry = Telemetry(metrics=metrics, trace=tracer)
    context_digest = solve_context_digest(
        graph, variant,
        k=k, threshold=threshold,
        constraints=dict(constraints) if constraints else None,
        objective=dict(goal) if goal else None,
    )

    must_retain = options.pop("must_retain", None)
    exclude = options.pop("exclude", None)
    budget = options.pop("budget", None)
    costs = options.pop("costs", None)
    categories = options.pop("categories", None)
    quotas = options.pop("quotas", None)
    revenues = goal.pop("revenue", None)

    if k is not None and threshold is not None:
        raise SolverError(
            "k and threshold are mutually exclusive: k bounds the "
            "retained-set size (maximization) while threshold sets a "
            "cover target (minimization); provide exactly one"
        )
    if (budget is None) != (costs is None):
        raise SolverError(
            "the capacity constraint needs both 'budget' and 'costs'"
        )
    if (categories is None) != (quotas is None):
        raise SolverError(
            "the quota constraint needs both 'categories' and 'quotas'"
        )
    if budget is not None and (k is not None or threshold is not None):
        raise SolverError(
            "the storage budget replaces k/threshold; provide only "
            "constraints={'budget': ..., 'costs': ...}"
        )
    if budget is None and k is None and threshold is None:
        raise SolverError(
            "provide a stopping rule: k, threshold, or "
            "constraints={'budget': ..., 'costs': ...}"
        )
    if threshold is not None and (
        must_retain is not None or exclude is not None
        or categories is not None or revenues is not None
    ):
        raise SolverError(
            "threshold solves support no constraints or alternative "
            "objectives; use k instead"
        )
    if revenues is not None and (categories is not None or budget is not None):
        raise SolverError(
            "the revenue objective composes only with k and "
            "must_retain/exclude-free runs for now"
        )

    if (checkpoint is not None or guard is not None) and (
        budget is not None or revenues is not None or categories is not None
    ):
        raise SolverError(
            "checkpoint/guard apply only to plain k and threshold "
            "solves; the budget/revenue/quota solvers do not support "
            "resilience hooks"
        )

    want_pool = workers is not None and workers > 1
    if want_pool:
        if budget is not None or revenues is not None or categories is not None:
            raise SolverError(
                "workers applies only to plain k solves "
                "(strategy='naive') and threshold solves"
            )
        if threshold is None:
            if strategy == "auto":
                strategy = "naive"  # the parallelizable strategy
            elif strategy != "naive":
                raise SolverError(
                    f"workers={workers} requires strategy='naive' (the "
                    f"lazy/accelerated strategies are inherently "
                    f"sequential), got strategy={strategy!r}"
                )
        elif strategy != "auto":
            raise SolverError(
                f"threshold solves with workers={workers} always use the "
                f"parallel naive recomputation rule; strategy="
                f"{strategy!r} would be ignored — drop it or use "
                f"strategy='auto'"
            )

    def make_pool():
        from .core.parallel import ParallelGainEvaluator

        return ParallelGainEvaluator(
            graph, variant, n_workers=workers, backend=parallel_backend,
            tracer=tracer, kernels=kernels,
        )

    # Correlation: a solve inside an active span (e.g. a serving
    # refresh) joins that trace; a bare library call opens its own only
    # when structured logging is on, so the default path stays silent.
    trace_scope = (
        logs.span("facade")
        if (logs.logging_enabled() or logs.current_trace() is not None)
        else None
    )
    if trace_scope is not None:
        trace_scope.__enter__()
        _LOG.event(
            "solve_start",
            variant=variant.value,
            k=k, threshold=threshold, strategy=strategy,
            n_items=graph.n_items,
            context_digest=context_digest[:12],
        )
    try:
        with metrics.time("facade.solve"):
            if budget is not None:
                from .extensions.capacity import capacity_greedy_solve

                result = capacity_greedy_solve(
                    graph, budget=budget, variant=variant, costs=costs,
                    tracer=tracer,
                )
            elif threshold is not None:
                if want_pool:
                    with make_pool() as pool:
                        result = greedy_threshold_solve(
                            graph, threshold=threshold, variant=variant,
                            tracer=tracer, kernels=kernels, parallel=pool,
                            checkpoint=checkpoint, guard=guard,
                        )
                else:
                    result = greedy_threshold_solve(
                        graph, threshold=threshold, variant=variant,
                        tracer=tracer, kernels=kernels,
                        checkpoint=checkpoint, guard=guard,
                    )
            elif revenues is not None:
                from .extensions.revenue import revenue_greedy_solve

                result = revenue_greedy_solve(
                    graph, k=k, variant=variant, revenues=revenues,
                    strategy=strategy, tracer=tracer,
                )
            elif categories is not None:
                from .extensions.quotas import quota_greedy_solve

                if must_retain is not None or exclude is not None:
                    raise SolverError(
                        "quota constraints do not compose with "
                        "must_retain/exclude yet"
                    )
                result = quota_greedy_solve(
                    graph, variant=variant, categories=categories,
                    quotas=quotas, k=k, tracer=tracer,
                )
            elif want_pool:
                with make_pool() as pool:
                    result = greedy_solve(
                        graph, k=k, variant=variant, strategy=strategy,
                        must_retain=must_retain, exclude=exclude,
                        tracer=tracer, kernels=kernels, parallel=pool,
                        checkpoint=checkpoint, guard=guard,
                    )
            else:
                result = greedy_solve(
                    graph, k=k, variant=variant, strategy=strategy,
                    must_retain=must_retain, exclude=exclude, tracer=tracer,
                    kernels=kernels, checkpoint=checkpoint, guard=guard,
                )
    except SolverInterrupted as exc:
        # The guard tripped with on_trigger="raise": attach telemetry to
        # the partial result so the caller loses nothing but the tail.
        metrics.incr("facade.interrupted")
        if trace_scope is not None:
            _LOG.warning("solve_end", outcome="interrupted")
            trace_scope.__exit__(None, None, None)
        if exc.partial is not None:
            exc.partial = dataclasses.replace(
                exc.partial, telemetry=telemetry,
                context_digest=context_digest,
            )
        raise
    except BaseException:
        if trace_scope is not None:
            _LOG.error("solve_end", outcome="failed")
            trace_scope.__exit__(None, None, None)
        raise

    metrics.incr("facade.calls")
    metrics.incr(f"facade.dispatch.{result.strategy}")
    if result.interrupted:
        metrics.incr("facade.interrupted")
    if trace_scope is not None:
        _LOG.event(
            "solve_end",
            outcome="interrupted" if result.interrupted else "solved",
            strategy=result.strategy,
            cover=round(float(result.cover), 6),
            retained=len(result.retained),
        )
        trace_scope.__exit__(None, None, None)
    return dataclasses.replace(
        result, telemetry=telemetry, context_digest=context_digest
    )
