"""repro — Preference Cover: inventory reduction via maximal coverage.

A complete reproduction of "Inventory Reduction via Maximal Coverage in
E-Commerce" (EDBT 2020): the preference-graph model, the Independent and
Normalized Preference Cover problems, the scalable greedy solver with its
approximation guarantees, the clickstream-to-graph Data Adaptation
Engine, baselines, reductions, evaluation tooling and the end-to-end
inventory-reduction pipeline.

Quickstart::

    from repro import PreferenceGraph, greedy_solve

    graph = PreferenceGraph.from_weights(
        {"A": 0.33, "B": 0.22, "C": 0.22, "D": 0.06, "E": 0.17},
        edges=[("A", "B", 2/3), ("A", "C", 1/3), ("B", "C", 1.0),
               ("C", "B", 1.0), ("E", "D", 0.9)],
    )
    result = greedy_solve(graph, k=2, variant="normalized")
    print(result.retained, result.cover)   # ['B', 'D'] 0.873
"""

from .core import (
    CSRGraph,
    GreedyState,
    INDEPENDENT,
    KernelBackend,
    NORMALIZED,
    ParallelGainEvaluator,
    PreferenceGraph,
    SolveResult,
    Variant,
    as_csr,
    available_backends,
    get_kernels,
    brute_force_solve,
    cover,
    coverage_vector,
    greedy_order,
    greedy_solve,
    greedy_threshold_solve,
    item_coverage,
    random_solve,
    top_k_coverage_solve,
    top_k_coverage_threshold,
    top_k_weight_solve,
    top_k_weight_threshold,
)
from .adaptation import (
    DataAdaptationEngine,
    build_preference_graph,
    recommend_variant,
)
from .clickstream import Clickstream, ConsumerModel, Session, ShopperConfig
from .errors import (
    AdaptationError,
    ClickstreamFormatError,
    GraphValidationError,
    ReproError,
    ServingError,
    SolverError,
    UnknownItemError,
    VariantError,
)
from .facade import solve
from .observability import (
    MetricsRegistry,
    NullTracer,
    SolverTrace,
    Telemetry,
)
from .pipeline import InventoryReducer, RetainedInventoryReport
from .serving import (
    AssortmentService,
    ServingFrontend,
    SolutionSnapshot,
    SolutionStore,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptationError",
    "AssortmentService",
    "Clickstream",
    "ConsumerModel",
    "DataAdaptationEngine",
    "InventoryReducer",
    "RetainedInventoryReport",
    "Session",
    "ShopperConfig",
    "build_preference_graph",
    "recommend_variant",
    "CSRGraph",
    "ClickstreamFormatError",
    "GraphValidationError",
    "GreedyState",
    "INDEPENDENT",
    "KernelBackend",
    "MetricsRegistry",
    "NORMALIZED",
    "NullTracer",
    "ParallelGainEvaluator",
    "PreferenceGraph",
    "ReproError",
    "ServingError",
    "ServingFrontend",
    "SolutionSnapshot",
    "SolutionStore",
    "SolveResult",
    "SolverError",
    "SolverTrace",
    "Telemetry",
    "UnknownItemError",
    "Variant",
    "VariantError",
    "as_csr",
    "available_backends",
    "brute_force_solve",
    "cover",
    "coverage_vector",
    "get_kernels",
    "greedy_order",
    "greedy_solve",
    "greedy_threshold_solve",
    "item_coverage",
    "random_solve",
    "solve",
    "top_k_coverage_solve",
    "top_k_coverage_threshold",
    "top_k_weight_solve",
    "top_k_weight_threshold",
    "__version__",
]
