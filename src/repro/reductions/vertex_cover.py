"""Max Vertex Cover (``VC_k``) and its equivalence to ``NPC_k``.

Theorem 3.1 of the paper proves the Normalized Preference Cover problem
and Max Vertex Cover are equivalent under approximation-preserving
reductions.  This module makes both directions executable:

* :func:`npc_to_vc` — given a preference graph, build the ``VC_k``
  instance of the forward reduction: complete each node's outgoing
  weight to one with a self-loop, drop edge orientation, and multiply
  each edge weight by its origin's node weight.  For every node set
  ``S``, ``vc_cover_weight(instance, S) == C(S)`` exactly.
* :func:`vc_to_npc` — the reverse reduction: orient edges arbitrarily,
  set each node's weight to its outgoing edge mass (self-loops
  contribute only node weight — the "uncoverable" share), normalize.
  The cover of any ``S`` in the resulting NPC instance is the VC cover
  weight divided by the total edge mass.

A direct greedy ``VC_k`` solver (:func:`greedy_vertex_cover`) is
included both as a standalone baseline and to validate that reducing and
solving picks the same nodes as solving ``NPC_k`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

import numpy as np

from ..core.csr import as_csr
from ..core.graph import PreferenceGraph
from ..errors import GraphValidationError, SolverError


@dataclass(frozen=True)
class MaxVertexCoverInstance:
    """An undirected, edge-weighted multigraph (self-loops allowed).

    ``edges`` holds ``(u, v, weight)`` triples over nodes ``0..n-1``;
    ``u == v`` encodes a self-loop.  Parallel edges are kept separate —
    as the paper notes, combining them is equivalent for ``VC_k`` but
    keeping them separate preserves the bookkeeping of the reduction.
    """

    n: int
    edges: Tuple[Tuple[int, int, float], ...]

    def __post_init__(self) -> None:
        for u, v, w in self.edges:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise GraphValidationError(
                    f"edge ({u}, {v}) endpoint out of range [0, {self.n})"
                )
            if w < 0:
                raise GraphValidationError(
                    f"edge ({u}, {v}) has negative weight {w}"
                )

    def total_weight(self) -> float:
        """Sum of all edge weights (the maximum achievable cover)."""
        return float(sum(w for _u, _v, w in self.edges))


def vc_cover_weight(
    instance: MaxVertexCoverInstance, selected: Iterable[int]
) -> float:
    """Weight of edges incident to ``selected`` (each edge counted once)."""
    chosen = set(int(v) for v in selected)
    return float(
        sum(
            w
            for u, v, w in instance.edges
            if u in chosen or v in chosen
        )
    )


def greedy_vertex_cover(
    instance: MaxVertexCoverInstance, k: int
) -> Tuple[List[int], float]:
    """Greedy ``VC_k``: repeatedly take the node covering most new weight.

    This is the algorithm of Hochbaum analyzed by Feige & Langberg to a
    ``max(1 - 1/e, 1 - (1 - k/n)^2)`` factor (paper Table 1).  Returns
    the selected nodes in order and the covered weight.
    """
    if k < 0 or k > instance.n:
        raise SolverError(f"k={k} out of range [0, {instance.n}]")
    # Incident edge lists.
    incident: List[List[int]] = [[] for _ in range(instance.n)]
    for edge_index, (u, v, _w) in enumerate(instance.edges):
        incident[u].append(edge_index)
        if v != u:
            incident[v].append(edge_index)

    covered = np.zeros(len(instance.edges), dtype=bool)
    weights = np.asarray([w for _u, _v, w in instance.edges])
    gains = np.zeros(instance.n, dtype=np.float64)
    for node in range(instance.n):
        gains[node] = float(weights[incident[node]].sum())
    selected: List[int] = []
    in_set = np.zeros(instance.n, dtype=bool)
    total = 0.0
    for _ in range(k):
        gains_masked = np.where(in_set, -np.inf, gains)
        best = int(np.argmax(gains_masked))
        selected.append(best)
        in_set[best] = True
        total += float(gains_masked[best])
        for edge_index in incident[best]:
            if covered[edge_index]:
                continue
            covered[edge_index] = True
            u, v, w = instance.edges[edge_index]
            for endpoint in {u, v}:
                if not in_set[endpoint]:
                    gains[endpoint] -= w
        gains[best] = 0.0
    return selected, total


# ----------------------------------------------------------------------
# Reductions (Theorem 3.1)
# ----------------------------------------------------------------------
def npc_to_vc(graph) -> Tuple[MaxVertexCoverInstance, List[Hashable]]:
    """Forward reduction ``NPC_k -> VC_k``.

    Returns the instance and the item table mapping instance node ``i``
    back to the preference graph's item.  The instance satisfies, for
    every ``S``: ``vc_cover_weight(instance, S) == C(S)`` (Normalized
    cover), which the tests verify over random sets.
    """
    csr = as_csr(graph)
    n = csr.n_items
    edges: List[Tuple[int, int, float]] = []
    out_sums = np.zeros(n, dtype=np.float64)
    for v in range(n):
        targets, weights = csr.out_edges(v)
        node_weight = float(csr.node_weight[v])
        for u, w in zip(targets.tolist(), weights.tolist()):
            edges.append((v, int(u), node_weight * float(w)))
        out_sums[v] = float(weights.sum())
        if out_sums[v] > 1.0 + 1e-9:
            raise GraphValidationError(
                f"node {csr.items[v]!r} has out-weight sum "
                f"{out_sums[v]:.9f} > 1: not a Normalized instance"
            )
        residual = max(0.0, 1.0 - out_sums[v])
        if residual > 0.0:
            # Self-loop completing the outgoing weight to 1: the share of
            # requests for v that no alternative can cover.
            edges.append((v, v, node_weight * residual))
    return MaxVertexCoverInstance(n=n, edges=tuple(edges)), list(csr.items)


def vc_to_npc(
    instance: MaxVertexCoverInstance,
) -> Tuple[PreferenceGraph, float]:
    """Reverse reduction ``VC_k -> NPC_k``.

    Orients each non-loop edge from its first endpoint, assigns each
    node weight equal to its outgoing edge mass (self-loops included),
    normalizes node weights to sum to one, and scales edge weights by
    the origin mass.  Returns ``(graph, total_mass)`` such that for any
    set ``S``::

        cover(graph, S, "normalized") == vc_cover_weight(instance, S) / total_mass

    Nodes with no incident outgoing mass get weight zero.
    """
    out_mass = np.zeros(instance.n, dtype=np.float64)
    for u, _v, w in instance.edges:
        out_mass[u] += w
    total_mass = float(out_mass.sum())
    if total_mass <= 0.0:
        raise GraphValidationError(
            "VC instance has no positive edge weight; reduction undefined"
        )

    graph = PreferenceGraph()
    for node in range(instance.n):
        graph.add_item(node, out_mass[node] / total_mass)
    # Accumulate parallel (same-direction) edges before insertion, since
    # PreferenceGraph stores one weight per ordered pair.
    combined: Dict[Tuple[int, int], float] = {}
    for u, v, w in instance.edges:
        if u == v or w == 0.0:
            continue  # loops become pure node weight
        combined[(u, v)] = combined.get((u, v), 0.0) + w / out_mass[u]
    for (u, v), weight in combined.items():
        graph.add_edge(u, v, min(1.0, weight))
    return graph, total_mass
