"""Exact ``NPC_k`` solving by mixed-integer programming.

Brute-force enumeration dies around n = 20–30 (Figure 4b).  Because the
Normalized cover is *linear* given the retained indicator vector (via
the Theorem 3.1 reduction to Max Vertex Cover), the exact optimum is
also the solution of a small MILP:

    maximize    sum_e w_e z_e
    subject to  z_e <= x_u + x_v     (z_e <= x_v for self-loops)
                z_e <= 1,  0 <= z
                sum_v x_v = k,   x binary

With binary ``x`` the optimal ``z_e = min(1, x_u + x_v)`` is automatic,
so ``z`` needs no integrality.  Solved with HiGHS branch-and-bound
through :func:`scipy.optimize.milp`, this pushes exact optima to
hundreds of items — used by the tests as a stronger optimality oracle
than brute force.  (The Independent variant's objective is genuinely
nonlinear in ``x``; no MILP formulation of this shape exists for it,
which is itself a finding the reduction makes precise.)
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .._compat import keyword_only_shim
from ..core.cover import coverage_vector
from ..core.csr import as_csr
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import SolverError
from .vertex_cover import MaxVertexCoverInstance, npc_to_vc


def milp_solve_vc(
    instance: MaxVertexCoverInstance,
    k: int,
    *,
    time_limit: Optional[float] = None,
) -> tuple:
    """Exact ``VC_k`` via MILP; returns ``(selected_nodes, cover_weight)``."""
    n = instance.n
    m = len(instance.edges)
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")
    if m == 0:
        return list(range(k)), 0.0

    weights = np.asarray([w for _u, _v, w in instance.edges])
    c = np.concatenate([np.zeros(n), -weights])

    rows, cols, data = [], [], []
    for e, (u, v, _w) in enumerate(instance.edges):
        rows.append(e)
        cols.append(n + e)
        data.append(1.0)
        rows.append(e)
        cols.append(u)
        data.append(-1.0)
        if v != u:
            rows.append(e)
            cols.append(v)
            data.append(-1.0)
    edge_matrix = sparse.csr_matrix((data, (rows, cols)), shape=(m, n + m))
    edge_constraint = LinearConstraint(
        edge_matrix, -np.inf * np.ones(m), np.zeros(m)
    )
    cardinality_matrix = sparse.csr_matrix(
        (np.ones(n), (np.zeros(n, dtype=int), np.arange(n))),
        shape=(1, n + m),
    )
    cardinality = LinearConstraint(cardinality_matrix, [k], [k])

    integrality = np.concatenate([np.ones(n), np.zeros(m)])
    bounds = Bounds(np.zeros(n + m), np.ones(n + m))
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c,
        constraints=[edge_constraint, cardinality],
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if result.status not in (0,):  # 0 = optimal
        raise SolverError(f"MILP did not reach optimality: {result.message}")
    x = result.x[:n]
    selected = np.flatnonzero(x > 0.5)
    # Numerical safety: enforce exactly k.
    if selected.size != k:
        order = np.argsort(-x, kind="stable")
        selected = np.sort(order[:k])
    from .vertex_cover import vc_cover_weight

    return selected.tolist(), vc_cover_weight(instance, selected)


@keyword_only_shim("k")
def milp_solve_npc(
    graph,
    *,
    k: int,
    time_limit: Optional[float] = None,
) -> SolveResult:
    """Exact Normalized Preference Cover via the VC reduction + MILP."""
    csr = as_csr(graph)
    start = time.perf_counter()
    instance, items = npc_to_vc(csr)
    selected, _value = milp_solve_vc(instance, k, time_limit=time_limit)
    elapsed = time.perf_counter() - start
    indices = np.asarray(selected, dtype=np.int64)
    coverage = coverage_vector(csr, indices, Variant.NORMALIZED)
    return SolveResult(
        variant=Variant.NORMALIZED,
        k=k,
        retained=[items[i] for i in selected],
        retained_indices=indices,
        cover=float(coverage.sum()),
        coverage=coverage,
        item_ids=csr.items,
        prefix_covers=None,
        strategy="milp-exact",
        wall_time_s=elapsed,
    )
