"""LP relaxation + pipage rounding for Max Vertex Cover (``VC_k``).

Section 3.2 of the paper surveys the algorithms with better worst-case
factors than the greedy — all LP/SDP based — and dismisses them for
scale ("impractical running time, even for medium sized programs").
This module implements the classic LP route so that claim can be
*measured* rather than cited: the Ageev–Sviridenko linear relaxation

    maximize    sum_e w_e z_e
    subject to  z_e <= x_u + x_v          for every edge e = {u, v}
                z_e <= x_v                for every self-loop e = (v, v)
                sum_v x_v  = k
                0 <= x, z <= 1

followed by **pipage rounding**: the smoothed objective
``F(x) = sum_e w_e (1 - (1 - x_u)(1 - x_v))`` satisfies
``F(x) >= (3/4) * LP(x)`` and is convex along any direction that raises
one fractional coordinate while lowering another, so repeatedly moving
to the better endpoint produces an integral solution with
``F(x_int) >= F(x*) >= (3/4) * OPT`` — the 0.75 guarantee of [2].

Solved with :func:`scipy.optimize.linprog` (HiGHS).  Through the
Theorem 3.1 reduction this yields an LP-based solver for ``NPC_k``,
used by the ablation benchmark to show the runtime gap to the greedy.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .._compat import keyword_only_shim
from ..core.cover import coverage_vector
from ..core.csr import as_csr
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import SolverError
from .vertex_cover import MaxVertexCoverInstance, npc_to_vc, vc_cover_weight

#: The Ageev–Sviridenko guarantee.
LP_ROUNDING_FACTOR = 0.75


def solve_vc_lp(
    instance: MaxVertexCoverInstance, k: int
) -> Tuple[np.ndarray, float]:
    """Solve the LP relaxation; returns ``(x_fractional, lp_value)``.

    ``lp_value`` upper-bounds the integral optimum, which the tests use
    as a certificate.
    """
    n = instance.n
    m = len(instance.edges)
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")
    if m == 0:
        return np.zeros(n), 0.0

    weights = np.asarray([w for _u, _v, w in instance.edges])
    # Variables: x_0..x_{n-1}, z_0..z_{m-1}.  Objective: maximize w·z.
    c = np.concatenate([np.zeros(n), -weights])

    # z_e - x_u - x_v <= 0 (self-loop: z_e - x_v <= 0).
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for e, (u, v, _w) in enumerate(instance.edges):
        rows.append(e)
        cols.append(n + e)
        data.append(1.0)
        rows.append(e)
        cols.append(u)
        data.append(-1.0)
        if v != u:
            rows.append(e)
            cols.append(v)
            data.append(-1.0)
    a_ub = sparse.csr_matrix(
        (data, (rows, cols)), shape=(m, n + m)
    )
    b_ub = np.zeros(m)

    # sum x = k.
    a_eq = sparse.csr_matrix(
        (np.ones(n), (np.zeros(n, dtype=int), np.arange(n))),
        shape=(1, n + m),
    )
    b_eq = np.asarray([float(k)])

    result = linprog(
        c,
        A_ub=a_ub, b_ub=b_ub,
        A_eq=a_eq, b_eq=b_eq,
        bounds=[(0.0, 1.0)] * (n + m),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP solver failed: {result.message}")
    x = np.clip(result.x[:n], 0.0, 1.0)
    return x, float(-result.fun)


def smoothed_objective(
    instance: MaxVertexCoverInstance, x: np.ndarray
) -> float:
    """``F(x) = sum_e w_e (1 - (1 - x_u)(1 - x_v))`` (loops: ``w_e x_v``)."""
    total = 0.0
    for u, v, w in instance.edges:
        if u == v:
            total += w * x[u]
        else:
            total += w * (1.0 - (1.0 - x[u]) * (1.0 - x[v]))
    return float(total)


def pipage_round(
    instance: MaxVertexCoverInstance, x: np.ndarray, k: int,
    *,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Round a fractional LP solution to an integral one, de-randomized.

    Repeatedly picks two fractional coordinates and shifts mass between
    them (keeping the sum at ``k``) toward whichever endpoint does not
    decrease the smoothed objective ``F``; convexity of ``F`` along the
    shift direction guarantees one endpoint is at least as good.
    Returns a 0/1 vector with exactly ``k`` ones.
    """
    x = np.clip(np.asarray(x, dtype=np.float64).copy(), 0.0, 1.0)
    while True:
        fractional = np.flatnonzero(
            (x > tolerance) & (x < 1.0 - tolerance)
        )
        if fractional.size == 0:
            break
        if fractional.size == 1:
            # Total mass is integral, so a single fractional coordinate
            # can only be numerical noise: snap it.
            x[fractional[0]] = round(x[fractional[0]])
            break
        u, v = int(fractional[0]), int(fractional[1])
        # Feasible shift range for x_u += t, x_v -= t.
        t_up = min(1.0 - x[u], x[v])       # push u toward 1
        t_down = min(x[u], 1.0 - x[v])     # push u toward 0
        candidate_up = x.copy()
        candidate_up[u] += t_up
        candidate_up[v] -= t_up
        candidate_down = x.copy()
        candidate_down[u] -= t_down
        candidate_down[v] += t_down
        if (
            smoothed_objective(instance, candidate_up)
            >= smoothed_objective(instance, candidate_down)
        ):
            x = candidate_up
        else:
            x = candidate_down
        x = np.clip(x, 0.0, 1.0)

    selected = np.flatnonzero(x > 0.5)
    # Guard against accumulated drift: enforce exactly k selections.
    if selected.size != k:
        order = np.argsort(-x, kind="stable")
        x = np.zeros_like(x)
        x[order[:k]] = 1.0
        selected = order[:k]
    result = np.zeros(instance.n, dtype=np.float64)
    result[selected] = 1.0
    return result


def lp_round_vc(
    instance: MaxVertexCoverInstance, k: int
) -> Tuple[List[int], float, float]:
    """Full LP + pipage pipeline for ``VC_k``.

    Returns ``(selected_nodes, cover_weight, lp_upper_bound)``; the
    cover weight is guaranteed ``>= 0.75 * lp_upper_bound >= 0.75 * OPT``.
    """
    x_fractional, lp_value = solve_vc_lp(instance, k)
    x_integral = pipage_round(instance, x_fractional, k)
    selected = np.flatnonzero(x_integral > 0.5).tolist()
    return selected, vc_cover_weight(instance, selected), lp_value


@keyword_only_shim("k", "variant")
def lp_round_solve(
    graph, *, k: int, variant: "Variant | str" = Variant.NORMALIZED
) -> SolveResult:
    """LP-based ``NPC_k`` solver via the Theorem 3.1 reduction.

    Only the Normalized variant reduces to ``VC_k`` (Theorem 3.1), so
    this solver rejects the Independent variant.
    """
    variant = Variant.coerce(variant)
    if variant is not Variant.NORMALIZED:
        raise SolverError(
            "the LP/VC route applies to the Normalized variant only "
            "(Theorem 3.1)"
        )
    csr = as_csr(graph)
    start = time.perf_counter()
    instance, items = npc_to_vc(csr)
    selected, value, _lp_bound = lp_round_vc(instance, k)
    elapsed = time.perf_counter() - start
    indices = np.asarray(selected, dtype=np.int64)
    coverage = coverage_vector(csr, indices, variant)
    return SolveResult(
        variant=variant,
        k=k,
        retained=[items[i] for i in selected],
        retained_indices=indices,
        cover=float(coverage.sum()),
        coverage=coverage,
        item_ids=csr.items,
        prefix_covers=None,
        strategy="lp-pipage",
        wall_time_s=elapsed,
    )
