"""Directed Max Dominating Set (``DS_k``) and its reduction to ``IPC_k``.

Theorem 4.1 of the paper proves the ``(1 - 1/e)`` inapproximability of
the Independent Preference Cover problem by reducing ``DS_k``
(Definition 2.7) to it: reverse all edge orientations, give every edge
weight one and every node weight ``1/n``.  For every node set ``S`` the
number of vertices dominated in the original graph is then exactly
``n * C(S)``.  This module implements the problem, a greedy solver, and
the executable reduction, so the equivalence is verified rather than
merely cited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

import numpy as np

from ..core.graph import PreferenceGraph
from ..errors import GraphValidationError, SolverError


@dataclass(frozen=True)
class DirectedGraphInstance:
    """A plain directed graph over nodes ``0..n-1`` (no weights)."""

    n: int
    edges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise GraphValidationError(
                    f"edge ({u}, {v}) endpoint out of range [0, {self.n})"
                )


def dominated_count(
    graph: DirectedGraphInstance, selected: Iterable[int]
) -> int:
    """Number of vertices dominated by ``selected``.

    A vertex is dominated if it is in the set or has an incoming edge
    from the set (footnote 3 in the paper).
    """
    chosen: Set[int] = set(int(v) for v in selected)
    dominated = set(chosen)
    for u, v in graph.edges:
        if u in chosen:
            dominated.add(v)
    return len(dominated)


def greedy_dominating_set(
    graph: DirectedGraphInstance, k: int
) -> Tuple[List[int], int]:
    """Greedy ``DS_k``: take the node dominating most new vertices.

    The domination count is monotone submodular, so this is a
    ``(1 - 1/e)`` approximation — and by Theorem 2.9 that factor is the
    best possible in polynomial time.
    """
    if k < 0 or k > graph.n:
        raise SolverError(f"k={k} out of range [0, {graph.n}]")
    out_neighbors: List[List[int]] = [[] for _ in range(graph.n)]
    for u, v in graph.edges:
        out_neighbors[u].append(v)

    dominated = np.zeros(graph.n, dtype=bool)
    in_set = np.zeros(graph.n, dtype=bool)
    selected: List[int] = []
    for _ in range(k):
        best = -1
        best_gain = -1
        for node in range(graph.n):
            if in_set[node]:
                continue
            gain = 0 if dominated[node] else 1
            for neighbor in out_neighbors[node]:
                if not dominated[neighbor] and neighbor != node:
                    gain += 1
            if gain > best_gain:
                best_gain = gain
                best = node
        selected.append(best)
        in_set[best] = True
        dominated[best] = True
        for neighbor in out_neighbors[best]:
            dominated[neighbor] = True
    return selected, int(dominated.sum())


def ds_to_ipc(graph: DirectedGraphInstance) -> PreferenceGraph:
    """The Theorem 4.1 reduction ``DS_k -> IPC_k``.

    Edges reversed, every edge weight 1, every node weight ``1/n``.
    Parallel duplicate edges in the input collapse (domination is not
    multiplicity-sensitive).  For any set ``S``::

        dominated_count(graph, S) == round(n * cover(reduced, S, "independent"))
    """
    if graph.n == 0:
        raise GraphValidationError("empty graph")
    reduced = PreferenceGraph()
    for node in range(graph.n):
        reduced.add_item(node, 1.0 / graph.n)
    seen = set()
    for u, v in graph.edges:
        if u == v or (v, u) in seen:
            continue
        seen.add((v, u))
        reduced.add_edge(v, u, 1.0)
    return reduced
