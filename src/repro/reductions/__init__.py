"""Executable reductions and bounds: Theorems 3.1, 4.1 and Table 1."""

from .bounds import (
    GREEDY_CROSSOVER,
    ONE_MINUS_INV_E,
    Table1Row,
    best_known_ratio,
    greedy_ratio_bound,
    table1_rows,
)
from .exact_milp import milp_solve_npc, milp_solve_vc
from .lp_rounding import (
    LP_ROUNDING_FACTOR,
    lp_round_solve,
    lp_round_vc,
    pipage_round,
    solve_vc_lp,
)
from .dominating_set import (
    DirectedGraphInstance,
    dominated_count,
    ds_to_ipc,
    greedy_dominating_set,
)
from .vertex_cover import (
    MaxVertexCoverInstance,
    greedy_vertex_cover,
    npc_to_vc,
    vc_cover_weight,
    vc_to_npc,
)

__all__ = [
    "DirectedGraphInstance",
    "GREEDY_CROSSOVER",
    "LP_ROUNDING_FACTOR",
    "milp_solve_npc",
    "milp_solve_vc",
    "lp_round_solve",
    "lp_round_vc",
    "pipage_round",
    "solve_vc_lp",
    "MaxVertexCoverInstance",
    "ONE_MINUS_INV_E",
    "Table1Row",
    "best_known_ratio",
    "dominated_count",
    "ds_to_ipc",
    "greedy_dominating_set",
    "greedy_ratio_bound",
    "greedy_vertex_cover",
    "npc_to_vc",
    "table1_rows",
    "vc_cover_weight",
    "vc_to_npc",
]
