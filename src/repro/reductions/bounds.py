"""Approximation-ratio formulas of the paper's Table 1.

Table 1 lists, per range of ``k/n``, the greedy algorithm's guarantee
for ``VC_k`` (and hence, by Theorem 3.1, for ``NPC_k``) next to the best
known polynomial algorithm (SDP/LP based, impractical at scale).  These
functions make the table executable: the Table 1 benchmark regenerates
it and additionally measures the greedy's *empirical* ratio against
brute force, which the paper observes is far closer to one than the
worst-case bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import SolverError

#: The ubiquitous (1 - 1/e) constant.
ONE_MINUS_INV_E = 1.0 - 1.0 / math.e

#: k/n value where 1 - (1 - k/n)^2 overtakes 1 - 1/e
#: (solves (1 - x)^2 = 1/e).
GREEDY_CROSSOVER = 1.0 - 1.0 / math.sqrt(math.e)


def greedy_ratio_bound(k: int, n: int) -> float:
    """Greedy worst-case guarantee: ``max(1 - 1/e, 1 - (1 - k/n)^2)``.

    The first term is the generic submodular bound (Lemma 2.6; tight for
    ``IPC_k`` by Theorem 4.1), the second is Feige & Langberg's
    ``VC_k``-specific bound that dominates for ``k/n >~ 0.39``.
    """
    if n <= 0:
        raise SolverError(f"n must be positive, got {n}")
    if not (0 <= k <= n):
        raise SolverError(f"k={k} out of range [0, {n}]")
    fraction = k / n
    return max(ONE_MINUS_INV_E, 1.0 - (1.0 - fraction) ** 2)


def best_known_ratio(k: int, n: int) -> tuple:
    """Best known polynomial approximation for ``VC_k`` at this ``k/n``.

    Returns ``(ratio, method)`` per Table 1: SDP-based ratios up to
    ``k/n ~ 0.74``, beyond which the greedy bound itself is the best
    known.  These are the values the paper cites from [11], [17], [19].
    """
    if n <= 0:
        raise SolverError(f"n must be positive, got {n}")
    fraction = k / n
    greedy = greedy_ratio_bound(k, n)
    if fraction < 0.39:
        return max(0.92, greedy), "SDP [19]"
    if fraction < 0.72:
        return max(0.92, greedy), "SDP [19]"
    if fraction < 0.74:
        return max(0.93, greedy), "SDP [17]"
    return greedy, "greedy [11]"


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table 1."""

    k_over_n: str
    greedy_bound: str
    best_known: str
    method: str


def table1_rows() -> List[Table1Row]:
    """The paper's Table 1, regenerated from the formulas above."""
    inv_e = f"1 - 1/e = {ONE_MINUS_INV_E:.4f}"
    quad = "1 - (1 - k/n)^2"
    return [
        Table1Row("o(1)", inv_e, "0.75 + eps", "SDP [11]"),
        Table1Row(f"[0, ~{GREEDY_CROSSOVER:.2f})", inv_e, "0.92", "SDP [19]"),
        Table1Row(f"(~{GREEDY_CROSSOVER:.2f}, ~0.72)", quad, "0.92",
                  "SDP [19]"),
        Table1Row("(~0.72, 0.74)", quad, "~0.93", "SDP [17]"),
        Table1Row("[0.74, 1]", quad, quad, "greedy [11]"),
    ]
