"""The assortment serving layer: solve once, answer queries forever.

The offline side of this package computes a retained assortment; this
subpackage is the online side that *serves* it:

* :class:`SolutionStore` / :class:`SolutionSnapshot` — immutable solve
  snapshots (retained set, per-item coverage vector, context digest)
  behind an LRU+TTL cache keyed on the full solve context, hot-swapped
  atomically;
* :class:`AssortmentService` — ``query`` / ``covered_probability`` /
  ``top_alternatives`` answered in O(degree) from precomputed coverage
  vectors, never by re-solving; graph deltas trigger an incremental
  background re-solve;
* :class:`ServingRuntime` — the fault-tolerance layer: retried
  refreshes with seeded-jitter backoff (:class:`RetryPolicy`), a
  :class:`CircuitBreaker` on the refresh path, monotone degradation
  :class:`Tier` stamping (fresh → stale → static → shed) on every
  answer, and warm-restart persistence of the last good snapshot
  (:class:`SnapshotPersister`);
* :class:`ServingFrontend` — an asyncio front end that micro-batches
  concurrent requests into single vectorized snapshot reads, with
  admission control, per-query deadline propagation
  (:class:`~repro.errors.DeadlineExceeded` on expiry) and a
  degrade-to-last-good-snapshot failure mode.  It duck-types over a
  service or a runtime.

See ``docs/serving.md`` and ``docs/serving-resilience.md`` for the
architecture walk-throughs and ``repro serve`` for the CLI entry point.
"""

from .frontend import ServingFrontend
from .runtime import (
    CircuitBreaker,
    RetryPolicy,
    ServingAnswer,
    ServingRuntime,
    SnapshotPersister,
    Tier,
)
from .service import AssortmentService
from .store import SolutionSnapshot, SolutionStore

__all__ = [
    "AssortmentService",
    "CircuitBreaker",
    "RetryPolicy",
    "ServingAnswer",
    "ServingFrontend",
    "ServingRuntime",
    "SnapshotPersister",
    "SolutionSnapshot",
    "SolutionStore",
    "Tier",
]
