"""The assortment serving layer: solve once, answer queries forever.

The offline side of this package computes a retained assortment; this
subpackage is the online side that *serves* it:

* :class:`SolutionStore` / :class:`SolutionSnapshot` — immutable solve
  snapshots (retained set, per-item coverage vector, context digest)
  behind an LRU+TTL cache keyed on the full solve context, hot-swapped
  atomically;
* :class:`AssortmentService` — ``query`` / ``covered_probability`` /
  ``top_alternatives`` answered in O(degree) from precomputed coverage
  vectors, never by re-solving; graph deltas trigger an incremental
  background re-solve;
* :class:`ServingFrontend` — an asyncio front end that micro-batches
  concurrent requests into single vectorized snapshot reads, with
  admission control and a degrade-to-last-good-snapshot failure mode.

See ``docs/serving.md`` for the architecture walk-through and
``repro serve`` for the CLI entry point.
"""

from .frontend import ServingFrontend
from .service import AssortmentService
from .store import SolutionSnapshot, SolutionStore

__all__ = [
    "AssortmentService",
    "ServingFrontend",
    "SolutionSnapshot",
    "SolutionStore",
]
