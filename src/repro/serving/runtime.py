"""Fault-tolerant serving runtime: retries, breaker, tiers, warm restart.

:class:`ServingRuntime` wraps an
:class:`~repro.serving.service.AssortmentService` with the operational
machinery the bare service deliberately leaves out:

* **retries** — snapshot refreshes (the only expensive, failure-prone
  operation in the serving path) are retried with exponential backoff
  and *seeded* jitter (:class:`RetryPolicy`), so a chaos run replays
  the exact same retry schedule from the same seed;
* **circuit breaker** — a sliding-window breaker
  (:class:`CircuitBreaker`) on the refresh path stops hammering a
  persistently failing solver: after the window's failure rate crosses
  the threshold the breaker opens, refreshes short-circuit instantly,
  and a half-open probe admits one trial refresh after the reset
  timeout;
* **graceful degradation tiers** — every answer is stamped with the
  :class:`Tier` it was served at: ``fresh`` (active snapshot matches
  the current graph), ``stale`` (a staged delta could not be
  re-solved; the last good snapshot keeps answering, staleness
  stamped), ``static`` (no solved snapshot at all; a top-K-by-weight
  fallback assortment answers), and ``shed`` (nothing servable;
  queries fail fast with :class:`~repro.errors.ServingError`).
  Degradation is monotone — the tier only worsens while faults
  persist — and a successful refresh resets it to ``fresh``;
* **warm restart** — the last good snapshot is persisted atomically
  (:class:`SnapshotPersister`, reusing the checkpoint subsystem's
  ``atomic_write_bytes`` tmp+fsync+replace discipline) and restored on
  startup, so a restarted process answers queries *before* its first
  solve.  Restores revalidate the context digest: a snapshot for a
  different graph or stopping rule is skipped exactly like a corrupt
  checkpoint.

The differential guarantee survives every tier that serves: snapshots
(warm-restored, stale or static alike) recompute their conditional
coverage vector through :func:`repro.core.cover.item_coverage` at
construction, so a served answer is bitwise-equal to an offline
recomputation over the snapshot's retained set by construction.
``repro check --serving-chaos`` (see
:mod:`repro.evaluation.serving_chaos`) proves this under injected
refresh crashes, latency and restarts.
"""

from __future__ import annotations

import io
import json
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path
from typing import (
    Callable, Dict, Hashable, Iterable, List, Optional, Tuple, Union,
)

import numpy as np

from ..clickstream.drift import GraphDelta
from ..core.cover import coverage_vector
from ..core.csr import CSRGraph
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import ReproError, ServingError
from ..observability import MetricsRegistry
from ..observability.logs import get_logger
from ..resilience.checkpoint import atomic_write_bytes
from ..resilience.faults import active_faults
from .service import AssortmentService
from .store import SolutionSnapshot

#: Persisted-snapshot schema version.
SNAPSHOT_VERSION = 1

#: Filename shape: ``snap-<context>-<sequence>.npz``.
_SNAP_PREFIX = "snap-"

_LOG = get_logger("runtime")
_BREAKER_LOG = get_logger("breaker")


class Tier(IntEnum):
    """Degradation ladder, ordered best to worst.

    The integer ordering is load-bearing: "degradation is monotone"
    means the tier value never *decreases* while faults persist, which
    the chaos harness checks with plain ``<=`` comparisons.
    """

    FRESH = 0    #: active snapshot solves the current graph
    STALE = 1    #: last good snapshot serves; a staged delta is unsolved
    STATIC = 2   #: top-K-by-weight fallback assortment serves
    SHED = 3     #: nothing servable; queries fail fast

    @property
    def label(self) -> str:
        """Lower-case metric/report label (``fresh`` ... ``shed``)."""
        return self.name.lower()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    Attributes:
        max_attempts: total attempts (1 = no retries).
        base_delay_s: delay before the first retry.
        max_delay_s: backoff ceiling.
        multiplier: exponential growth factor per retry.
        jitter: fraction of the delay randomized symmetrically
            (``0.5`` means each delay is scaled by a factor drawn
            uniformly from ``[0.5, 1.5]``).
        seed: jitter RNG seed.  The RNG is re-seeded per :meth:`call`,
            so two runs of the same policy replay the *same* jitter
            sequence — chaos tests stay reproducible.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServingError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ServingError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ServingError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ServingError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delays(self) -> List[float]:
        """The jittered backoff schedule (``max_attempts - 1`` entries)."""
        rng = random.Random(self.seed)
        out = []
        for attempt in range(self.max_attempts - 1):
            delay = min(
                self.max_delay_s,
                self.base_delay_s * self.multiplier ** attempt,
            )
            if self.jitter > 0:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append(delay)
        return out

    def call(
        self,
        fn: Callable[[int], object],
        *,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, Exception, float], None]] = None,
    ):
        """Run ``fn(attempt)`` (1-based) until it succeeds or attempts run out.

        Retries on :class:`~repro.errors.ReproError` only — anything
        else (a genuine bug) propagates immediately.  The final failure
        re-raises the last error; ``on_retry(attempt, error, delay)``
        fires before each backoff sleep.
        """
        schedule = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(attempt)
            except ReproError as exc:
                if attempt == self.max_attempts:
                    raise
                delay = schedule[attempt - 1]
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0:
                    sleep(delay)


class CircuitBreaker:
    """Sliding-window circuit breaker (closed → open → half-open).

    Outcomes are recorded per refresh *episode* (one retried burst is
    one record).  In the closed state, once the window holds at least
    ``min_calls`` outcomes and the failure rate reaches
    ``failure_threshold`` the breaker opens: :meth:`allow` returns
    ``False`` instantly until ``reset_timeout_s`` elapses, then one
    half-open probe is admitted — its success closes the breaker (and
    clears the window), its failure re-opens it for another timeout.

    State is exported as the gauge ``serving.breaker.state`` (0 closed,
    1 open, 2 half-open) plus transition counters, so a metrics scrape
    shows exactly where the refresh path stands.
    """

    _STATE_CODE = {"closed": 0, "open": 1, "half_open": 2}

    def __init__(
        self,
        *,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if window < 1:
            raise ServingError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ServingError(
                f"failure_threshold must be in (0, 1], got "
                f"{failure_threshold}"
            )
        if min_calls < 1:
            raise ServingError(f"min_calls must be >= 1, got {min_calls}")
        if reset_timeout_s < 0:
            raise ServingError("reset_timeout_s must be >= 0")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock
        self.metrics = metrics
        self._lock = threading.Lock()
        self._outcomes: "deque[bool]" = deque(maxlen=window)
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opened = 0
        self.closed = 0
        self._export_state()

    # ------------------------------------------------------------------
    def _export_state(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(
                "serving.breaker.state", self._STATE_CODE[self._state]
            )

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        previous = self._state
        self._state = state
        _BREAKER_LOG.event(
            "breaker_transition",
            level="warning" if state == "open" else "info",
            from_state=previous,
            to_state=state,
        )
        if self.metrics is not None:
            self.metrics.incr(f"serving.breaker.{state}")
        if state == "open":
            self.opened += 1
            self._opened_at = self.clock()
        elif state == "closed":
            self.closed += 1
            self._outcomes.clear()
        self._export_state()

    @property
    def state(self) -> str:
        """Current breaker state (``closed`` / ``open`` / ``half_open``)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a refresh may proceed right now.

        In the open state this flips to half-open (admitting exactly one
        probe) once the reset timeout has elapsed.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self.clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._transition("half_open")
                self._probe_in_flight = True
                return True
            # half-open: one probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """Record one successful refresh episode."""
        with self._lock:
            self._probe_in_flight = False
            if self._state == "half_open":
                self._transition("closed")
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """Record one failed refresh episode (post-retries)."""
        with self._lock:
            self._probe_in_flight = False
            if self._state == "half_open":
                self._transition("open")
                return
            self._outcomes.append(False)
            if len(self._outcomes) < self.min_calls:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._transition("open")

    def snapshot(self) -> Dict:
        """Plain-python state dump (JSON-serializable)."""
        with self._lock:
            outcomes = list(self._outcomes)
            return {
                "state": self._state,
                "window": self.window,
                "recorded": len(outcomes),
                "failures": sum(1 for ok in outcomes if not ok),
                "opened": self.opened,
                "closed": self.closed,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, window={self.window}, "
            f"threshold={self.failure_threshold})"
        )


@dataclass(frozen=True)
class ServingAnswer:
    """One tier-stamped query answer.

    Attributes:
        item: the queried item id.
        value: the covered probability served.
        tier: the degradation tier the answer was served at.
        staleness_s: age of the answering snapshot on the store clock
            (``None`` for the static fallback, whose age is
            meaningless).
        sequence: delta-feed sequence the answering snapshot
            incorporates (``-1`` for the static fallback).
        source: the answering snapshot's cache key.
    """

    item: Hashable
    value: float
    tier: Tier
    staleness_s: Optional[float]
    sequence: int
    source: str

    def to_dict(self) -> Dict:
        """Plain-python summary (JSON-serializable)."""
        return {
            "item": self.item,
            "value": self.value,
            "tier": self.tier.label,
            "staleness_s": self.staleness_s,
            "sequence": self.sequence,
            "source": self.source,
        }


class SnapshotPersister:
    """Atomic on-disk persistence of last-good serving snapshots.

    One snapshot is one ``snap-<context>-<sequence>.npz`` file: the CSR
    arrays, the retained indices and a JSON header (version, context
    key, variant, stopping rule, item table).  Writes go through
    :func:`~repro.resilience.checkpoint.atomic_write_bytes` — the same
    tmp + fsync + ``os.replace`` discipline as solver checkpoints, with
    the same ``checkpoint_write`` fault-injection seam — so a crash
    mid-write can never corrupt the newest snapshot.  Loads scan
    newest-first and skip anything unreadable, version-skewed or
    context-mismatched, falling back to the next older file.

    The conditional coverage vector is deliberately *not* persisted: a
    restored :class:`~repro.serving.store.SolutionSnapshot` recomputes
    it through ``SolutionSnapshot.build``, so restored answers satisfy
    the bitwise differential guarantee by construction rather than by
    trusting bytes on disk.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        keep: int = 2,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if keep < 1:
            raise ServingError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.metrics = metrics
        self.written = 0
        self.write_failures = 0
        self.loads = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    def path_for(self, key: str, sequence: int) -> Path:
        """Where a snapshot of ``key`` at ``sequence`` lives."""
        return self.directory / (
            f"{_SNAP_PREFIX}{key}-{max(0, sequence):010d}.npz"
        )

    def save(
        self,
        snapshot: SolutionSnapshot,
        *,
        k: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> bool:
        """Persist one snapshot atomically; ``False`` on (counted) failure.

        ``k`` / ``threshold`` record the owning service's stopping rule
        so a warm restart can rebuild a service that asks the *same*
        question (the context digest covers the rule, so a mismatched
        rebuild would fail the key check).
        """
        header = {
            "version": SNAPSHOT_VERSION,
            "key": snapshot.key,
            "variant": snapshot.variant.value,
            "sequence": int(snapshot.sequence),
            "k": k,
            "threshold": threshold,
            "cover": float(snapshot.result.cover),
            "strategy": snapshot.result.strategy,
            "items": list(snapshot.graph.items),
        }
        graph = snapshot.graph
        buffer = io.BytesIO()
        try:
            np.savez(
                buffer,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                node_weight=graph.node_weight,
                in_ptr=graph.in_ptr,
                in_src=graph.in_src,
                in_weight=graph.in_weight,
                out_ptr=graph.out_ptr,
                out_dst=graph.out_dst,
                out_weight=graph.out_weight,
                retained_indices=np.asarray(
                    snapshot.result.retained_indices, dtype=np.int64
                ),
            )
        except (TypeError, ValueError):
            # Non-JSON-serializable item ids: persistence is best-effort.
            self.write_failures += 1
            self._incr("serving.persist.write_failures")
            return False
        faults = active_faults()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self.path_for(snapshot.key, snapshot.sequence),
                buffer.getvalue(),
                fail_hook=(
                    None if faults is None else faults.checkpoint_write_fails
                ),
            )
        except (OSError, ReproError):
            self.write_failures += 1
            self._incr("serving.persist.write_failures")
            return False
        self.written += 1
        self._incr("serving.persist.writes")
        self._prune(snapshot.key)
        return True

    def _prune(self, key: str) -> None:
        """Keep only the ``keep`` newest snapshots of this context."""
        try:
            files = sorted(
                self.directory.glob(f"{_SNAP_PREFIX}{key}-*.npz")
            )
        except OSError:
            return
        for stale in files[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def load(
        self, key: str, *, now: float = 0.0
    ) -> Optional[SolutionSnapshot]:
        """Newest valid snapshot for ``key``, or ``None``.

        Candidates are tried newest (highest sequence) first; corrupt,
        version-skewed or key-mismatched files are skipped (counted as
        ``serving.persist.rejected``), mirroring the checkpoint loader's
        longest-valid-prefix discipline.
        """
        self.loads += 1
        try:
            candidates = sorted(
                self.directory.glob(f"{_SNAP_PREFIX}{key}-*.npz"),
                reverse=True,
            )
        except OSError:
            return None
        for path in candidates:
            loaded = self._read_valid(path, key=key, now=now)
            if loaded is not None:
                return loaded[0]
            self.rejected += 1
            self._incr("serving.persist.rejected")
        return None

    def load_latest(
        self, *, now: float = 0.0
    ) -> Optional[Tuple[SolutionSnapshot, Dict]]:
        """Newest valid snapshot of *any* context, with its header.

        Used by :meth:`ServingRuntime.from_persisted`, which needs the
        header's stopping rule to rebuild the owning service.
        """
        self.loads += 1
        try:
            candidates = sorted(
                self.directory.glob(f"{_SNAP_PREFIX}*.npz"),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return None
        for path in candidates:
            loaded = self._read_valid(path, key=None, now=now)
            if loaded is not None:
                return loaded
            self.rejected += 1
            self._incr("serving.persist.rejected")
        return None

    def _read_valid(
        self, path: Path, *, key: Optional[str], now: float
    ) -> Optional[Tuple[SolutionSnapshot, Dict]]:
        """Parse and rebuild one file; ``None`` when unusable."""
        try:
            with np.load(path) as archive:
                header = json.loads(
                    bytes(archive["header"].tobytes()).decode("utf-8")
                )
                arrays = {
                    name: np.array(archive[name])
                    for name in (
                        "node_weight", "in_ptr", "in_src", "in_weight",
                        "out_ptr", "out_dst", "out_weight",
                        "retained_indices",
                    )
                }
        except (OSError, KeyError, ValueError, json.JSONDecodeError,
                UnicodeDecodeError):
            return None
        if not isinstance(header, dict):
            return None
        if header.get("version") != SNAPSHOT_VERSION:
            return None
        if key is not None and header.get("key") != key:
            return None
        items = header.get("items")
        if not isinstance(items, list) or len(items) != len(
            arrays["node_weight"]
        ):
            return None
        try:
            graph = CSRGraph(
                arrays["node_weight"],
                arrays["in_ptr"], arrays["in_src"], arrays["in_weight"],
                arrays["out_ptr"], arrays["out_dst"], arrays["out_weight"],
                items,
            )
            retained_indices = arrays["retained_indices"]
            if retained_indices.size and not (
                (0 <= retained_indices)
                & (retained_indices < graph.n_items)
            ).all():
                return None
            retained = [items[int(i)] for i in retained_indices]
            variant = Variant.coerce(header.get("variant"))
            coverage = coverage_vector(graph, retained, variant)
            result = SolveResult(
                variant=variant,
                k=len(retained),
                retained=retained,
                retained_indices=retained_indices,
                cover=float(coverage.sum()),
                coverage=coverage,
                item_ids=list(items),
                strategy=str(header.get("strategy", "restored")),
                context_digest=header.get("key"),
            )
            snapshot = SolutionSnapshot.build(
                str(header.get("key")), graph, variant, result,
                sequence=int(header.get("sequence", 0)),
                created_at=now,
            )
        except (ReproError, TypeError, ValueError, IndexError):
            return None
        return snapshot, header


class ServingRuntime:
    """Fault-tolerant façade over an :class:`AssortmentService`.

    Exposes the service's reader surface (``covered_probability`` /
    ``covered_probability_many`` / ``ensure`` / ``top_alternatives`` /
    ``apply_delta``), so a
    :class:`~repro.serving.frontend.ServingFrontend` can be constructed
    over a runtime unchanged — plus the tier-stamped :meth:`answer` /
    :meth:`answers` API.

    Args:
        service: the wrapped snapshot service.
        retry: refresh retry policy (:class:`RetryPolicy` defaults).
        breaker: refresh circuit breaker; a default
            :class:`CircuitBreaker` wired to the runtime's metrics when
            omitted.
        persist_dir: when set, last-good snapshots are persisted here
            (and restored from here at construction).  Mutually
            exclusive with ``persister``.
        persister: an explicit :class:`SnapshotPersister`.
        static_fallback: whether to serve the top-K-by-weight static
            assortment when no solved snapshot exists (tier
            ``static``); with ``False`` the runtime sheds instead.
        static_k: retained-set size for the static fallback (defaults
            to the service's ``k``, else 10% of the catalogue).
        metrics: telemetry registry; defaults to the service's own.
        clock: monotonic clock (injectable for tests).
        sleep: backoff sleep (injectable for tests).
    """

    def __init__(
        self,
        service: AssortmentService,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        persist_dir: Union[None, str, Path] = None,
        persister: Optional[SnapshotPersister] = None,
        static_fallback: bool = True,
        static_k: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if persist_dir is not None and persister is not None:
            raise ServingError(
                "provide persist_dir or persister, not both"
            )
        self.service = service
        self.metrics = metrics if metrics is not None else service.metrics
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            metrics=self.metrics
        )
        if persister is None and persist_dir is not None:
            persister = SnapshotPersister(persist_dir, metrics=self.metrics)
        self.persister = persister
        self.static_fallback = static_fallback
        self.static_k = static_k
        self.clock = clock
        self.sleep = sleep
        self.restored = False
        self.shed_count = 0
        self.tier_transitions = 0
        self._tier = Tier.FRESH
        self._tier_lock = threading.Lock()
        self._static: Optional[SolutionSnapshot] = None
        self.metrics.set_gauge("serving.tier", int(self._tier))
        self._try_restore()

    # ------------------------------------------------------------------
    # Warm restart
    # ------------------------------------------------------------------
    def _try_restore(self) -> None:
        if self.persister is None or self.service.active is not None:
            return
        snapshot = self.persister.load(
            self.service.context_key(), now=self.service.store.now()
        )
        if snapshot is None:
            return
        self.service.adopt(snapshot)
        self.restored = True
        self.metrics.incr("serving.warm_restarts")

    @classmethod
    def from_persisted(
        cls,
        directory: Union[str, Path],
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        static_fallback: bool = True,
        static_k: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "ServingRuntime":
        """Rebuild a runtime *and its service* from persisted state.

        The cold-start-after-crash path: the newest valid snapshot
        under ``directory`` supplies the graph, the variant and the
        stopping rule; the rebuilt service adopts it immediately, so
        the first query is answerable before any solve.  Raises
        :class:`~repro.errors.ServingError` when no usable snapshot
        exists (the caller then cold-starts normally).
        """
        persister = SnapshotPersister(directory, metrics=metrics)
        loaded = persister.load_latest()
        if loaded is None:
            raise ServingError(
                f"no usable persisted snapshot under {directory}"
            )
        snapshot, header = loaded
        service = AssortmentService(
            snapshot.graph,
            variant=snapshot.variant,
            k=header.get("k"),
            threshold=header.get("threshold"),
            metrics=metrics,
        )
        return cls(
            service,
            retry=retry,
            breaker=breaker,
            persister=persister,
            static_fallback=static_fallback,
            static_k=static_k,
            metrics=metrics,
            clock=clock,
            sleep=sleep,
        )

    def _persist(self, snapshot: SolutionSnapshot) -> None:
        if self.persister is not None:
            self.persister.save(
                snapshot, k=self.service.k, threshold=self.service.threshold
            )

    # ------------------------------------------------------------------
    # Tier bookkeeping
    # ------------------------------------------------------------------
    @property
    def tier(self) -> Tier:
        """The current degradation tier."""
        with self._tier_lock:
            return self._tier

    def _set_tier(self, tier: Tier) -> None:
        with self._tier_lock:
            if tier == self._tier:
                return
            previous = self._tier
            self._tier = tier
            self.tier_transitions += 1
        _LOG.event(
            "tier_transition",
            level="info" if tier == Tier.FRESH else "warning",
            from_tier=previous.label,
            to_tier=tier.label,
        )
        self.metrics.incr("serving.tier_transitions")
        self.metrics.incr(f"serving.tier.{tier.label}")
        self.metrics.set_gauge("serving.tier", int(tier))

    def _degrade(self, tier: Tier) -> None:
        """Move to ``tier`` only if it is *worse* (monotone under faults)."""
        with self._tier_lock:
            if tier <= self._tier:
                return
        self._set_tier(tier)

    # ------------------------------------------------------------------
    # Protected refresh path: breaker gate + retried solve
    # ------------------------------------------------------------------
    def _on_retry(self, attempt: int, exc: Exception, delay: float) -> None:
        self.metrics.incr("serving.retries")
        self.metrics.observe("serving.retry_delay_s", delay)
        _LOG.warning(
            "refresh_retry",
            attempt=attempt,
            delay_s=round(delay, 6),
            error=f"{type(exc).__name__}: {exc}",
        )

    def _protected(
        self, fn: Callable[[], SolutionSnapshot]
    ) -> Optional[SolutionSnapshot]:
        """Run one solve/refresh episode under breaker + retry.

        Returns the new snapshot, or ``None`` when the breaker
        short-circuited or every attempt failed.  The breaker records
        exactly one outcome per episode (not per attempt), so its
        failure window measures refresh *episodes* rather than being
        inflated by the retry multiplier.
        """
        if not self.breaker.allow():
            self.metrics.incr("serving.breaker.short_circuited")
            _LOG.warning("refresh_episode", outcome="short_circuited")
            return None
        started = time.perf_counter()
        try:
            snapshot = self.retry.call(
                lambda attempt: fn(),
                sleep=self.sleep,
                on_retry=self._on_retry,
            )
        except ReproError as exc:
            self.breaker.record_failure()
            elapsed = time.perf_counter() - started
            self.metrics.observe("serving.refresh_episode_s", elapsed)
            _LOG.error(
                "refresh_episode",
                outcome="failed",
                duration_s=round(elapsed, 6),
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        self.breaker.record_success()
        elapsed = time.perf_counter() - started
        self.metrics.observe("serving.refresh_episode_s", elapsed)
        _LOG.event(
            "refresh_episode",
            outcome="refreshed",
            duration_s=round(elapsed, 6),
            sequence=snapshot.sequence,
        )
        self._set_tier(Tier.FRESH)
        self._persist(snapshot)
        return snapshot

    def _degrade_after_failure(self) -> None:
        """Pick the worst-case tier the next answer will be served at."""
        if self.service.active is not None:
            self._degrade(Tier.STALE)
        elif self.static_fallback:
            self._degrade(Tier.STATIC)
        else:
            self._degrade(Tier.SHED)

    # ------------------------------------------------------------------
    # Lifecycle operations
    # ------------------------------------------------------------------
    def ensure(self) -> SolutionSnapshot:
        """The best servable snapshot, solving cold if needed.

        Mirrors :meth:`AssortmentService.ensure` but never lets a solve
        failure escape while something is still servable: on failure
        the answer comes from the degradation ladder, and only an empty
        ladder raises :class:`~repro.errors.ServingError`.
        """
        snapshot, _ = self._best()
        return snapshot

    def refresh(self) -> Optional[SolutionSnapshot]:
        """Force one protected refresh episode; ``None`` on failure."""
        snapshot = self._protected(self.service.refresh)
        if snapshot is None:
            self._degrade_after_failure()
        return snapshot

    def apply_delta(self, delta: GraphDelta) -> Optional[SolutionSnapshot]:
        """Stage a delta, then re-solve under breaker + retry.

        The graph mutation happens exactly once (stale/duplicate deltas
        drop as usual); only the refresh is retried.  On refresh
        failure the runtime degrades — the last good snapshot keeps
        serving, stamped stale — and returns it (or ``None`` when
        nothing is servable yet); it never raises, matching the
        drop-nothing contract of the delta feed.
        """
        if not self.service.stage_delta(delta):
            return self.service.active
        snapshot = self._protected(self.service.refresh)
        if snapshot is None:
            self._degrade_after_failure()
            return self.service.active
        return snapshot

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _static_snapshot(self) -> Optional[SolutionSnapshot]:
        """The cached top-K-by-weight fallback for the current graph."""
        if not self.static_fallback:
            return None
        key = f"static:{self.service.context_key()}"
        if self._static is not None and self._static.key == key:
            return self._static
        try:
            csr = self.service.current_csr()
            k = self.static_k or self.service.k or max(1, csr.n_items // 10)
            k = min(k, csr.n_items)
            order = np.argsort(
                -np.asarray(csr.node_weight), kind="stable"
            )[:k].astype(np.int64)
            retained = [csr.items[int(i)] for i in order]
            coverage = coverage_vector(csr, retained, self.service.variant)
            result = SolveResult(
                variant=self.service.variant,
                k=int(k),
                retained=retained,
                retained_indices=order,
                cover=float(coverage.sum()),
                coverage=coverage,
                item_ids=list(csr.items),
                strategy="static-top-weight",
            )
            self._static = SolutionSnapshot.build(
                key, csr, self.service.variant, result,
                sequence=-1,
                created_at=self.service.store.now(),
            )
        except ReproError:
            return None
        self.metrics.incr("serving.static_builds")
        return self._static

    def _best(self) -> Tuple[SolutionSnapshot, Tier]:
        """The snapshot answering right now, with its tier.

        A cold start attempts one protected solve first (the reader
        surface is self-warming, like the bare service's); only then
        does the ladder descend.  Raises
        :class:`~repro.errors.ServingError` when the ladder is
        exhausted (tier ``shed``).
        """
        snapshot = self.service.active
        if snapshot is None:
            snapshot = self._protected(self.service.ensure)
        if snapshot is not None:
            tier = Tier.STALE if self.tier == Tier.STALE else Tier.FRESH
            return snapshot, tier
        static = self._static_snapshot()
        if static is not None:
            self._degrade(Tier.STATIC)
            return static, Tier.STATIC
        self._degrade(Tier.SHED)
        self.shed_count += 1
        self.metrics.incr("serving.shed")
        raise ServingError(
            "no servable snapshot (no solved state, no static fallback); "
            "serving is shedding load"
        )

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def answer(self, item: Hashable) -> ServingAnswer:
        """One tier-stamped point answer."""
        return self.answers([item])[0]

    def answers(self, items: Iterable[Hashable]) -> List[ServingAnswer]:
        """Tier-stamped answers for a batch, from one snapshot reference."""
        items = list(items)
        started = time.perf_counter()
        snapshot, tier = self._best()
        values = snapshot.covered_probability_many(items)
        staleness: Optional[float] = None
        if tier in (Tier.FRESH, Tier.STALE):
            staleness = max(
                0.0, self.service.store.now() - snapshot.created_at
            )
            self.metrics.set_gauge("serving.staleness_s", staleness)
        self.metrics.incr("serving.queries", len(values))
        self.metrics.observe(
            "serving.answer_latency_s",
            time.perf_counter() - started,
            labels={"tier": tier.label},
        )
        return [
            ServingAnswer(
                item=item,
                value=float(value),
                tier=tier,
                staleness_s=staleness,
                sequence=snapshot.sequence,
                source=snapshot.key,
            )
            for item, value in zip(items, values)
        ]

    def covered_probability(self, item: Hashable) -> float:
        """Reader-surface point query (tier-blind, frontend-compatible)."""
        started = time.perf_counter()
        snapshot, tier = self._best()
        self.metrics.incr("serving.queries")
        value = snapshot.covered_probability(item)
        self.metrics.observe(
            "serving.answer_latency_s",
            time.perf_counter() - started,
            labels={"tier": tier.label},
        )
        return value

    def covered_probability_many(
        self, items: Iterable[Hashable]
    ) -> np.ndarray:
        """Reader-surface batched query (tier-blind, frontend-compatible)."""
        started = time.perf_counter()
        snapshot, tier = self._best()
        values = snapshot.covered_probability_many(items)
        self.metrics.incr("serving.queries", len(values))
        self.metrics.observe(
            "serving.answer_latency_s",
            time.perf_counter() - started,
            labels={"tier": tier.label},
        )
        return values

    def top_alternatives(self, item: Hashable, limit: int = 5):
        """Retained substitutes from the best servable snapshot."""
        snapshot, _ = self._best()
        self.metrics.incr("serving.queries")
        return snapshot.top_alternatives(item, limit)

    def active_snapshot(self) -> Optional[SolutionSnapshot]:
        """The service's active (solved) snapshot, if any."""
        return self.service.active

    def readiness(self) -> Tuple[bool, Dict]:
        """The ``/readyz`` verdict: tier at most stale, breaker not open.

        Wired into :class:`~repro.observability.exporter.MetricsExporter`
        by ``repro serve --metrics-port`` — a load balancer polling
        ``/readyz`` drains this replica exactly when the chaos tiers
        say its answers are no longer solve-backed.
        """
        tier = self.tier
        breaker_state = self.breaker.state
        ready = tier <= Tier.STALE and breaker_state != "open"
        return ready, {
            "tier": tier.label,
            "breaker": breaker_state,
        }

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Service stats plus runtime tier/breaker/persistence state."""
        payload = self.service.stats()
        payload.update(
            tier=self.tier.label,
            tier_transitions=self.tier_transitions,
            breaker=self.breaker.snapshot(),
            restored=self.restored,
            shed_count=self.shed_count,
        )
        if self.persister is not None:
            payload.update(
                persisted=self.persister.written,
                persist_failures=self.persister.write_failures,
            )
        return payload

    def __repr__(self) -> str:
        return (
            f"ServingRuntime(tier={self.tier.label}, "
            f"breaker={self.breaker.state}, "
            f"service={self.service!r})"
        )
