"""The assortment query service: O(degree) answers, never a re-solve.

:class:`AssortmentService` owns one Preference Cover question — a graph,
a variant and a stopping rule — and keeps an *active*
:class:`~repro.serving.store.SolutionSnapshot` answering it.  Queries
(`query` / `covered_probability` / `top_alternatives`) read precomputed
coverage vectors from the snapshot: a point lookup is O(1), an
alternatives listing is O(out-degree).  Solving happens in exactly two
places — the first :meth:`ensure` (cold miss) and :meth:`refresh` after
a :class:`~repro.clickstream.drift.GraphDelta` invalidated the active
snapshot — and the refresh path reuses the stable greedy prefix through
:class:`~repro.extensions.incremental.IncrementalSolver` instead of
starting over.

Snapshot replacement is an atomic reference swap: a query thread reads
``self._active`` once and answers entirely from that immutable object,
so concurrent hot-swaps can never produce a torn view (half old
assortment, half new coverage).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..clickstream.drift import GraphDelta
from ..core.context import solve_context_digest
from ..core.csr import as_csr
from ..core.graph import PreferenceGraph
from ..core.variants import Variant
from ..errors import ReproError, ServingError
from ..extensions.incremental import IncrementalSolver
from ..observability import MetricsRegistry, logs
from ..resilience.faults import InjectedRefreshFailure, active_faults
from .store import SolutionSnapshot, SolutionStore

_LOG = logs.get_logger("service")


class AssortmentService:
    """Serves assortment queries from cached solve snapshots.

    Args:
        graph: the market's preference graph.  A mutable
            :class:`~repro.core.graph.PreferenceGraph` enables the
            incremental delta/refresh path; a ``CSRGraph`` is accepted
            for read-only serving.
        variant: Preference Cover variant (enum or plain string).
        k: retained-set size (mutually exclusive with ``threshold``).
        threshold: cover target for minimization-style serving.
        store: snapshot cache; a private 8-slot
            :class:`~repro.serving.store.SolutionStore` by default.
            Sharing one store across services deduplicates snapshots of
            identical questions.
        metrics: a :class:`~repro.observability.MetricsRegistry`
            receiving serving telemetry (``serving.*`` instruments).
        validate_deltas: re-validate the graph after every applied
            delta.  Off by default: the delta sources in this package
            preserve the model invariants by construction, and the
            whole point of the ``validated`` fast path is that a
            refresh does not pay an O(m) sweep per snapshot.
    """

    def __init__(
        self,
        graph,
        *,
        variant: "Variant | str",
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        store: Optional[SolutionStore] = None,
        metrics: Optional[MetricsRegistry] = None,
        validate_deltas: bool = False,
    ) -> None:
        if (k is None) == (threshold is None):
            raise ServingError(
                "provide exactly one stopping rule: k or threshold"
            )
        self.variant = Variant.coerce(variant)
        self.k = k
        self.threshold = threshold
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = store if store is not None else SolutionStore(
            metrics=self.metrics
        )
        self.validate_deltas = validate_deltas
        if isinstance(graph, PreferenceGraph):
            self._graph = graph
        else:
            # CSR input: materialize the mutable form so deltas apply.
            self._graph = as_csr(graph).to_preference_graph()
        self._graph.validate(self.variant)
        self._solver: Optional[IncrementalSolver] = None
        if k is not None:
            self._solver = IncrementalSolver(
                self._graph, k=k, variant=self.variant, validate=False
            )
        self._active: Optional[SolutionSnapshot] = None
        self._refresh_lock = threading.Lock()
        self._sequence = 0
        self.refresh_failures = 0
        # Cached CSR view of the current graph state; dropped whenever a
        # delta mutates the graph so cache-hit lookups stay O(1) instead
        # of paying an O(m) CSR conversion per ensure().
        self._csr = None

    # ------------------------------------------------------------------
    # Snapshot lifecycle
    # ------------------------------------------------------------------
    def _current_csr(self):
        if self._csr is None:
            self._csr = as_csr(self._graph)
        return self._csr

    def current_csr(self):
        """CSR view of the current graph state (cached until a delta)."""
        return self._current_csr()

    def context_key(self) -> str:
        """The active graph's full context digest (cache key)."""
        return solve_context_digest(
            self._current_csr(), self.variant,
            k=self.k, threshold=self.threshold,
        )

    def _solve_snapshot(self, key: str) -> SolutionSnapshot:
        """Run the solver and freeze its output into a snapshot."""
        injector = active_faults()
        if injector is not None:
            # The refresh loop is a supervised worker from the chaos
            # suite's perspective: give the injector its crash hook.
            injector.solver_round(self._sequence + 1)
            delay = injector.refresh_delay_s()
            if delay > 0:
                time.sleep(delay)
            if injector.refresh_fails():
                raise InjectedRefreshFailure(
                    f"injected refresh failure at sequence "
                    f"{self._sequence} (fault injection)"
                )
        csr = self._current_csr()
        if self._solver is not None:
            result = self._solver.resolve() \
                if self._solver.last_result is not None \
                else self._solver.solve()
        else:
            from .. import facade

            result = facade.solve(
                csr, variant=self.variant, threshold=self.threshold,
                validated=True,
            )
        return SolutionSnapshot.build(
            key, csr, self.variant, result,
            sequence=self._sequence,
            created_at=self.store.now(),
        )

    def ensure(self) -> SolutionSnapshot:
        """The active snapshot, solving on a cold cache miss.

        Cache hits are O(1); only one thread solves at a time (the
        refresh lock), and a concurrent ``ensure`` that lost the race
        picks up the winner's snapshot from the store.
        """
        key = self.context_key()
        snapshot = self.store.get(key)
        if snapshot is None:
            with self._refresh_lock:
                snapshot = self.store.get(key, record=False)
                if snapshot is None:
                    with self.metrics.time("serving.solve"):
                        snapshot = self._solve_snapshot(key)
                    self.store.put(snapshot)
        self._active = snapshot
        return snapshot

    @property
    def active(self) -> Optional[SolutionSnapshot]:
        """The snapshot queries are currently answered from."""
        return self._active

    @property
    def graph(self) -> PreferenceGraph:
        """The service's mutable market graph (delta-feed target)."""
        return self._graph

    def _snapshot(self) -> SolutionSnapshot:
        snapshot = self._active
        if snapshot is None:
            snapshot = self.ensure()
        return snapshot

    # ------------------------------------------------------------------
    # Queries — O(1) / O(degree), answered from the active snapshot
    # ------------------------------------------------------------------
    def covered_probability(self, request: Hashable) -> float:
        """Probability a request for this item is matched by the assortment."""
        self.metrics.incr("serving.queries")
        snapshot = self._snapshot()
        if logs._SINK is not None:  # zero-cost when logging is off
            _LOG.event(
                "read", items=1, sequence=snapshot.sequence,
                source=snapshot.key[:12],
            )
        return snapshot.covered_probability(request)

    def covered_probability_many(self, requests: Iterable[Hashable]) -> np.ndarray:
        """Vectorized :meth:`covered_probability` for one request batch.

        All answers come from a single snapshot reference, so a batch is
        internally consistent even if a hot-swap lands mid-call.
        """
        snapshot = self._snapshot()
        answers = snapshot.covered_probability_many(requests)
        self.metrics.incr("serving.queries", len(answers))
        if logs._SINK is not None:
            _LOG.event(
                "read", items=len(answers), sequence=snapshot.sequence,
                source=snapshot.key[:12],
            )
        return answers

    def query(self, item_ids: Iterable[Hashable]) -> List[Dict]:
        """Per-item assortment report for a batch of item ids.

        Each entry carries the item, whether it is retained, and its
        covered probability — the Figure 2 per-item percentage.
        """
        snapshot = self._snapshot()
        out = []
        for item in item_ids:
            index = snapshot.index_of(item)
            out.append({
                "item": item,
                "retained": bool(snapshot.retained_mask[index]),
                "covered_probability": float(snapshot.conditional[index]),
            })
        self.metrics.incr("serving.queries", len(out))
        return out

    def top_alternatives(
        self, item: Hashable, limit: int = 5
    ) -> List[Tuple[Hashable, float]]:
        """Retained substitutes for ``item``, best acceptance first."""
        self.metrics.incr("serving.queries")
        return self._snapshot().top_alternatives(item, limit)

    # ------------------------------------------------------------------
    # Invalidation — the only write path
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> SolutionSnapshot:
        """Apply a graph delta and refresh the active snapshot.

        Stale or duplicate deltas (``sequence`` at or below the last
        one incorporated) are dropped.  On a refresh failure the
        service *degrades instead of breaking*: the metric
        ``serving.refresh_failures`` is bumped, the last good snapshot
        stays active (queries keep working), and the error propagates
        so the caller can decide whether to retry.
        """
        with self._refresh_lock:
            if not self._stage_locked(delta):
                return self._active
            return self._refresh_locked()

    def stage_delta(self, delta: GraphDelta) -> bool:
        """Mutate the graph for ``delta`` *without* re-solving.

        Returns ``True`` when the delta was incorporated (the active
        snapshot is now stale and a :meth:`refresh` is owed), ``False``
        when the delta was a stale/duplicate drop.  This split exists
        for retrying callers: a graph mutation must happen exactly
        once, while the refresh that follows may be attempted many
        times — retrying :meth:`apply_delta` whole would hit the
        stale-sequence drop on the second attempt and "succeed"
        without ever re-solving.
        """
        with self._refresh_lock:
            return self._stage_locked(delta)

    def _stage_locked(self, delta: GraphDelta) -> bool:
        if delta.sequence <= self._sequence and self._active is not None:
            self.metrics.incr("serving.deltas_stale")
            return False
        delta.apply_to(self._graph)
        self._csr = None  # the cached CSR view is now stale
        self._sequence = delta.sequence
        self.metrics.incr("serving.deltas_applied")
        if self.validate_deltas:
            self._graph.validate(self.variant)
        return True

    def adopt(self, snapshot: SolutionSnapshot) -> SolutionSnapshot:
        """Install an externally built snapshot as the active one.

        The warm-restart path: a persisted last-good snapshot is
        adopted on startup so queries are answerable before the first
        solve.  The snapshot must answer *this* service's question —
        its key is checked against :meth:`context_key` so a foreign or
        out-of-date snapshot is rejected rather than silently served.
        """
        with self._refresh_lock:
            expected = self.context_key()
            if snapshot.key != expected:
                raise ServingError(
                    f"snapshot key {snapshot.key[:12]}... does not match "
                    f"this service's context {expected[:12]}...; refusing "
                    f"to serve answers for a different question"
                )
            self.store.put(snapshot)
            self._active = snapshot
            self._sequence = max(self._sequence, snapshot.sequence)
            return snapshot

    def refresh(self) -> SolutionSnapshot:
        """Force a re-solve of the current graph and hot-swap the result.

        Also resynchronizes with any out-of-band mutation of
        :attr:`graph` (the delta path is the supported write channel,
        but a manual edit followed by ``refresh()`` works too).
        """
        with self._refresh_lock:
            self._csr = None
            return self._refresh_locked()

    def _refresh_locked(self) -> SolutionSnapshot:
        key = self.context_key()
        try:
            with self.metrics.time("serving.refresh"):
                snapshot = self._solve_snapshot(key)
        except ReproError as exc:
            self.refresh_failures += 1
            self.metrics.incr("serving.refresh_failures")
            _LOG.warning(
                "refresh_failed",
                sequence=self._sequence,
                error=f"{type(exc).__name__}: {exc}",
            )
            raise
        self.store.put(snapshot)
        self._active = snapshot  # atomic reference swap
        self.metrics.incr("serving.hot_swaps")
        _LOG.event(
            "hot_swap", sequence=snapshot.sequence, source=snapshot.key[:12],
        )
        return snapshot

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Store counters plus service-level refresh/sequence state."""
        payload = self.store.stats()
        payload.update(
            sequence=self._sequence,
            refresh_failures=self.refresh_failures,
            active_key=self._active.key if self._active else None,
        )
        return payload

    def __repr__(self) -> str:
        rule = f"k={self.k}" if self.k is not None \
            else f"threshold={self.threshold}"
        return (
            f"AssortmentService(variant={self.variant.value}, {rule}, "
            f"n_items={self._graph.n_items})"
        )
