"""Async serving front end: micro-batched queries over one event loop.

:class:`ServingFrontend` puts an asyncio face on a synchronous
:class:`~repro.serving.service.AssortmentService`.  Concurrent
``covered_probability`` awaiters are coalesced by a micro-batching
drain loop — the first request opens a batch window
(``batch_window_s``), everything arriving inside it joins the batch (up
to ``max_batch``), and the whole batch is answered by **one**
vectorized read of the active snapshot's coverage vector.  Admission
control bounds the in-flight queue: beyond ``max_pending`` requests the
front end sheds load with :class:`~repro.errors.ServingError` instead
of growing without bound, mirroring the RunGuard philosophy of failing
fast and observably.

A :class:`~repro.clickstream.drift.GraphDelta` feed can run alongside:
deltas are applied (and the snapshot re-solved) in a worker thread so
queries keep draining, and every failure mode — corrupted feed lines,
an injected crash mid-refresh — degrades to the last good snapshot
rather than dropping in-flight queries.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from typing import AsyncIterator, Hashable, Iterable, List, Optional, Union

from ..clickstream.drift import GraphDelta
from ..errors import DeadlineExceeded, ReproError, ServingError
from ..observability import logs
from ..observability.metrics import COUNT_BUCKETS
from ..resilience.faults import active_faults
from .service import AssortmentService

#: How far *before* the earliest member deadline a batch window closes.
#: Sealing exactly at the deadline loses the race against event-loop
#: scheduling overhead, expiring queries the clamp existed to save.
_SEAL_MARGIN_S = 0.005

_LOG = logs.get_logger("frontend")


class ServingFrontend:
    """Micro-batching asyncio front end over an :class:`AssortmentService`.

    Args:
        service: the snapshot-backed query service to drive.  Anything
            with the service's reader surface works — in particular a
            :class:`~repro.serving.runtime.ServingRuntime`, which adds
            retries, a circuit breaker and degradation tiers underneath
            the same methods.
        batch_window_s: how long the drain loop holds a batch open after
            its first request (2 ms default — long enough to coalesce a
            burst, short enough to be invisible in p50).
        max_batch: upper bound on requests answered per vectorized call.
        max_pending: admission-control ceiling on queued requests;
            submissions beyond it are rejected with ``ServingError``.
        default_deadline_s: per-query deadline applied when the caller
            does not pass ``timeout_s`` explicitly.  ``None`` (default)
            means queries wait indefinitely.  A batch never holds its
            window open past the earliest member deadline, and a query
            whose deadline has passed by the time its batch is answered
            fails fast with :class:`~repro.errors.DeadlineExceeded`
            instead of receiving a too-late answer.
        metrics: telemetry registry; defaults to the service's own.
    """

    def __init__(
        self,
        service: AssortmentService,
        *,
        batch_window_s: float = 0.002,
        max_batch: int = 256,
        max_pending: int = 1024,
        default_deadline_s: Optional[float] = None,
        metrics=None,
    ) -> None:
        if batch_window_s < 0:
            raise ServingError("batch_window_s must be >= 0")
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if max_pending < 1:
            raise ServingError("max_pending must be >= 1")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ServingError("default_deadline_s must be positive or None")
        self.service = service
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.metrics = metrics if metrics is not None else service.metrics
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._stop: Optional[asyncio.Event] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain loop on the running event loop (idempotent)."""
        if self._closed:
            raise ServingError("front end is closed")
        if self._drain_task is None or self._drain_task.done():
            self._queue = asyncio.Queue()
            self._stop = asyncio.Event()
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_loop()
            )

    async def aclose(self) -> None:
        """Answer what is queued, then stop the drain loop."""
        self._closed = True
        if self._drain_task is not None:
            self._stop.set()
            # Wake the drain loop if it is blocked on an empty queue.
            await self._queue.put(None)
            await self._drain_task
            self._drain_task = None

    async def __aenter__(self) -> "ServingFrontend":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def _submit(
        self, item: Hashable, timeout_s: Optional[float] = None
    ) -> "asyncio.Future":
        if self._queue is None:
            raise ServingError(
                "front end not started; use 'async with frontend:' or "
                "call start() from a running event loop"
            )
        if self._queue.qsize() >= self.max_pending:
            self.metrics.incr("serving.rejected")
            raise ServingError(
                f"serving queue full ({self.max_pending} pending); "
                f"shed load or raise max_pending"
            )
        if timeout_s is None:
            timeout_s = self.default_deadline_s
        now = time.perf_counter()
        deadline = now + timeout_s if timeout_s is not None else None
        future = asyncio.get_running_loop().create_future()
        # Correlation: a query submitted inside a span joins that trace
        # (child span); otherwise, when structured logging is on, it
        # opens a trace of its own so `repro events --trace-id` can
        # follow it through batch seal and snapshot read.
        context = logs.current_trace()
        if context is not None:
            context = context.child("frontend")
        elif logs.logging_enabled():
            context = logs.TraceContext(
                trace_id=logs.new_trace_id(), component="frontend"
            )
        self._queue.put_nowait((item, future, now, deadline, context))
        return future

    async def covered_probability(
        self, item: Hashable, *, timeout_s: Optional[float] = None
    ) -> float:
        """Awaitable point query, answered by the next micro-batch.

        ``timeout_s`` overrides ``default_deadline_s`` for this query;
        when the deadline expires before the answering batch is sealed
        the await fails with :class:`~repro.errors.DeadlineExceeded`.
        """
        return await self._submit(item, timeout_s)

    async def query(
        self,
        item_ids: Iterable[Hashable],
        *,
        timeout_s: Optional[float] = None,
    ) -> List[dict]:
        """Batched per-item report (one micro-batch per caller batch)."""
        items = list(item_ids)
        answers = await asyncio.gather(
            *(self._submit(item, timeout_s) for item in items)
        )
        snapshot = self.service.ensure()
        return [
            {
                "item": item,
                "retained": snapshot.is_retained(item),
                "covered_probability": float(probability),
            }
            for item, probability in zip(items, answers)
        ]

    async def top_alternatives(self, item: Hashable, limit: int = 5):
        """Async pass-through to the service (O(degree), no batching)."""
        return self.service.top_alternatives(item, limit)

    # ------------------------------------------------------------------
    # Drain loop
    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        queue, stop = self._queue, self._stop
        loop = asyncio.get_running_loop()
        while True:
            first = await queue.get()
            if first is None:
                if stop.is_set() and queue.empty():
                    return
                continue
            batch = [first]
            window_closes = loop.time() + self.batch_window_s
            min_deadline = first[3]
            while len(batch) < self.max_batch:
                remaining = window_closes - loop.time()
                if min_deadline is not None:
                    # Never hold the batch open past the earliest member
                    # deadline — a full window would expire that query.
                    remaining = min(
                        remaining,
                        min_deadline - _SEAL_MARGIN_S - time.perf_counter(),
                    )
                if remaining <= 0 and self.batch_window_s > 0:
                    break
                try:
                    entry = queue.get_nowait() if remaining <= 0 else \
                        await asyncio.wait_for(queue.get(), remaining)
                except (asyncio.TimeoutError, asyncio.QueueEmpty):
                    break
                if entry is None:
                    continue
                batch.append(entry)
                if entry[3] is not None and (
                    min_deadline is None or entry[3] < min_deadline
                ):
                    min_deadline = entry[3]
            self._answer(batch)
            if stop.is_set() and queue.empty():
                return

    def _answer(self, batch) -> None:
        """Answer one micro-batch with a single vectorized snapshot read.

        Deadline expiry is judged here, at batch seal time: members
        whose deadline has already passed fail fast with
        :class:`~repro.errors.DeadlineExceeded` and never join the
        vectorized read — when every member has expired, no snapshot
        read is issued at all.
        """
        now = time.perf_counter()
        live = []
        for entry in batch:
            # Tolerate legacy 4-tuple entries (pre trace-context) built
            # by callers that seal batches by hand.
            item, future, enqueued, deadline = entry[:4]
            context = entry[4] if len(entry) > 4 else None
            if future.done():  # caller went away (cancelled/timed out)
                continue
            if deadline is not None and now > deadline:
                self.metrics.incr("serving.deadline_exceeded")
                if context is not None:
                    _LOG.warning(
                        "query_expired",
                        item=repr(item),
                        trace_id=context.trace_id,
                        late_s=round(now - deadline, 6),
                    )
                future.set_exception(DeadlineExceeded(
                    f"query for {item!r} expired {now - deadline:.4f}s "
                    f"past its deadline before its batch was answered"
                ))
                continue
            live.append((item, future, enqueued, context))
        if not live:
            return
        items = [item for item, _, _, _ in live]
        self.metrics.observe("serving.batch_size", len(live))
        self.metrics.observe(
            "serving.batch_occupancy", len(live), buckets=COUNT_BUCKETS
        )
        # The sealed batch is one physical action serving many logical
        # queries: records it emits (here and inside the service read)
        # carry the member trace ids as a fan-in group, so filtering by
        # any one query's trace finds the shared steps too.
        trace_ids = tuple(
            context.trace_id for _, _, _, context in live
            if context is not None
        )
        token = None
        if trace_ids:
            token = logs.activate(logs.TraceContext(
                trace_id=trace_ids[0],
                component="frontend",
                trace_ids=trace_ids,
            ))
            _LOG.event("batch_seal", size=len(live))
        try:
            try:
                answers = self.service.covered_probability_many(items)
            except ReproError:
                # One bad item must not poison its batch-mates: fall back
                # to per-item answering so only the offender sees the
                # error.
                answers = None
            now = time.perf_counter()
            for position, (item, future, enqueued, context) in enumerate(
                live
            ):
                if future.done():
                    continue
                if answers is not None:
                    future.set_result(float(answers[position]))
                else:
                    try:
                        future.set_result(
                            self.service.covered_probability(item)
                        )
                    except ReproError as exc:
                        future.set_exception(exc)
                self.metrics.observe(
                    "serving.request_latency_s", now - enqueued
                )
            if trace_ids:
                _LOG.event(
                    "batch_answered",
                    size=len(live),
                    vectorized=answers is not None,
                    latency_s=round(
                        now - min(enq for _, _, enq, _ in live), 6
                    ),
                )
        finally:
            if token is not None:
                logs.deactivate(token)

    # ------------------------------------------------------------------
    # Delta feed
    # ------------------------------------------------------------------
    def _parse_delta(
        self, raw: Union[GraphDelta, dict, str]
    ) -> Optional[GraphDelta]:
        """Decode one feed entry; corrupt entries count and drop."""
        try:
            if isinstance(raw, GraphDelta):
                return raw
            if isinstance(raw, dict):
                return GraphDelta.from_dict(raw)
            injector = active_faults()
            if injector is not None:
                raw = injector.corrupt_record(raw)
            return GraphDelta.from_json(raw)
        except ReproError:
            self.metrics.incr("serving.deltas_corrupt")
            return None

    async def _apply_delta(self, delta: GraphDelta) -> bool:
        """Apply one delta off-loop; refresh failures degrade, not crash."""
        loop = asyncio.get_running_loop()
        try:
            # contextvars do not cross run_in_executor on their own:
            # copy the current context so the refresh episode's
            # retry/breaker log records stay correlated to this feed.
            await loop.run_in_executor(
                None,
                contextvars.copy_context().run,
                self.service.apply_delta,
                delta,
            )
            return True
        except ReproError:
            # The service already counted the failure and kept the last
            # good snapshot active; queries continue degraded.
            return False

    async def consume_deltas(
        self, feed: AsyncIterator[Union[GraphDelta, dict, str]]
    ) -> int:
        """Drain a delta feed to exhaustion; returns applied-delta count."""
        applied = 0
        async for raw in feed:
            delta = self._parse_delta(raw)
            if delta is None or delta.is_empty:
                continue
            if await self._apply_delta(delta):
                applied += 1
        return applied

    async def serve_forever(
        self,
        delta_feed: Optional[AsyncIterator] = None,
        *,
        stop: Optional[asyncio.Event] = None,
    ) -> None:
        """Serve until ``stop`` is set (and the delta feed is drained).

        Starts the drain loop, solves the initial snapshot so the first
        query is warm, consumes the optional delta feed as it arrives,
        then waits for ``stop``.  Without a ``stop`` event the call
        returns when the delta feed ends — or, with no feed either,
        serves literally forever until cancelled.
        """
        self.start()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, contextvars.copy_context().run, self.service.ensure
        )
        feed_task = None
        if delta_feed is not None:
            feed_task = loop.create_task(self.consume_deltas(delta_feed))
        try:
            if stop is not None:
                await stop.wait()
                if feed_task is not None:
                    feed_task.cancel()
            elif feed_task is not None:
                await feed_task
            else:
                await asyncio.Event().wait()
        finally:
            if feed_task is not None:
                try:
                    await feed_task
                except asyncio.CancelledError:
                    pass
            await self.aclose()
