"""Immutable solve snapshots and the LRU+TTL store that caches them.

A :class:`SolutionSnapshot` freezes everything the serving layer needs
to answer assortment queries without re-solving: the solved graph (CSR),
the :class:`~repro.core.result.SolveResult`, the retained-set membership
mask and the *conditional* per-item coverage vector (``I[v] / W(v)``,
computed by :func:`repro.core.cover.item_coverage` — the same function
the offline differential check recomputes with, which is what makes the
served answers bitwise-identical to an offline recomputation).

:class:`SolutionStore` keeps recent snapshots keyed by their full
context digest ``(graph, variant, stopping rule, params)`` with LRU
eviction and optional TTL expiry.  Lookups and inserts take a lock only
around the dict bookkeeping; the snapshots themselves are immutable, so
a reference obtained from the store stays valid forever — eviction only
drops the store's reference, never invalidates the caller's.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.cover import item_coverage
from ..core.csr import CSRGraph
from ..core.result import SolveResult
from ..core.variants import Variant


@dataclass(frozen=True)
class SolutionSnapshot:
    """One immutable solved assortment, ready to answer queries.

    Attributes:
        key: the solve's full context digest (see
            :func:`repro.core.context.solve_context_digest`); equal keys
            mean the same question about the same graph.
        graph: the immutable CSR graph the solve ran on.
        variant: the Preference Cover variant solved.
        result: the solver output (stable ``selected`` / ``coverage`` /
            ``telemetry`` / ``context_digest`` contract).
        conditional: per-item conditional coverage ``I[v] / W(v)`` —
            the probability a request for item ``v`` is matched by the
            retained set (1.0 for retained items).
        retained_mask: boolean membership vector over dense indices.
        sequence: delta-feed position this snapshot incorporates.
        created_at: store-clock timestamp at construction (monotonic
            seconds by default; only differences are meaningful).
    """

    key: str
    graph: CSRGraph
    variant: Variant
    result: SolveResult
    conditional: np.ndarray
    retained_mask: np.ndarray
    sequence: int = 0
    created_at: float = 0.0

    @classmethod
    def build(
        cls,
        key: str,
        graph: CSRGraph,
        variant: Variant,
        result: SolveResult,
        *,
        sequence: int = 0,
        created_at: float = 0.0,
    ) -> "SolutionSnapshot":
        """Derive the query-time vectors from a fresh solve result.

        The conditional coverage is recomputed from the retained set by
        :func:`~repro.core.cover.item_coverage` rather than taken from
        ``result.coverage``, so snapshots built from *any* solver path
        (greedy, incremental, interrupted prefix) satisfy the serving
        layer's differential guarantee by construction.
        """
        conditional = item_coverage(graph, result.retained, variant)
        conditional.setflags(write=False)
        retained_mask = np.zeros(graph.n_items, dtype=bool)
        retained_mask[result.retained_indices] = True
        retained_mask.setflags(write=False)
        return cls(
            key=key,
            graph=graph,
            variant=variant,
            result=result,
            conditional=conditional,
            retained_mask=retained_mask,
            sequence=sequence,
            created_at=created_at,
        )

    # ------------------------------------------------------------------
    @property
    def retained(self) -> List[Hashable]:
        """Retained item ids in selection order."""
        return self.result.selected

    @property
    def cover(self) -> float:
        """The snapshot's achieved cover ``C(S)``."""
        return self.result.cover

    def index_of(self, item: Hashable) -> int:
        """Dense index of ``item`` (UnknownItemError when absent)."""
        return self.graph.index_of(item)

    def covered_probability(self, item: Hashable) -> float:
        """Probability a request for ``item`` is matched by the assortment."""
        return float(self.conditional[self.graph.index_of(item)])

    def covered_probability_many(self, items) -> np.ndarray:
        """Vectorized :meth:`covered_probability` over an item batch."""
        indices = np.fromiter(
            (self.graph.index_of(item) for item in items),
            dtype=np.int64,
        )
        return self.conditional[indices]

    def is_retained(self, item: Hashable) -> bool:
        """Whether ``item`` is in the retained set."""
        return bool(self.retained_mask[self.graph.index_of(item)])

    def top_alternatives(
        self, item: Hashable, limit: int = 5
    ) -> List[Tuple[Hashable, float]]:
        """Retained substitutes for ``item``, best acceptance first.

        O(out-degree of ``item``): scans the precomputed out-CSR row,
        keeps the retained targets and sorts that (tiny) slice by edge
        weight descending.  Retained items return an empty list — the
        request is served by the item itself.
        """
        index = self.graph.index_of(item)
        if self.retained_mask[index]:
            return []
        targets, weights = self.graph.out_edges(index)
        mask = self.retained_mask[targets]
        targets, weights = targets[mask], weights[mask]
        order = np.argsort(-weights, kind="stable")[:limit]
        return [
            (self.graph.items[int(t)], float(w))
            for t, w in zip(targets[order], weights[order])
        ]


class SolutionStore:
    """LRU+TTL cache of :class:`SolutionSnapshot`, keyed by context digest.

    Thread-safe; the lock guards only dict bookkeeping, so a ``get`` is
    O(1) regardless of snapshot sizes.  ``clock`` is injectable (it
    defaults to :func:`time.monotonic`) so tests drive TTL expiry
    deterministically instead of sleeping.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.clock = clock
        self.metrics = metrics
        self._lock = threading.Lock()
        self._snapshots: "OrderedDict[str, SolutionSnapshot]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    def now(self) -> float:
        """Current store-clock reading."""
        return self.clock()

    def get(
        self, key: str, *, record: bool = True
    ) -> Optional[SolutionSnapshot]:
        """The live snapshot under ``key``, or ``None`` (miss/expired).

        ``record=False`` skips the hit/miss tally — used for the second
        probe of a double-checked solve so one cold lookup counts one
        miss, not two.
        """
        with self._lock:
            snapshot = self._snapshots.get(key)
            if snapshot is not None and self.ttl_s is not None \
                    and self.clock() - snapshot.created_at > self.ttl_s:
                del self._snapshots[key]
                self.expirations += 1
                self._incr("serving.store.expirations")
                snapshot = None
            if snapshot is None:
                if record:
                    self.misses += 1
                    self._incr("serving.store.misses")
                return None
            self._snapshots.move_to_end(key)
            if record:
                self.hits += 1
                self._incr("serving.store.hits")
            return snapshot

    def put(self, snapshot: SolutionSnapshot) -> SolutionSnapshot:
        """Insert (or replace) a snapshot, evicting LRU beyond capacity."""
        with self._lock:
            self._snapshots[snapshot.key] = snapshot
            self._snapshots.move_to_end(snapshot.key)
            while len(self._snapshots) > self.capacity:
                self._snapshots.popitem(last=False)
                self.evictions += 1
                self._incr("serving.store.evictions")
        return snapshot

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` if present; True when something was removed."""
        with self._lock:
            return self._snapshots.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every snapshot (counters are kept)."""
        with self._lock:
            self._snapshots.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._snapshots

    def keys(self) -> List[str]:
        """Cached keys, least- to most-recently used."""
        with self._lock:
            return list(self._snapshots)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0 when never queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict:
        """Plain-python counter snapshot (JSON-serializable)."""
        with self._lock:
            size = len(self._snapshots)
        return {
            "size": size,
            "capacity": self.capacity,
            "ttl_s": self.ttl_s,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }

    def __repr__(self) -> str:
        return (
            f"SolutionStore(size={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
