"""Revenue-weighted Preference Cover (paper Section 7, future work).

The paper's base setting treats every sale as equally valuable (fixed
commission).  The natural extension weighs each matched request for item
``v`` by a per-item revenue ``r_v``, maximizing expected revenue::

    R(S) = sum_v r_v * W(v) * P(request for v matched by S)

Scaling node weights by nonnegative revenues preserves nonnegativity,
monotonicity and submodularity, so the same greedy machinery applies
with the identical ``(1 - 1/e)`` guarantee for the Independent variant —
the solver here simply runs :func:`repro.core.greedy.greedy_solve` on a
revenue-scaled copy of the graph.  Note the NPC-specific
``1 - (1 - k/n)^2`` bound relies on the VC reduction's node weights
summing to 1 only up to normalization, which scaling also preserves.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterable, Mapping, Union

import numpy as np

from .._compat import keyword_only_shim
from ..core.csr import CSRGraph, as_csr
from ..core.greedy import greedy_solve
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import SolverError

RevenueLike = Union[Mapping[Hashable, float], np.ndarray]


def _revenue_vector(csr: CSRGraph, revenues: RevenueLike) -> np.ndarray:
    """Resolve per-item revenues to a dense vector aligned with the CSR."""
    if isinstance(revenues, np.ndarray):
        vector = np.ascontiguousarray(revenues, dtype=np.float64)
        if vector.shape != (csr.n_items,):
            raise SolverError(
                f"revenue vector has shape {vector.shape}, expected "
                f"({csr.n_items},)"
            )
    else:
        vector = np.empty(csr.n_items, dtype=np.float64)
        for index, item in enumerate(csr.items):
            if item not in revenues:
                raise SolverError(f"no revenue given for item {item!r}")
            vector[index] = float(revenues[item])
    if np.any(vector < 0) or np.any(np.isnan(vector)):
        raise SolverError("revenues must be nonnegative numbers")
    return vector


def revenue_scaled_graph(graph, revenues: RevenueLike) -> CSRGraph:
    """A copy of ``graph`` with node weights multiplied by revenues.

    The resulting node weights no longer sum to one — they are expected
    revenue masses — which the solver machinery never requires.
    """
    csr = as_csr(graph)
    vector = _revenue_vector(csr, revenues)
    # The in-CSR arrays enumerate every edge exactly once, so together
    # with the reconstructed destination column they form a valid COO.
    return CSRGraph.from_arrays(
        csr.node_weight * vector,
        csr.in_src.copy(),
        _in_dst(csr),
        csr.in_weight.copy(),
        items=list(csr.items),
    )


def _in_dst(csr: CSRGraph) -> np.ndarray:
    """Destination index of every entry of the in-CSR arrays."""
    return np.repeat(
        np.arange(csr.n_items, dtype=np.int64), csr.in_degrees()
    )


@keyword_only_shim("k", "variant", "revenues")
def revenue_greedy_solve(
    graph,
    *,
    k: int,
    variant: "Variant | str",
    revenues: RevenueLike,
    strategy: str = "auto",
    tracer=None,
) -> SolveResult:
    """Greedy maximization of expected revenue under a size budget.

    Returns a :class:`SolveResult` whose ``cover`` field holds the
    expected revenue ``R(S)`` (not a probability) and whose ``coverage``
    array holds per-item expected revenue contributions; all other
    fields (``prefix_covers``, ``wall_time_s``, ``gain_evaluations``)
    are populated exactly as by ``greedy_solve``.
    """
    scaled = revenue_scaled_graph(graph, revenues)
    result = greedy_solve(
        scaled, k=k, variant=variant, strategy=strategy, tracer=tracer
    )
    return dataclasses.replace(result, strategy=f"revenue-{result.strategy}")


def expected_revenue(
    graph, retained: Iterable, variant: "Variant | str",
    revenues: RevenueLike,
) -> float:
    """Expected revenue ``R(S)`` of an arbitrary retained set."""
    from ..core.cover import coverage_vector

    csr = as_csr(graph)
    vector = _revenue_vector(csr, revenues)
    coverage = coverage_vector(csr, retained, variant)
    return float(np.dot(coverage, vector))
