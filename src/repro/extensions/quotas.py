"""Category quotas: Preference Cover under a partition-matroid constraint.

Real assortments are rarely free-form: an express warehouse must still
carry *some* of every department.  Modeling categories as a partition of
the items with a per-category ceiling turns the cardinality constraint
into a partition matroid, under which the greedy rule "take the best
affordable item" guarantees a ``1/2`` approximation for monotone
submodular objectives (Fisher–Nemhauser–Wolsey) — weaker than the
unconstrained ``1 - 1/e``, but still constant-factor, and in practice
nearly free on preference graphs.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from .._compat import keyword_only_shim
from ..core.csr import as_csr
from ..core.gain import GreedyState
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import SolverError, UnknownItemError
from ..observability import coerce_tracer


@keyword_only_shim("variant", "categories", "quotas")
def quota_greedy_solve(
    graph,
    *,
    variant: "Variant | str",
    categories: Mapping[Hashable, Hashable],
    quotas: Mapping[Hashable, int],
    k: Optional[int] = None,
    tracer=None,
) -> SolveResult:
    """Greedy Preference Cover with per-category ceilings.

    Args:
        graph: ``PreferenceGraph`` or ``CSRGraph``.
        variant: problem variant.
        categories: item id -> category label (every item must appear).
        quotas: category label -> maximum retained items from it.
            Categories absent from ``quotas`` are unconstrained.
        k: optional overall cap; defaults to the sum of the quotas
            (unconstrained categories then contribute freely up to
            their size, so an explicit ``k`` is recommended when any
            category is unconstrained).

    Returns a :class:`SolveResult`; ``result.k`` is the number actually
    retained (the quotas may bind before ``k`` is reached).
    """
    tracer = coerce_tracer(tracer)
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    n = csr.n_items

    category_of = np.empty(n, dtype=object)
    for index, item in enumerate(csr.items):
        if item not in categories:
            raise UnknownItemError(
                f"item {item!r} has no category assigned"
            )
        category_of[index] = categories[item]

    remaining: Dict[Hashable, float] = {}
    for category, quota in quotas.items():
        if quota < 0:
            raise SolverError(
                f"quota for category {category!r} must be >= 0, "
                f"got {quota}"
            )
        remaining[category] = quota

    if k is None:
        constrained_total = sum(quotas.values())
        unconstrained = sum(
            1 for index in range(n)
            if category_of[index] not in remaining
        )
        k = min(n, constrained_total + unconstrained)
    if k < 0 or k > n:
        raise SolverError(f"k={k} out of range [0, {n}]")

    state = GreedyState(csr, variant, tracer=tracer)
    gains = state.gains_all()
    blocked = np.zeros(n, dtype=bool)
    prefix_covers = [0.0]
    if tracer.enabled:
        tracer.event(
            "solve.start", solver="quota-greedy", variant=variant.value,
            k=k, n_items=n, n_quota_categories=len(remaining),
        )
    start = time.perf_counter()

    while state.size < k:
        masked = np.where(state.in_set | blocked, -np.inf, gains)
        best = int(np.argmax(masked))
        if masked[best] == -np.inf:
            break  # every category exhausted
        category = category_of[best]
        if category in remaining and remaining[category] <= 0:
            blocked[best] = True
            if tracer.enabled:
                tracer.incr("quota.blocked_candidates")
            continue
        # Commit via the shared accelerated bookkeeping.
        from ..core.greedy import accelerated_step

        _, gain = accelerated_step(state, gains, force=best, tracer=tracer)
        prefix_covers.append(state.cover)
        if tracer.enabled:
            tracer.iteration(
                state.size - 1, item=csr.items[best], node=best,
                gain=gain, cover=float(state.cover),
                strategy="quota-greedy", category=str(category),
            )
        if category in remaining:
            remaining[category] -= 1
            if remaining[category] <= 0:
                # Block the whole exhausted category at once.
                blocked |= np.asarray(
                    [category_of[i] == category for i in range(n)]
                )
                if tracer.enabled:
                    tracer.incr("quota.categories_exhausted")
    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.incr("solver.gain_evaluations", n)
        tracer.event(
            "solve.end", solver="quota-greedy", cover=float(state.cover),
            wall_time_s=elapsed, retained=state.size,
        )

    indices = state.retained_indices()
    return SolveResult(
        variant=variant,
        k=state.size,
        retained=[csr.items[i] for i in indices.tolist()],
        retained_indices=indices,
        cover=float(state.cover),
        coverage=state.coverage,
        item_ids=csr.items,
        prefix_covers=np.asarray(prefix_covers, dtype=np.float64),
        strategy="quota-greedy",
        wall_time_s=elapsed,
        gain_evaluations=n,
    )


def category_counts(result: SolveResult, categories: Mapping) -> Dict:
    """How many retained items fall in each category."""
    counts: Dict = {}
    for item in result.retained:
        category = categories[item]
        counts[category] = counts.get(category, 0) + 1
    return counts
