"""Storage-aware Preference Cover (paper Section 7, future work).

Replaces the cardinality budget ``k`` with a knapsack budget: each item
has a storage cost ``c_v`` and the retained set must satisfy
``sum_{v in S} c_v <= budget``.  Maximizing a monotone submodular
function under a knapsack constraint admits the classic cost-benefit
greedy: run both the plain-gain greedy and the gain-per-cost greedy and
keep the better solution, which guarantees a ``(1 - 1/sqrt(e)) ~ 0.39``
factor (Leskovec et al.'s CELF analysis); the full
partial-enumeration scheme reaching ``1 - 1/e`` is cubic and out of
scope for big-data settings, mirroring the paper's scalability-first
stance.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Union

import numpy as np

from .._compat import keyword_only_shim
from ..core.csr import CSRGraph, as_csr
from ..core.gain import GreedyState
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import SolverError
from ..observability import coerce_tracer

CostLike = Union[Mapping[Hashable, float], np.ndarray]


def _cost_vector(csr: CSRGraph, costs: CostLike) -> np.ndarray:
    """Resolve per-item costs to a dense positive vector."""
    if isinstance(costs, np.ndarray):
        vector = np.ascontiguousarray(costs, dtype=np.float64)
        if vector.shape != (csr.n_items,):
            raise SolverError(
                f"cost vector has shape {vector.shape}, expected "
                f"({csr.n_items},)"
            )
    else:
        vector = np.empty(csr.n_items, dtype=np.float64)
        for index, item in enumerate(csr.items):
            if item not in costs:
                raise SolverError(f"no storage cost given for {item!r}")
            vector[index] = float(costs[item])
    if np.any(vector <= 0) or np.any(np.isnan(vector)):
        raise SolverError("storage costs must be positive numbers")
    return vector


def _greedy_under_budget(
    csr: CSRGraph,
    variant: Variant,
    cost: np.ndarray,
    budget: float,
    *,
    per_cost: bool,
) -> tuple:
    """One greedy pass; scores are gain or gain/cost, skipping unaffordable.

    Returns ``(state, evaluations)`` where ``evaluations`` counts the
    marginal-gain computations the pass performed.
    """
    state = GreedyState(csr, variant)
    remaining = budget
    evaluations = 0
    while True:
        gains = state.gains_all()
        evaluations += csr.n_items - state.size
        affordable = (~state.in_set) & (cost <= remaining + 1e-12)
        if not affordable.any():
            break
        scores = gains / cost if per_cost else gains
        scores = np.where(affordable, scores, -np.inf)
        best = int(np.argmax(scores))
        if gains[best] <= 0.0:
            break
        state.add_node(best)
        remaining -= float(cost[best])
    return state, evaluations


@keyword_only_shim("budget", "variant", "costs")
def capacity_greedy_solve(
    graph,
    *,
    budget: float,
    variant: "Variant | str",
    costs: CostLike,
    tracer=None,
) -> SolveResult:
    """Cost-benefit greedy under a storage budget.

    Runs the plain-gain and gain-per-cost greedy passes and returns the
    better cover.  ``SolveResult.k`` reports the number of retained
    items; the spent budget is derivable from the costs.  The result is
    populated exactly like ``greedy_solve``'s (``prefix_covers``,
    ``wall_time_s`` and ``gain_evaluations`` included).
    """
    tracer = coerce_tracer(tracer)
    variant = Variant.coerce(variant)
    csr = as_csr(graph)
    cost = _cost_vector(csr, costs)
    if budget < 0:
        raise SolverError(f"budget must be nonnegative, got {budget}")

    import time

    if tracer.enabled:
        tracer.event(
            "solve.start", solver="capacity-greedy",
            variant=variant.value, budget=budget, n_items=csr.n_items,
        )
    start = time.perf_counter()
    plain, plain_evals = _greedy_under_budget(
        csr, variant, cost, budget, per_cost=False
    )
    ratio, ratio_evals = _greedy_under_budget(
        csr, variant, cost, budget, per_cost=True
    )
    winner = plain if plain.cover >= ratio.cover else ratio
    label = "plain-gain" if winner is plain else "gain-per-cost"
    evaluations = plain_evals + ratio_evals

    indices = winner.retained_indices()
    prefix = np.zeros(len(indices) + 1, dtype=np.float64)
    # Reconstruct prefix covers by replaying the order (cheap, O(kD)).
    replay = GreedyState(csr, variant)
    for position, node in enumerate(indices.tolist()):
        gained = replay.add_node(node)
        prefix[position + 1] = replay.cover
        if tracer.enabled:
            tracer.iteration(
                position, item=csr.items[node], node=int(node),
                gain=float(gained), cover=float(replay.cover),
                strategy="capacity-greedy", pass_won=label,
                cost=float(cost[node]),
            )
    elapsed = time.perf_counter() - start
    if tracer.enabled:
        tracer.incr("solver.gain_evaluations", evaluations)
        tracer.event(
            "solve.end", solver="capacity-greedy", pass_won=label,
            cover=float(winner.cover), wall_time_s=elapsed,
            retained=int(winner.size),
            budget_spent=float(cost[indices].sum()),
        )
    return SolveResult(
        variant=variant,
        k=int(winner.size),
        retained=[csr.items[i] for i in indices.tolist()],
        retained_indices=indices,
        cover=float(winner.cover),
        coverage=winner.coverage,
        item_ids=csr.items,
        prefix_covers=prefix,
        strategy=f"capacity-greedy({label})",
        wall_time_s=elapsed,
        gain_evaluations=evaluations,
    )


def budget_spent(
    graph, retained: Iterable, costs: CostLike
) -> float:
    """Total storage cost of a retained set."""
    csr = as_csr(graph)
    cost = _cost_vector(csr, costs)
    from ..core.cover import resolve_indices

    indices = resolve_indices(csr, retained)
    return float(cost[indices].sum())
