"""Incremental maintenance of a greedy solution (paper Section 7).

The paper names "incremental maintenance in response to changes over
time" as the direction the authors are pursuing.  This module implements
the natural prefix-reuse scheme exploiting the greedy order's stability:

* keep the solved instance and its ordered greedy solution;
* on a weight update (node popularity shift, edge probability change,
  edge insertion/removal), *replay* the previous selection order on the
  updated graph, keeping each previously chosen node while it is still a
  maximum-gain choice (within a tolerance), and fall back to fresh
  greedy selection from the first divergence on.

The result is always *exactly* a valid greedy solution for the updated
graph (same guarantees as solving from scratch, including tie behavior
within the tolerance); the savings come from skipping re-selection of
the stable prefix, which for small perturbations is most of the set.
"""

from __future__ import annotations

import time
from typing import Hashable, List, Optional

import numpy as np

from ..core.context import solve_context_digest
from ..core.csr import as_csr
from ..core.gain import GreedyState
from ..core.graph import PreferenceGraph
from ..core.greedy import accelerated_step, prepare_accelerated_gains
from ..core.result import SolveResult
from ..core.variants import Variant
from ..errors import SolverError, UnknownItemError
from ..observability import coerce_tracer


class IncrementalSolver:
    """Maintains a greedy Preference Cover solution across graph updates.

    The graph is held in the mutable dictionary representation (updates
    are point-writes); solving snapshots it to CSR.  Typical use::

        solver = IncrementalSolver(graph, k=100, variant="independent")
        first = solver.solve()
        solver.update_node_weight("item-7", 0.002)
        second = solver.resolve()          # reuses the stable prefix
        print(solver.last_reused_prefix)   # how much work was saved
    """

    def __init__(
        self,
        graph: PreferenceGraph,
        k: int,
        variant: "Variant | str",
        *,
        tolerance: float = 1e-12,
        tracer=None,
        validate: bool = True,
    ) -> None:
        if not isinstance(graph, PreferenceGraph):
            raise SolverError(
                "IncrementalSolver needs the mutable PreferenceGraph "
                "representation"
            )
        self.graph = graph
        self.k = k
        self.variant = Variant.coerce(variant)
        self.tolerance = tolerance
        self.tracer = coerce_tracer(tracer)
        self.validate = validate
        self._previous_order: Optional[List[Hashable]] = None
        self.last_reused_prefix = 0
        self.last_result: Optional[SolveResult] = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_node_weight(self, item: Hashable, weight: float) -> None:
        """Set a node's request probability.

        The caller is responsible for keeping total weight ~1 (e.g.
        shifting mass between items); ``resolve`` revalidates.
        """
        if item not in self.graph:
            raise UnknownItemError(item)
        self.graph.add_item(item, weight)

    def update_edge_weight(
        self, source: Hashable, target: Hashable, weight: float
    ) -> None:
        """Set (or insert) an edge's acceptance probability."""
        self.graph.add_edge(source, target, weight)

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Remove an edge."""
        self.graph.remove_edge(source, target)

    def add_item(self, item: Hashable, weight: float) -> None:
        """Introduce a new item."""
        if item in self.graph:
            raise SolverError(f"item {item!r} already exists")
        self.graph.add_item(item, weight)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """Solve from scratch and remember the order for later reuse."""
        result = self._solve_with_replay(previous=None)
        return result

    def resolve(self) -> SolveResult:
        """Re-solve after updates, reusing the stable greedy prefix."""
        return self._solve_with_replay(previous=self._previous_order)

    def _solve_with_replay(
        self, previous: Optional[List[Hashable]]
    ) -> SolveResult:
        if self.validate:
            self.graph.validate(self.variant)
        csr = as_csr(self.graph)
        n = csr.n_items
        k = self.k
        if k < 0 or k > n:
            raise SolverError(f"k={k} out of range [0, {n}]")

        tracer = self.tracer
        start = time.perf_counter()
        state = GreedyState(csr, self.variant, tracer=tracer)
        gains = prepare_accelerated_gains(state)
        prefix_covers = np.zeros(k + 1, dtype=np.float64)
        reused = 0

        if previous:
            for item in previous:
                if state.size >= k:
                    break
                try:
                    candidate = csr.index_of(item)
                except UnknownItemError:
                    break  # item disappeared; diverge here
                if state.in_set[candidate]:
                    break
                best_gain = float(
                    np.max(np.where(state.in_set, -np.inf, gains))
                )
                if gains[candidate] + self.tolerance < best_gain:
                    break  # no longer a maximum-gain choice
                accelerated_step(state, gains, force=candidate, tracer=tracer)
                prefix_covers[state.size] = state.cover
                reused += 1
                if tracer.enabled:
                    tracer.iteration(
                        state.size - 1, item=item, node=candidate,
                        cover=float(state.cover),
                        strategy="greedy-incremental", reused=True,
                    )

        while state.size < k:
            best, gain = accelerated_step(state, gains, tracer=tracer)
            prefix_covers[state.size] = state.cover
            if tracer.enabled:
                tracer.iteration(
                    state.size - 1, item=csr.items[best], node=best,
                    gain=gain, cover=float(state.cover),
                    strategy="greedy-incremental", reused=False,
                )

        elapsed = time.perf_counter() - start
        if tracer.enabled:
            tracer.incr("incremental.reused_prefix", reused)
            tracer.event(
                "solve.end", solver="greedy-incremental",
                cover=float(state.cover), wall_time_s=elapsed,
                reused_prefix=reused,
            )
        indices = state.retained_indices()
        result = SolveResult(
            variant=self.variant,
            k=k,
            retained=[csr.items[i] for i in indices.tolist()],
            retained_indices=indices,
            cover=float(state.cover),
            coverage=state.coverage,
            item_ids=csr.items,
            prefix_covers=prefix_covers,
            strategy="greedy-incremental",
            wall_time_s=elapsed,
            gain_evaluations=n,
            context_digest=solve_context_digest(csr, self.variant, k=k),
        )
        self._previous_order = list(result.retained)
        self.last_reused_prefix = reused
        self.last_result = result
        return result
