"""Extensions implementing the paper's stated future-work directions."""

from .capacity import budget_spent, capacity_greedy_solve
from .incremental import IncrementalSolver
from .quotas import category_counts, quota_greedy_solve
from .revenue import (
    expected_revenue,
    revenue_greedy_solve,
    revenue_scaled_graph,
)

__all__ = [
    "IncrementalSolver",
    "budget_spent",
    "capacity_greedy_solve",
    "category_counts",
    "expected_revenue",
    "quota_greedy_solve",
    "revenue_greedy_solve",
    "revenue_scaled_graph",
]
