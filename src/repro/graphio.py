"""Preference-graph serialization.

Two on-disk formats:

* **JSON** — human-readable, item ids preserved as strings; the format
  the CLI's ``build-graph``/``solve`` commands exchange.
* **NPZ** — numpy's compressed archive holding the CSR arrays directly;
  the right choice for million-node graphs (loads without touching
  per-item Python objects).  Item ids are stored as a string array.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .core.csr import CSRGraph, as_csr
from .core.graph import PreferenceGraph
from .errors import ClickstreamFormatError

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSON (dictionary-backed graphs)
# ----------------------------------------------------------------------
def write_graph_json(graph: PreferenceGraph, path: PathLike) -> None:
    """Write a preference graph as ``{"nodes": {...}, "edges": [...]}``.

    Item ids are coerced to strings (JSON object keys must be strings);
    reading back therefore yields string ids.
    """
    payload = {
        "nodes": {str(item): graph.node_weight(item) for item in graph},
        "edges": [
            [str(source), str(target), weight]
            for source, target, weight in graph.edges()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_graph_json(path: PathLike) -> PreferenceGraph:
    """Read a graph written by :func:`write_graph_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ClickstreamFormatError(
                f"{path}: invalid JSON: {exc}"
            ) from exc
    if "nodes" not in payload or "edges" not in payload:
        raise ClickstreamFormatError(
            f"{path}: graph JSON must have 'nodes' and 'edges'"
        )
    return PreferenceGraph.from_weights(
        payload["nodes"],
        edges=[(s, t, w) for s, t, w in payload["edges"]],
    )


# ----------------------------------------------------------------------
# NPZ (array-backed graphs)
# ----------------------------------------------------------------------
def write_graph_npz(graph, path: PathLike) -> None:
    """Write a graph's CSR arrays to a compressed ``.npz`` archive."""
    csr = as_csr(graph)
    np.savez_compressed(
        path,
        node_weight=csr.node_weight,
        edge_src=csr.in_src,
        edge_dst=np.repeat(
            np.arange(csr.n_items, dtype=np.int64), csr.in_degrees()
        ),
        edge_weight=csr.in_weight,
        items=np.asarray([str(item) for item in csr.items], dtype=object),
    )


def read_graph_npz(path: PathLike) -> CSRGraph:
    """Read a graph written by :func:`write_graph_npz`.

    Item ids come back as strings (they were stringified on write).
    """
    with np.load(path, allow_pickle=True) as archive:
        required = {
            "node_weight", "edge_src", "edge_dst", "edge_weight", "items",
        }
        missing = required - set(archive.files)
        if missing:
            raise ClickstreamFormatError(
                f"{path}: npz archive missing arrays: {sorted(missing)}"
            )
        return CSRGraph.from_arrays(
            archive["node_weight"],
            archive["edge_src"],
            archive["edge_dst"],
            archive["edge_weight"],
            items=list(archive["items"]),
        )
