"""Choosing the problem variant from the data (paper Section 5.2).

The paper gives two empirical fitness tests:

* **Normalized fit** — the variant's premise is "at most one alternative
  per request".  The test: the fraction of purchasing sessions that
  clicked at most one distinct alternative must be at least 90%.
* **Independent fit** — the premise is independence between
  alternatives.  The test: for every desired item, compute the
  *normalized mutual information* (Strehl & Ghosh) between the
  click-indicators of every pair of its alternatives, average per item,
  then take the node-weight-weighted average over items; below 0.1 the
  Independent variant is a fitting model.

:func:`recommend_variant` runs both tests and applies the paper's
thresholds; ties (both fit) prefer Normalized, whose semantics are the
stronger claim, and when neither fits the Independent variant is
returned as the fallback with ``fits=False``.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Hashable, List, Optional

from ..core.variants import Variant
from ..errors import AdaptationError
from ..clickstream.models import Clickstream

#: Paper thresholds (Section 5.2).
NORMALIZED_FIT_THRESHOLD = 0.9
INDEPENDENT_FIT_THRESHOLD = 0.1


@dataclass(frozen=True)
class VariantRecommendation:
    """Outcome of the variant-selection analysis.

    Attributes:
        variant: the recommended variant.
        fits: whether the recommended variant actually passed its
            fitness test (False means neither test passed and the
            Independent variant is returned as the fallback).
        normalized_fit: fraction of purchasing sessions with at most one
            distinct clicked alternative.
        independence_score: weighted average pairwise NMI (lower means
            more independent); ``None`` when no item had two or more
            co-observable alternatives.
    """

    variant: Variant
    fits: bool
    normalized_fit: float
    independence_score: Optional[float]


def normalized_fit(clickstream: Clickstream) -> float:
    """Fraction of purchasing sessions with <= 1 distinct alternative."""
    total = 0
    at_most_one = 0
    for session in clickstream:
        if session.purchase is None:
            continue
        total += 1
        if len(session.alternatives()) <= 1:
            at_most_one += 1
    if total == 0:
        raise AdaptationError("clickstream contains no purchasing sessions")
    return at_most_one / total


def _binary_entropy(p: float) -> float:
    """Entropy (nats) of a Bernoulli(p) variable."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log(p) + (1.0 - p) * math.log(1.0 - p))


def _pair_nmi(n11: int, n10: int, n01: int, n00: int) -> float:
    """Normalized mutual information of two binary click indicators.

    ``n11`` counts sessions where both alternatives were clicked, etc.
    Uses the geometric-mean normalization of Strehl & Ghosh; returns 0
    when either marginal is degenerate (constant variables carry no
    dependence information).
    """
    total = n11 + n10 + n01 + n00
    if total == 0:
        return 0.0
    px = (n11 + n10) / total
    py = (n11 + n01) / total
    hx = _binary_entropy(px)
    hy = _binary_entropy(py)
    if hx == 0.0 or hy == 0.0:
        return 0.0
    mutual = 0.0
    cells = (
        (n11 / total, px * py),
        (n10 / total, px * (1 - py)),
        (n01 / total, (1 - px) * py),
        (n00 / total, (1 - px) * (1 - py)),
    )
    for joint, product in cells:
        if joint > 0.0 and product > 0.0:
            mutual += joint * math.log(joint / product)
    return max(0.0, mutual) / math.sqrt(hx * hy)


def independence_score(
    clickstream: Clickstream,
    *,
    min_purchases: int = 5,
    max_pairs_per_item: int = 50,
) -> Optional[float]:
    """Weighted average pairwise NMI between alternatives (paper's measure).

    For each desired item with at least ``min_purchases`` purchasing
    sessions and at least two distinct clicked alternatives, compute the
    average NMI over alternative pairs (capped at ``max_pairs_per_item``
    for very wide items), then average over items weighted by purchase
    counts (so rarely bought items do not skew the score).  Returns
    ``None`` when no item qualifies.
    """
    per_item_sessions: Dict[Hashable, List[frozenset]] = defaultdict(list)
    purchase_counts: Counter = Counter()
    for session in clickstream:
        if session.purchase is None:
            continue
        purchase_counts[session.purchase] += 1
        per_item_sessions[session.purchase].append(
            frozenset(session.alternatives())
        )

    weighted_sum = 0.0
    weight_total = 0.0
    for item, session_sets in per_item_sessions.items():
        if purchase_counts[item] < min_purchases:
            continue
        alternatives = sorted(
            {alt for clicked in session_sets for alt in clicked},
            key=repr,
        )
        if len(alternatives) < 2:
            continue
        pair_values = []
        for b, c in combinations(alternatives, 2):
            n11 = n10 = n01 = n00 = 0
            for clicked in session_sets:
                b_in = b in clicked
                c_in = c in clicked
                if b_in and c_in:
                    n11 += 1
                elif b_in:
                    n10 += 1
                elif c_in:
                    n01 += 1
                else:
                    n00 += 1
            pair_values.append(_pair_nmi(n11, n10, n01, n00))
            if len(pair_values) >= max_pairs_per_item:
                break
        if not pair_values:
            continue
        item_score = sum(pair_values) / len(pair_values)
        weighted_sum += purchase_counts[item] * item_score
        weight_total += purchase_counts[item]

    if weight_total == 0.0:
        return None
    return weighted_sum / weight_total


def recommend_variant(
    clickstream: Clickstream,
    *,
    normalized_threshold: float = NORMALIZED_FIT_THRESHOLD,
    independence_threshold: float = INDEPENDENT_FIT_THRESHOLD,
    min_purchases: int = 5,
) -> VariantRecommendation:
    """Apply both fitness tests and recommend a variant.

    The Normalized test is checked first (its premise is the more
    specific one); otherwise the Independence test; otherwise the
    Independent variant is returned as the fallback with ``fits=False``,
    matching the paper's position that other dependency schemes are
    future work.
    """
    norm_fit = normalized_fit(clickstream)
    indep_score = independence_score(
        clickstream, min_purchases=min_purchases
    )
    if norm_fit >= normalized_threshold:
        return VariantRecommendation(
            variant=Variant.NORMALIZED,
            fits=True,
            normalized_fit=norm_fit,
            independence_score=indep_score,
        )
    if indep_score is not None and indep_score < independence_threshold:
        return VariantRecommendation(
            variant=Variant.INDEPENDENT,
            fits=True,
            normalized_fit=norm_fit,
            independence_score=indep_score,
        )
    return VariantRecommendation(
        variant=Variant.INDEPENDENT,
        fits=False,
        normalized_fit=norm_fit,
        independence_score=indep_score,
    )
