"""Data Adaptation Engine: clickstream -> preference graph + variant choice."""

from .engine import AdaptationConfig, DataAdaptationEngine, build_preference_graph
from .online import OnlineAdaptationEngine
from .variant_selection import (
    INDEPENDENT_FIT_THRESHOLD,
    NORMALIZED_FIT_THRESHOLD,
    VariantRecommendation,
    independence_score,
    normalized_fit,
    recommend_variant,
)

__all__ = [
    "AdaptationConfig",
    "DataAdaptationEngine",
    "INDEPENDENT_FIT_THRESHOLD",
    "NORMALIZED_FIT_THRESHOLD",
    "OnlineAdaptationEngine",
    "VariantRecommendation",
    "build_preference_graph",
    "independence_score",
    "normalized_fit",
    "recommend_variant",
]
