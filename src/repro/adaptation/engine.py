"""The Data Adaptation Engine (paper Section 5.2, Figure 2 left block).

Builds a preference graph from a clickstream of clicks and purchases per
session, following the paper's construction exactly:

* **nodes** are items; the node weight is the item's share of all
  purchases (the purchased item in a fully-stocked store is the desired
  item, so purchase share estimates request probability);
* an **edge** ``A -> B`` exists iff some session purchased ``A`` and
  clicked ``B``; its weight is the fraction of ``A``-purchasing sessions
  in which ``B`` was clicked — clicks proxy willingness to buy as an
  alternative;
* clicks on the purchased item itself are ignored, as are browse-only
  sessions (no purchase means no revealed desired item);
* under the **Normalized** variant, a session that clicked ``t > 1``
  distinct alternatives contributes ``1/t`` of a click to each (the
  paper's normalization), which guarantees each node's outgoing weights
  sum to at most one.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from ..core.graph import PreferenceGraph
from ..core.variants import Variant
from ..errors import AdaptationError
from ..observability import coerce_tracer
from ..clickstream.models import Clickstream


@dataclass(frozen=True)
class AdaptationConfig:
    """Settings of the Data Adaptation Engine.

    Attributes:
        variant: which variant's weighting rule to apply (Normalized
            triggers the ``1/t`` click splitting).
        include_unpurchased: also add never-purchased items as
            zero-weight nodes (they can still serve as alternatives and
            be retained).  Default False: the paper's graphs contain the
            purchasable catalog.
        min_edge_sessions: discard edges supported by fewer purchasing
            sessions than this (noise control for rarely bought items;
            the paper notes such noisy edges have negligible influence
            but pruning keeps graphs small).
        min_edge_weight: discard edges lighter than this after weighting.
        correction_factor: multiply every edge weight by this factor in
            (0, 1].  Section 5.2 notes clicks *overestimate* the actual
            willingness to buy an alternative and suggests "normalizing
            the edge weights by a corrective factor" learned from richer
            signals (e.g. dwell time); this is that hook.
        laplace_alpha: add-alpha shrinkage of edge weights — the weight
            becomes ``mass / (purchases + alpha)``, pulling estimates
            from rarely purchased items (few observations, high
            variance) toward zero while leaving well-observed items
            nearly untouched.
    """

    variant: Variant = Variant.INDEPENDENT
    include_unpurchased: bool = False
    min_edge_sessions: int = 1
    min_edge_weight: float = 0.0
    correction_factor: float = 1.0
    laplace_alpha: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.correction_factor <= 1.0):
            raise AdaptationError(
                f"correction_factor must be in (0, 1], got "
                f"{self.correction_factor}"
            )
        if self.laplace_alpha < 0.0:
            raise AdaptationError(
                f"laplace_alpha must be >= 0, got {self.laplace_alpha}"
            )


class DataAdaptationEngine:
    """Clickstream -> preference graph, per the paper's recipe."""

    def __init__(self, config: Optional[AdaptationConfig] = None) -> None:
        self.config = config or AdaptationConfig()

    def build_graph(
        self, clickstream: Clickstream, *, tracer=None
    ) -> PreferenceGraph:
        """Construct the preference graph for ``clickstream``.

        Raises :class:`AdaptationError` when the stream contains no
        purchases (node weights would be undefined).  When a ``tracer``
        is supplied the engine records session/edge counters under the
        ``adaptation.*`` metric prefix.
        """
        tracer = coerce_tracer(tracer)
        config = self.config
        purchase_counts: Counter = Counter()
        # click_mass[(A, B)]: (weighted) number of A-purchasing sessions
        # that clicked B;  session_support[(A, B)]: raw session count.
        click_mass: Dict[Tuple[Hashable, Hashable], float] = defaultdict(float)
        session_support: Counter = Counter()
        click_only_items = set()
        n_sessions = 0

        for session in clickstream:
            n_sessions += 1
            if session.purchase is None:
                continue
            desired = session.purchase
            purchase_counts[desired] += 1
            alternatives = session.alternatives()
            if not alternatives:
                continue
            if config.variant is Variant.NORMALIZED:
                weight = 1.0 / len(alternatives)
            else:
                weight = 1.0
            for clicked in alternatives:
                click_mass[(desired, clicked)] += weight
                session_support[(desired, clicked)] += 1
                click_only_items.add(clicked)

        total_purchases = sum(purchase_counts.values())
        if total_purchases == 0:
            raise AdaptationError(
                "clickstream contains no purchasing sessions; cannot "
                "estimate item popularity"
            )

        graph = PreferenceGraph()
        for item, count in purchase_counts.items():
            graph.add_item(item, count / total_purchases)
        if config.include_unpurchased:
            for item in click_only_items:
                if item not in graph:
                    graph.add_item(item, 0.0)

        edges_kept = 0
        for (desired, clicked), mass in click_mass.items():
            if clicked not in graph or desired not in graph:
                continue  # endpoint excluded (never purchased)
            if session_support[(desired, clicked)] < config.min_edge_sessions:
                continue
            weight = config.correction_factor * mass / (
                purchase_counts[desired] + config.laplace_alpha
            )
            if weight <= config.min_edge_weight:
                continue
            graph.add_edge(desired, clicked, min(weight, 1.0))
            edges_kept += 1
        if tracer.enabled:
            tracer.incr("adaptation.sessions", n_sessions)
            tracer.incr("adaptation.purchasing_sessions", total_purchases)
            tracer.incr("adaptation.candidate_edges", len(click_mass))
            tracer.incr("adaptation.edges_kept", edges_kept)
            tracer.incr("adaptation.items", graph.n_items)
            tracer.event(
                "adaptation.graph_built", items=graph.n_items,
                edges=edges_kept, sessions=n_sessions,
                purchasing_sessions=total_purchases,
            )
        return graph


def build_preference_graph(
    clickstream: Clickstream,
    variant: "Variant | str" = Variant.INDEPENDENT,
    *,
    include_unpurchased: bool = False,
    min_edge_sessions: int = 1,
    min_edge_weight: float = 0.0,
) -> PreferenceGraph:
    """One-call convenience wrapper around :class:`DataAdaptationEngine`."""
    config = AdaptationConfig(
        variant=Variant.coerce(variant),
        include_unpurchased=include_unpurchased,
        min_edge_sessions=min_edge_sessions,
        min_edge_weight=min_edge_weight,
    )
    return DataAdaptationEngine(config).build_graph(clickstream)
