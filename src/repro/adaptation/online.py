"""Streaming graph construction: the adaptation engine as an accumulator.

Production clickstreams arrive continuously; rebuilding the preference
graph from scratch for every refresh is wasteful.
:class:`OnlineAdaptationEngine` keeps the sufficient statistics of the
Section 5.2 construction — per-item purchase counts and per-edge
(weighted) click counts — and can emit the current preference graph at
any moment.  A snapshot after observing sessions ``s_1..s_n`` is
identical to the batch engine's output on the same sessions (tested),
and observation is O(clicks) per session.

A decay factor supports sliding-window semantics: with ``decay < 1``
every existing count is multiplied by it once per :meth:`new_period`,
so old behavior fades — the streaming counterpart of the drifting-market
scenario.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, Optional, Tuple

from ..core.graph import PreferenceGraph
from ..core.variants import Variant
from ..errors import AdaptationError
from ..clickstream.models import Clickstream, Session
from .engine import AdaptationConfig


class OnlineAdaptationEngine:
    """Incremental counterpart of the batch Data Adaptation Engine."""

    def __init__(
        self,
        config: Optional[AdaptationConfig] = None,
        *,
        decay: float = 1.0,
    ) -> None:
        if not (0.0 < decay <= 1.0):
            raise AdaptationError(f"decay must be in (0, 1], got {decay}")
        self.config = config or AdaptationConfig()
        self.decay = decay
        self._purchases: Dict[Hashable, float] = defaultdict(float)
        self._click_mass: Dict[Tuple[Hashable, Hashable], float] = (
            defaultdict(float)
        )
        self._session_support: Dict[Tuple[Hashable, Hashable], float] = (
            defaultdict(float)
        )
        self._click_only: set = set()
        self._observed_sessions = 0

    # ------------------------------------------------------------------
    @property
    def observed_sessions(self) -> int:
        """Total sessions observed (including browse-only ones)."""
        return self._observed_sessions

    def observe(self, session: Session) -> None:
        """Fold one session into the statistics (browse-only is a no-op)."""
        self._observed_sessions += 1
        if session.purchase is None:
            return
        desired = session.purchase
        self._purchases[desired] += 1.0
        alternatives = session.alternatives()
        if not alternatives:
            return
        if self.config.variant is Variant.NORMALIZED:
            weight = 1.0 / len(alternatives)
        else:
            weight = 1.0
        for clicked in alternatives:
            self._click_mass[(desired, clicked)] += weight
            self._session_support[(desired, clicked)] += 1.0
            self._click_only.add(clicked)

    def observe_all(self, sessions: Iterable[Session]) -> None:
        """Fold many sessions (a Clickstream works directly)."""
        for session in sessions:
            self.observe(session)

    def new_period(self) -> None:
        """Apply the decay factor once (sliding-window semantics)."""
        if self.decay >= 1.0:
            return
        for key in list(self._purchases):
            self._purchases[key] *= self.decay
        for key in list(self._click_mass):
            self._click_mass[key] *= self.decay
            self._session_support[key] *= self.decay

    # ------------------------------------------------------------------
    def snapshot(self) -> PreferenceGraph:
        """The preference graph implied by the statistics so far.

        Equivalent to running the batch engine over every observed
        session (scaled by decay, when enabled).
        """
        config = self.config
        total = sum(self._purchases.values())
        if total <= 0:
            raise AdaptationError(
                "no purchasing sessions observed yet; cannot snapshot"
            )
        graph = PreferenceGraph()
        for item, count in self._purchases.items():
            graph.add_item(item, count / total)
        if config.include_unpurchased:
            for item in self._click_only:
                if item not in graph:
                    graph.add_item(item, 0.0)
        for (desired, clicked), mass in self._click_mass.items():
            if desired not in graph or clicked not in graph:
                continue
            support = self._session_support[(desired, clicked)]
            if support < config.min_edge_sessions:
                continue
            weight = config.correction_factor * mass / (
                self._purchases[desired] + config.laplace_alpha
            )
            if weight <= config.min_edge_weight:
                continue
            graph.add_edge(desired, clicked, min(weight, 1.0))
        return graph
