"""Stdlib HTTP sidecar exposing metrics and health endpoints.

:class:`MetricsExporter` runs a :class:`http.server.ThreadingHTTPServer`
on a daemon thread and serves three endpoints:

* ``GET /metrics`` — the registry's Prometheus text exposition
  (rendered fresh per scrape from ``registry.snapshot()``);
* ``GET /healthz`` — liveness: 200 as long as the process answers;
* ``GET /readyz`` — readiness: delegates to the ``readiness`` callable
  (200 when it returns a truthy verdict, 503 otherwise, with a JSON
  detail body either way).  With no callable configured readiness
  equals liveness.

``repro serve --metrics-port N`` wires the serving runtime's verdict in
(tier at most *stale* and breaker not open); port ``0`` binds an
ephemeral port — read it back from :attr:`MetricsExporter.port`, which
the CLI prints so smoke tests can scrape without racing on a fixed
port.  No third-party dependencies; scrapes never block the serving
path (each reads one consistent snapshot under the registry locks).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping, Optional, Tuple

from .exposition import render_exposition
from .metrics import MetricsRegistry

#: ``readiness`` verdict: (ready, detail-dict).
ReadinessProbe = Callable[[], Tuple[bool, Mapping]]


class _ExporterHandler(BaseHTTPRequestHandler):
    """Request handler bound to one exporter instance via the server."""

    server_version = "repro-exporter/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter: "MetricsExporter" = self.server.exporter  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_exposition(exporter.registry.snapshot())
            self._reply(
                200, body.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            self._reply_json(200, {"status": "ok"})
        elif path == "/readyz":
            ready, detail = exporter.readiness_verdict()
            payload = {"status": "ready" if ready else "unready"}
            payload.update(detail)
            self._reply_json(200 if ready else 503, payload)
        else:
            self._reply_json(404, {"error": f"unknown path {path!r}"})

    def _reply_json(self, status: int, payload: Mapping) -> None:
        self._reply(
            status,
            (json.dumps(payload) + "\n").encode("utf-8"),
            "application/json",
        )

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class MetricsExporter:
    """Background HTTP server exposing one :class:`MetricsRegistry`.

    Usable as a context manager::

        with MetricsExporter(registry, port=0) as exporter:
            print(exporter.url)          # http://127.0.0.1:<port>
            ...
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        readiness: Optional[ReadinessProbe] = None,
    ) -> None:
        self.registry = registry
        self.readiness = readiness
        self._server = ThreadingHTTPServer((host, port), _ExporterHandler)
        self._server.daemon_threads = True
        self._server.exporter = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 requests)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the exporter (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def readiness_verdict(self) -> Tuple[bool, Mapping]:
        """Evaluate the readiness probe (ready + empty detail if none).

        A crashing probe reports unready rather than a 500 — the
        exporter must stay scrapeable while the thing it watches
        misbehaves.
        """
        if self.readiness is None:
            return True, {}
        try:
            return self.readiness()
        except Exception as exc:  # pragma: no cover - defensive
            return False, {"error": f"{type(exc).__name__}: {exc}"}

    def start(self) -> "MetricsExporter":
        """Start serving on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the server and release the port."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
