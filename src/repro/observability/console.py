"""Operator console: the ``repro top`` dashboard and ``repro events`` tail.

``repro top`` polls a :class:`~repro.observability.exporter.MetricsExporter`
``/metrics`` endpoint and renders a curses-free ANSI dashboard — current
degradation tier, breaker state, qps (scrape-over-scrape counter
delta), per-tier p50/p99 latency estimated from the cumulative bucket
series, snapshot staleness and quarantine totals.  ``repro events``
tails the structured JSON-lines log written by
:mod:`repro.observability.logs`, optionally following the file and
filtering to one trace id (matching either a record's own ``trace_id``
or its batch fan-in ``trace_ids`` group).

Everything here is read-only over the wire formats — the console can
run on a different host from the serving process.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from .exposition import LabelSet, bucket_quantile, parse_exposition
from .logs import record_matches_trace

#: ANSI escapes used by the dashboard (empty strings when color is off).
_ANSI = {
    "reset": "\x1b[0m", "bold": "\x1b[1m", "dim": "\x1b[2m",
    "green": "\x1b[32m", "yellow": "\x1b[33m", "red": "\x1b[31m",
    "clear": "\x1b[H\x1b[2J",
}

_TIER_NAMES = {0: "fresh", 1: "stale", 2: "static", 3: "shed"}
_TIER_COLOR = {0: "green", 1: "yellow", 2: "yellow", 3: "red"}
_BREAKER_NAMES = {0: "closed", 1: "open", 2: "half-open"}
_BREAKER_COLOR = {0: "green", 1: "red", 2: "yellow"}


def fetch_metrics(
    url: str, timeout_s: float = 2.0
) -> Dict[str, Dict[LabelSet, float]]:
    """Scrape ``url``'s ``/metrics`` endpoint into parsed series.

    ``url`` may be the exporter base (``http://host:port``) or the full
    ``/metrics`` path.
    """
    if not url.startswith(("http://", "https://")):
        url = f"http://{url}"
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return parse_exposition(response.read().decode("utf-8"))


def _series_value(
    series: Dict[str, Dict[LabelSet, float]], name: str
) -> Optional[float]:
    rows = series.get(name)
    if not rows:
        return None
    return rows.get((), next(iter(rows.values())))


def _sum_series(
    series: Dict[str, Dict[LabelSet, float]], name: str
) -> float:
    return sum(series.get(name, {}).values())


def _latency_by_tier(
    series: Dict[str, Dict[LabelSet, float]]
) -> Dict[str, List[Tuple[float, float]]]:
    """Cumulative latency buckets grouped by their ``tier`` label."""
    grouped: Dict[str, List[Tuple[float, float]]] = {}
    rows = series.get("repro_serving_answer_latency_seconds_bucket", {})
    for labels, value in rows.items():
        label_map = dict(labels)
        bound = label_map.get("le")
        if bound is None:
            continue
        tier = label_map.get("tier", "all")
        upper = float("inf") if bound == "+Inf" else float(bound)
        grouped.setdefault(tier, []).append((upper, value))
    for buckets in grouped.values():
        buckets.sort(key=lambda pair: pair[0])
    return grouped


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.2f}s"


def render_dashboard(
    series: Dict[str, Dict[LabelSet, float]],
    previous: Optional[Dict[str, Dict[LabelSet, float]]] = None,
    interval_s: float = 1.0,
    *,
    color: bool = True,
) -> str:
    """One dashboard frame from a scrape (and optionally the prior one).

    ``previous`` + ``interval_s`` turn cumulative counters into rates
    (qps); with a single scrape the rate column shows totals instead.
    """
    def paint(text: str, *styles: str) -> str:
        if not color:
            return text
        prefix = "".join(_ANSI[style] for style in styles)
        return f"{prefix}{text}{_ANSI['reset']}"

    lines: List[str] = []
    tier_value = _series_value(series, "repro_serving_tier")
    tier_code = int(tier_value) if tier_value is not None else None
    tier_text = _TIER_NAMES.get(tier_code, "unknown")
    breaker_value = _series_value(series, "repro_serving_breaker_state")
    breaker_code = int(breaker_value) if breaker_value is not None else None
    breaker_text = _BREAKER_NAMES.get(breaker_code, "unknown")

    queries = _sum_series(series, "repro_serving_queries_total")
    if previous is not None and interval_s > 0:
        delta = queries - _sum_series(previous, "repro_serving_queries_total")
        rate_text = f"{max(0.0, delta) / interval_s:,.1f} qps"
    else:
        rate_text = f"{queries:,.0f} queries total"

    lines.append(paint("repro serving", "bold"))
    lines.append(
        "  tier: "
        + paint(tier_text, _TIER_COLOR.get(tier_code, "dim"), "bold")
        + "    breaker: "
        + paint(breaker_text, _BREAKER_COLOR.get(breaker_code, "dim"), "bold")
        + f"    load: {rate_text}"
    )

    staleness = _series_value(series, "repro_serving_staleness_seconds")
    retries = _sum_series(series, "repro_serving_retries_total")
    refresh_failures = _sum_series(
        series, "repro_serving_refresh_failures_total"
    )
    quarantined = _sum_series(series, "repro_ingest_quarantined_total")
    deadline_misses = _sum_series(
        series, "repro_serving_deadline_exceeded_total"
    )
    lines.append(
        f"  staleness: {_fmt_seconds(staleness)}    "
        f"retries: {retries:.0f}    "
        f"refresh failures: {refresh_failures:.0f}"
    )
    lines.append(
        f"  quarantined: {quarantined:.0f}    "
        f"deadline misses: {deadline_misses:.0f}"
    )

    grouped = _latency_by_tier(series)
    if grouped:
        lines.append("")
        lines.append(
            paint(f"  {'tier':<8s} {'count':>8s} {'p50':>10s} "
                  f"{'p99':>10s}", "dim")
        )
        for tier in sorted(grouped):
            buckets = grouped[tier]
            count = buckets[-1][1] if buckets else 0
            lines.append(
                f"  {tier:<8s} {count:>8.0f} "
                f"{_fmt_seconds(bucket_quantile(buckets, 0.50)):>10s} "
                f"{_fmt_seconds(bucket_quantile(buckets, 0.99)):>10s}"
            )

    occupancy = series.get("repro_serving_batch_occupancy_count", {})
    if occupancy:
        batches = sum(occupancy.values())
        members = _sum_series(series, "repro_serving_batch_occupancy_sum")
        mean = members / batches if batches else 0.0
        lines.append("")
        lines.append(
            f"  batches: {batches:.0f} sealed, "
            f"{mean:.1f} queries/batch mean"
        )
    return "\n".join(lines)


def top(
    url: str,
    *,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    color: bool = True,
    stream: TextIO = sys.stdout,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """Poll ``url`` and repaint the dashboard until interrupted.

    ``iterations`` bounds the loop (``repro top --once`` passes 1 and
    skips the screen-clear so the frame composes with shell pipelines).
    Returns a process exit code: 0, or 1 when the exporter was never
    reachable.
    """
    previous = None
    previous_at = None
    frames = 0
    reachable = False
    try:
        while iterations is None or frames < iterations:
            try:
                series = fetch_metrics(url)
                reachable = True
                now = clock()
                elapsed = (
                    now - previous_at
                    if previous_at is not None
                    else interval_s
                )
                frame = render_dashboard(
                    series, previous, elapsed, color=color
                )
                previous, previous_at = series, now
            except (urllib.error.URLError, OSError, ValueError) as exc:
                frame = f"repro top: {url} unreachable ({exc})"
            if color and iterations != 1:
                stream.write(_ANSI["clear"])
            stream.write(frame + "\n")
            stream.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0 if reachable else 1


def iter_events(
    path: str,
    *,
    follow: bool = False,
    trace_id: Optional[str] = None,
    component: Optional[str] = None,
    poll_s: float = 0.2,
    sleep=time.sleep,
    stop=lambda: False,
) -> Iterator[dict]:
    """Yield parsed records from a structured log, oldest first.

    ``follow`` keeps the file open and polls for appended lines (à la
    ``tail -f``) until ``stop()`` returns true.  Malformed lines are
    skipped.  Filters: ``trace_id`` keeps records matching
    :func:`~repro.observability.logs.record_matches_trace`;
    ``component`` keeps records from one emitter.
    """
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            line = handle.readline()
            if not line:
                if not follow or stop():
                    return
                sleep(poll_s)
                continue
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if trace_id and not record_matches_trace(record, trace_id):
                continue
            if component and record.get("component") != component:
                continue
            yield record


def format_event(record: dict, *, color: bool = True) -> str:
    """One human-scannable line per record (full JSON stays on disk)."""
    level = record.get("level", "info")
    level_style = {
        "error": "red", "warning": "yellow", "debug": "dim",
    }.get(level)
    timestamp = record.get("ts")
    clock = (
        time.strftime("%H:%M:%S", time.localtime(timestamp))
        if isinstance(timestamp, (int, float)) else "--:--:--"
    )
    head = (
        f"{clock} {record.get('component', '?'):<10s} "
        f"{record.get('event', '?'):<24s}"
    )
    if color and level_style:
        head = f"{_ANSI[level_style]}{head}{_ANSI['reset']}"
    trace = record.get("trace_id")
    detail = " ".join(
        f"{key}={record[key]}"
        for key in record
        if key not in (
            "ts", "level", "component", "event", "trace_id", "span_id",
            "trace_ids",
        )
    )
    parts = [head]
    if trace:
        parts.append(f"trace={trace}")
    group = record.get("trace_ids")
    if group and len(group) > 1:
        # Fan-in groups can hold hundreds of ids; the count is what a
        # scanning operator needs (the full list stays in the JSON).
        parts.append(f"fan_in={len(group)}")
    if detail:
        parts.append(detail)
    return " ".join(parts)


def tail_events(
    path: str,
    *,
    follow: bool = False,
    trace_id: Optional[str] = None,
    component: Optional[str] = None,
    color: bool = True,
    stream: TextIO = sys.stdout,
) -> int:
    """``repro events`` driver: print matching records as they arrive."""
    try:
        for record in iter_events(
            path, follow=follow, trace_id=trace_id, component=component
        ):
            stream.write(format_event(record, color=color) + "\n")
            stream.flush()
    except FileNotFoundError:
        stream.write(f"repro events: no log at {path}\n")
        return 1
    except KeyboardInterrupt:
        pass
    return 0
