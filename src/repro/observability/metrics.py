"""Counters, timers, histograms and gauges for solver instrumentation.

:class:`MetricsRegistry` is a name-keyed collection of four instrument
kinds:

* **counters** — monotonically accumulated totals (gain evaluations,
  heap pops, sessions parsed);
* **timers** — accumulated wall-clock duration plus call count, fed
  either explicitly or through the ``time()`` context manager;
* **histograms** — streaming summaries (count / min / max / mean /
  sum) of per-observation values plus fixed cumulative buckets for
  Prometheus-style exposition and a bounded reservoir for p50/p99;
* **gauges** — point-in-time values (degradation tier, breaker state).

Instruments may carry **labels** (``registry.observe("latency", dt,
labels={"tier": "fresh"})``): each distinct label set is its own
instrument, keyed by the flattened ``name{k="v",...}`` form, so the
per-tier latency breakdown the serving SLOs need is one ``labels=``
argument away from the unlabeled call.

Concurrent writes are safe — the serving frontend's batcher thread and
the runtime's refresh path write the same registry at once.  Counters
stripe their increments per thread (lock-free hot path, exact totals);
timers, histograms and gauges serialize updates behind per-instrument
locks; instrument creation is lock-guarded.  Every export path
(``benchmarks/results/metrics.json``,
the Prometheus exposition, the legacy ``to_dict``) serializes from the
single :meth:`MetricsRegistry.snapshot` method.

Everything here is dependency-free standard-library code so the
instrumentation layer can be imported from the innermost solver loops
without widening the package's import graph.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
from contextlib import contextmanager
from threading import get_ident
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

#: Default histogram bucket upper bounds (seconds-oriented: the serving
#: SLO histograms are latencies).  Instruments with a different shape
#: (batch sizes, retry counts) pass explicit ``buckets=``.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Bucket bounds suited to small-integer distributions (batch sizes,
#: occupancy counts, retry attempts).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


def flatten_name(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Canonical display key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total.

    Increments are striped per thread: each writer updates only its own
    slot in ``_parts`` (one atomic-under-the-GIL ``dict`` read-modify
    of a key no other thread touches), so concurrent increments are
    never lost and the hot path takes no lock.  Reads sum the stripes —
    a read racing a write may miss that single in-flight increment, but
    totals are exact once writers quiesce.
    """

    __slots__ = ("name", "labels", "_parts")

    def __init__(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._parts: Dict[int, float] = {}

    def incr(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be fractional, must not be negative)."""
        parts = self._parts
        ident = get_ident()
        parts[ident] = parts.get(ident, 0.0) + amount

    @property
    def value(self) -> float:
        """The exact running total across all writer threads."""
        return sum(self._parts.copy().values())

    def __repr__(self) -> str:
        return f"Counter({flatten_name(self.name, self.labels)}" \
               f"={self.value:g})"


class Timer:
    """Accumulated wall-clock duration with a call count."""

    __slots__ = ("name", "labels", "total_s", "count", "_lock")

    def __init__(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.total_s = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one timed interval of ``seconds``."""
        with self._lock:
            self.total_s += seconds
            self.count += 1

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        """Context manager recording the enclosed block's duration."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - start)

    @property
    def mean_s(self) -> float:
        """Mean seconds per recorded interval (0 when never recorded)."""
        return self.total_s / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Timer({flatten_name(self.name, self.labels)}: "
            f"total={self.total_s:.6f}s count={self.count})"
        )


class Histogram:
    """Streaming summary statistics, fixed buckets, approximate percentiles.

    Exact ``count`` / ``total`` / ``min`` / ``max`` are maintained for
    every observation, along with per-bucket observation counts over the
    fixed ``buckets`` upper bounds (rendered cumulatively by the
    Prometheus exposition).  Percentiles come from a bounded ring buffer
    of the most recent :attr:`RESERVOIR_SIZE` observations, so memory
    stays O(1) and the quantiles track the *current* regime — which is
    what the serving layer's p50/p99 latency readouts want.
    """

    #: Ring-buffer capacity backing :meth:`percentile`.
    RESERVOIR_SIZE = 512

    __slots__ = (
        "name", "labels", "count", "total", "min", "max",
        "buckets", "_bucket_counts", "_reservoir", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        bounds = tuple(
            sorted(DEFAULT_BUCKETS if buckets is None else buckets)
        )
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._bucket_counts = [0] * len(bounds)
        self._reservoir: list = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            if len(self._reservoir) < self.RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                self._reservoir[self.count % self.RESERVOIR_SIZE] = value
            slot = bisect.bisect_left(self.buckets, value)
            if slot < len(self._bucket_counts):
                self._bucket_counts[slot] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, Prometheus-style.

        The implicit ``+Inf`` bucket is *not* included — it always
        equals :attr:`count`.
        """
        with self._lock:
            rows = []
            running = 0
            for bound, bucket_count in zip(
                self.buckets, self._bucket_counts
            ):
                running += bucket_count
                rows.append((bound, running))
            return rows

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile ``q`` in [0, 100] over the reservoir.

        ``q`` outside [0, 100] raises :class:`ValueError` — always,
        even when the histogram is empty.  An empty histogram returns
        ``None``.  Exact while fewer than :attr:`RESERVOIR_SIZE` values
        were observed; afterwards computed over the most recent window
        of that size.
        """
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._reservoir:
                return None
            ordered = sorted(self._reservoir)
        rank = min(
            len(ordered) - 1, max(0, int(round(q / 100.0 * len(ordered))) - 1)
        ) if q > 0 else 0
        return ordered[rank]

    @property
    def p50(self) -> Optional[float]:
        """Median of the reservoir window (None when empty)."""
        return self.percentile(50.0)

    @property
    def p99(self) -> Optional[float]:
        """99th percentile of the reservoir window (None when empty)."""
        return self.percentile(99.0)

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s summary into this one (registry merges)."""
        if not other.count:
            return
        with self._lock:
            self.count += other.count
            self.total += other.total
            if self.min is None or (
                other.min is not None and other.min < self.min
            ):
                self.min = other.min
            if self.max is None or (
                other.max is not None and other.max > self.max
            ):
                self.max = other.max
            if self.buckets == other.buckets:
                for index, bucket_count in enumerate(other._bucket_counts):
                    self._bucket_counts[index] += bucket_count
            for value in other._reservoir:
                if len(self._reservoir) < Histogram.RESERVOIR_SIZE:
                    self._reservoir.append(value)

    def __repr__(self) -> str:
        return (
            f"Histogram({flatten_name(self.name, self.labels)}: "
            f"count={self.count} mean={self.mean:g})"
        )


class Gauge:
    """A point-in-time value (last write wins).

    Unlike a :class:`Counter`, a gauge represents *current state* — the
    serving runtime's degradation tier, the circuit breaker's position —
    so only the most recent :meth:`set` is meaningful.  ``updates``
    counts how many times the value changed, which is how tier/breaker
    transition totals are read back out.
    """

    __slots__ = ("name", "labels", "value", "updates", "_lock")

    def __init__(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value: Optional[float] = None
        self.updates = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value (counted only when it changes)."""
        value = float(value)
        with self._lock:
            if self.value != value:
                self.updates += 1
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({flatten_name(self.name, self.labels)}" \
               f"={self.value})"


class MetricsRegistry:
    """A named collection of counters, timers, histograms and gauges.

    Instruments are created on first use (``registry.counter("x")``)
    and shared by name (plus label set) afterwards; the convenience
    methods ``incr`` / ``observe`` / ``record_time`` / ``set_gauge`` do
    the lookup inline so call sites stay one-liners.  Creation is
    lock-guarded and every instrument locks its own updates, so the
    registry is safe to write from the serving frontend's event loop,
    the runtime's refresh thread and the exporter's scrape thread at
    once.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._lock = threading.Lock()

    # -- instrument access ---------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        key = flatten_name(name, labels)
        try:
            return self._counters[key]
        except KeyError:
            with self._lock:
                if key not in self._counters:
                    self._counters[key] = Counter(name, labels)
                return self._counters[key]

    def timer(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Timer:
        """The timer for ``name`` + ``labels`` (created on first use)."""
        key = flatten_name(name, labels)
        try:
            return self._timers[key]
        except KeyError:
            with self._lock:
                if key not in self._timers:
                    self._timers[key] = Timer(name, labels)
                return self._timers[key]

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on first use).

        ``buckets`` applies only at creation; later lookups of an
        existing instrument ignore it.
        """
        key = flatten_name(name, labels)
        try:
            return self._histograms[key]
        except KeyError:
            with self._lock:
                if key not in self._histograms:
                    self._histograms[key] = Histogram(
                        name, labels, buckets=buckets
                    )
                return self._histograms[key]

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        key = flatten_name(name, labels)
        try:
            return self._gauges[key]
        except KeyError:
            with self._lock:
                if key not in self._gauges:
                    self._gauges[key] = Gauge(name, labels)
                return self._gauges[key]

    # -- one-line recording --------------------------------------------
    def incr(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Increment counter ``name`` by ``amount``.

        Inlined striped-counter fast path: this sits on the serving
        warm-read path, where the budget is tens of nanoseconds.
        """
        try:
            parts = self._counters[
                name if labels is None else flatten_name(name, labels)
            ]._parts
        except KeyError:
            parts = self.counter(name, labels)._parts
        ident = get_ident()
        parts[ident] = parts.get(ident, 0.0) + amount

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        *,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        """Fold ``value`` into histogram ``name``."""
        self.histogram(name, labels, buckets=buckets).observe(value)

    def record_time(
        self,
        name: str,
        seconds: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Record a ``seconds``-long interval on timer ``name``."""
        self.timer(name, labels).record(seconds)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Set gauge ``name`` to its current ``value``."""
        self.gauge(name, labels).set(value)

    def time(self, name: str, labels: Optional[Mapping[str, str]] = None):
        """Context manager timing the enclosed block on timer ``name``."""
        return self.timer(name, labels).time()

    # -- aggregation / export ------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one, by name."""
        for counter in list(other._counters.values()):
            self.counter(counter.name, counter.labels).incr(counter.value)
        for timer in list(other._timers.values()):
            mine = self.timer(timer.name, timer.labels)
            with mine._lock:
                mine.total_s += timer.total_s
                mine.count += timer.count
        for histogram in list(other._histograms.values()):
            self.histogram(
                histogram.name, histogram.labels,
                buckets=histogram.buckets,
            ).merge_from(histogram)
        for gauge in list(other._gauges.values()):
            if gauge.value is not None:
                self.gauge(gauge.name, gauge.labels).set(gauge.value)

    def __bool__(self) -> bool:
        return bool(
            self._counters or self._timers or self._histograms
            or self._gauges
        )

    def snapshot(self) -> Dict:
        """The one canonical, JSON-serializable dump of every instrument.

        Every export path — the benchmark harness's
        ``benchmarks/results/metrics.json``, the Prometheus exposition
        (:func:`repro.observability.exposition.render_exposition`) and
        the legacy :meth:`to_dict` projection — serializes from this
        method, so the schemas can never drift apart.

        Shape (each section sorted by flattened name)::

            {"counters":   [{"name", "labels", "value"}, ...],
             "timers":     [{"name", "labels", "total_s", "count"}, ...],
             "histograms": [{"name", "labels", "count", "sum", "min",
                             "max", "mean", "p50", "p99",
                             "buckets": [[le, cumulative], ...]}, ...],
             "gauges":     [{"name", "labels", "value", "updates"}, ...]}
        """
        with self._lock:
            counters = sorted(self._counters.items())
            timers = sorted(self._timers.items())
            histograms = sorted(self._histograms.items())
            gauges = sorted(self._gauges.items())
        return {
            "counters": [
                {
                    "name": counter.name,
                    "labels": dict(counter.labels),
                    "value": counter.value,
                }
                for _, counter in counters
            ],
            "timers": [
                {
                    "name": timer.name,
                    "labels": dict(timer.labels),
                    "total_s": timer.total_s,
                    "count": timer.count,
                }
                for _, timer in timers
            ],
            "histograms": [
                {
                    "name": histogram.name,
                    "labels": dict(histogram.labels),
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "mean": histogram.mean,
                    "p50": histogram.p50,
                    "p99": histogram.p99,
                    "buckets": [
                        [bound, cumulative]
                        for bound, cumulative
                        in histogram.cumulative_buckets()
                    ],
                }
                for _, histogram in histograms
            ],
            "gauges": [
                {
                    "name": gauge.name,
                    "labels": dict(gauge.labels),
                    "value": gauge.value,
                    "updates": gauge.updates,
                }
                for _, gauge in gauges
            ],
        }

    def to_dict(self) -> Dict:
        """Legacy flat projection of :meth:`snapshot` (stable key order).

        Labeled instruments appear under their flattened
        ``name{k="v"}`` key.
        """
        snapshot = self.snapshot()
        return {
            "counters": {
                flatten_name(row["name"], row["labels"]): row["value"]
                for row in snapshot["counters"]
            },
            "timers": {
                flatten_name(row["name"], row["labels"]): {
                    "total_s": row["total_s"],
                    "count": row["count"],
                }
                for row in snapshot["timers"]
            },
            "histograms": {
                flatten_name(row["name"], row["labels"]): {
                    "count": row["count"],
                    "mean": row["mean"],
                    "min": row["min"],
                    "max": row["max"],
                    "p50": row["p50"],
                    "p99": row["p99"],
                }
                for row in snapshot["histograms"]
            },
            "gauges": {
                flatten_name(row["name"], row["labels"]): {
                    "value": row["value"],
                    "updates": row["updates"],
                }
                for row in snapshot["gauges"]
            },
        }

    def to_json(self, **kwargs) -> str:
        """The legacy :meth:`to_dict` projection as a JSON string.

        For the full bucketed dump use
        ``json.dumps(registry.snapshot())`` — that is what the
        benchmark harness and the Prometheus exposition consume.
        """
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        """Human-readable aligned dump of every instrument."""
        data = self.to_dict()
        lines = []
        if data["counters"]:
            lines.append("counters:")
            for name, value in data["counters"].items():
                lines.append(f"  {name:<40s} {value:g}")
        if data["timers"]:
            lines.append("timers:")
            for name, row in data["timers"].items():
                lines.append(
                    f"  {name:<40s} {row['total_s']:.6f}s "
                    f"({row['count']} calls)"
                )
        if data["histograms"]:
            lines.append("histograms:")
            for name, row in data["histograms"].items():
                lines.append(
                    f"  {name:<40s} count={row['count']} "
                    f"mean={row['mean']:g} min={row['min']:g} "
                    f"max={row['max']:g}"
                    if row["count"]
                    else f"  {name:<40s} (empty)"
                )
        if data["gauges"]:
            lines.append("gauges:")
            for name, row in data["gauges"].items():
                lines.append(
                    f"  {name:<40s} {row['value']:g} "
                    f"({row['updates']} updates)"
                    if row["value"] is not None
                    else f"  {name:<40s} (unset)"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"timers={len(self._timers)}, "
            f"histograms={len(self._histograms)}, "
            f"gauges={len(self._gauges)})"
        )
