"""Counters, timers and histograms for solver instrumentation.

:class:`MetricsRegistry` is a flat, name-keyed collection of three
instrument kinds:

* **counters** — monotonically accumulated totals (gain evaluations,
  heap pops, sessions parsed);
* **timers** — accumulated wall-clock duration plus call count, fed
  either explicitly or through the ``time()`` context manager;
* **histograms** — streaming summaries (count / min / max / mean /
  sum) of per-observation values such as per-iteration update widths
  or per-worker receive latencies.  Only the summary statistics are
  retained, so a histogram costs O(1) memory no matter how many values
  it absorbs.

Everything here is dependency-free standard-library code so the
instrumentation layer can be imported from the innermost solver loops
without widening the package's import graph.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def incr(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be fractional, must not be negative)."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Timer:
    """Accumulated wall-clock duration with a call count."""

    __slots__ = ("name", "total_s", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        """Record one timed interval of ``seconds``."""
        self.total_s += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        """Context manager recording the enclosed block's duration."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - start)

    @property
    def mean_s(self) -> float:
        """Mean seconds per recorded interval (0 when never recorded)."""
        return self.total_s / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Timer({self.name}: total={self.total_s:.6f}s "
            f"count={self.count})"
        )


class Histogram:
    """Streaming summary statistics plus approximate percentiles.

    Exact ``count`` / ``total`` / ``min`` / ``max`` are maintained for
    every observation.  Percentiles come from a bounded ring buffer of
    the most recent :attr:`RESERVOIR_SIZE` observations, so memory stays
    O(1) and the quantiles track the *current* regime — which is what
    the serving layer's p50/p99 latency readouts want.
    """

    #: Ring-buffer capacity backing :meth:`percentile`.
    RESERVOIR_SIZE = 512

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: list = []

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            self._reservoir[self.count % self.RESERVOIR_SIZE] = value
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile ``q`` in [0, 100] over the reservoir.

        ``None`` when the histogram is empty.  Exact while fewer than
        :attr:`RESERVOIR_SIZE` values were observed; afterwards computed
        over the most recent window of that size.
        """
        if not self._reservoir:
            return None
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._reservoir)
        rank = min(
            len(ordered) - 1, max(0, int(round(q / 100.0 * len(ordered))) - 1)
        ) if q > 0 else 0
        return ordered[rank]

    @property
    def p50(self) -> Optional[float]:
        """Median of the reservoir window (None when empty)."""
        return self.percentile(50.0)

    @property
    def p99(self) -> Optional[float]:
        """99th percentile of the reservoir window (None when empty)."""
        return self.percentile(99.0)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: count={self.count} "
            f"mean={self.mean:g})"
        )


class Gauge:
    """A point-in-time value (last write wins).

    Unlike a :class:`Counter`, a gauge represents *current state* — the
    serving runtime's degradation tier, the circuit breaker's position —
    so only the most recent :meth:`set` is meaningful.  ``updates``
    counts how many times the value changed, which is how tier/breaker
    transition totals are read back out.
    """

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value (counted only when it changes)."""
        value = float(value)
        if self.value != value:
            self.updates += 1
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class MetricsRegistry:
    """A named collection of counters, timers, histograms and gauges.

    Instruments are created on first use (``registry.counter("x")``)
    and shared by name afterwards; the convenience methods ``incr`` /
    ``observe`` / ``record_time`` do the lookup inline so call sites
    stay one-liners.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}

    # -- instrument access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        try:
            return self._counters[name]
        except KeyError:
            instrument = self._counters[name] = Counter(name)
            return instrument

    def timer(self, name: str) -> Timer:
        """The timer registered under ``name`` (created on first use)."""
        try:
            return self._timers[name]
        except KeyError:
            instrument = self._timers[name] = Timer(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        try:
            return self._histograms[name]
        except KeyError:
            instrument = self._histograms[name] = Histogram(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        try:
            return self._gauges[name]
        except KeyError:
            instrument = self._gauges[name] = Gauge(name)
            return instrument

    # -- one-line recording --------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).incr(amount)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    def record_time(self, name: str, seconds: float) -> None:
        """Record a ``seconds``-long interval on timer ``name``."""
        self.timer(name).record(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its current ``value``."""
        self.gauge(name).set(value)

    def time(self, name: str):
        """Context manager timing the enclosed block on timer ``name``."""
        return self.timer(name).time()

    # -- aggregation / export ------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one, by name."""
        for name, counter in other._counters.items():
            self.counter(name).incr(counter.value)
        for name, timer in other._timers.items():
            mine = self.timer(name)
            mine.total_s += timer.total_s
            mine.count += timer.count
        for name, histogram in other._histograms.items():
            mine = self.histogram(name)
            if histogram.count:
                mine.count += histogram.count
                mine.total += histogram.total
                if mine.min is None or (
                    histogram.min is not None and histogram.min < mine.min
                ):
                    mine.min = histogram.min
                if mine.max is None or (
                    histogram.max is not None and histogram.max > mine.max
                ):
                    mine.max = histogram.max
                for value in histogram._reservoir:
                    if len(mine._reservoir) < Histogram.RESERVOIR_SIZE:
                        mine._reservoir.append(value)
        for name, gauge in other._gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)

    def __bool__(self) -> bool:
        return bool(
            self._counters or self._timers or self._histograms
            or self._gauges
        )

    def to_dict(self) -> Dict:
        """Plain-python snapshot (stable key order, JSON-serializable)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "timers": {
                name: {
                    "total_s": self._timers[name].total_s,
                    "count": self._timers[name].count,
                }
                for name in sorted(self._timers)
            },
            "histograms": {
                name: {
                    "count": self._histograms[name].count,
                    "mean": self._histograms[name].mean,
                    "min": self._histograms[name].min,
                    "max": self._histograms[name].max,
                    "p50": self._histograms[name].p50,
                    "p99": self._histograms[name].p99,
                }
                for name in sorted(self._histograms)
            },
            "gauges": {
                name: {
                    "value": self._gauges[name].value,
                    "updates": self._gauges[name].updates,
                }
                for name in sorted(self._gauges)
            },
        }

    def to_json(self, **kwargs) -> str:
        """The :meth:`to_dict` snapshot as a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        """Human-readable aligned dump of every instrument."""
        lines = []
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:<40s} {self._counters[name].value:g}")
        if self._timers:
            lines.append("timers:")
            for name in sorted(self._timers):
                timer = self._timers[name]
                lines.append(
                    f"  {name:<40s} {timer.total_s:.6f}s "
                    f"({timer.count} calls)"
                )
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                lines.append(
                    f"  {name:<40s} count={histogram.count} "
                    f"mean={histogram.mean:g} min={histogram.min:g} "
                    f"max={histogram.max:g}"
                    if histogram.count
                    else f"  {name:<40s} (empty)"
                )
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                gauge = self._gauges[name]
                lines.append(
                    f"  {name:<40s} {gauge.value:g} "
                    f"({gauge.updates} updates)"
                    if gauge.value is not None
                    else f"  {name:<40s} (unset)"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"timers={len(self._timers)}, "
            f"histograms={len(self._histograms)}, "
            f"gauges={len(self._gauges)})"
        )
