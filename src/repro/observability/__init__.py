"""Dependency-free solver observability: metrics, traces, telemetry.

The subsystem has two halves:

* :class:`MetricsRegistry` — named counters, timers and histograms;
* :class:`SolverTrace` — an ordered per-iteration/per-stage event
  stream that owns a registry, with JSONL export.

Solvers accept any tracer-shaped object; the default
:data:`NULL_TRACER` (an instance of :class:`NullTracer`) makes every
recording call a no-op so un-instrumented runs pay ~zero cost.  The
facade :func:`repro.solve` wires a tracer through the dispatch and
attaches the resulting :class:`Telemetry` to ``SolveResult.telemetry``.

See ``docs/observability.md`` for the event schema and metric names.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .trace import (
    NULL_TRACER,
    NullTracer,
    SolverTrace,
    Telemetry,
    TraceEvent,
    coerce_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SolverTrace",
    "Telemetry",
    "Timer",
    "TraceEvent",
    "coerce_tracer",
]
