"""Dependency-free operations plane: metrics, traces, logs, exposition.

The subsystem has four halves:

* :class:`MetricsRegistry` — named, optionally labeled counters,
  timers, histograms and gauges, thread-safe, with one canonical
  ``snapshot()`` feeding every export path;
* :class:`SolverTrace` — an ordered per-iteration/per-stage event
  stream that owns a registry, with JSONL export;
* :mod:`~repro.observability.logs` — structured JSON-lines logging
  with context-var :class:`TraceContext` correlation (silent unless
  configured);
* :mod:`~repro.observability.exposition` /
  :class:`~repro.observability.exporter.MetricsExporter` — Prometheus
  text rendering and the ``/metrics`` / ``/healthz`` / ``/readyz``
  HTTP sidecar, plus the ``repro top`` / ``repro events`` console in
  :mod:`~repro.observability.console`.

Solvers accept any tracer-shaped object; the default
:data:`NULL_TRACER` (an instance of :class:`NullTracer`) makes every
recording call a no-op so un-instrumented runs pay ~zero cost.  The
facade :func:`repro.solve` wires a tracer through the dispatch and
attaches the resulting :class:`Telemetry` to ``SolveResult.telemetry``.

See ``docs/observability.md`` for the metric catalogue, log record
schema and endpoint contract.
"""

from .exporter import MetricsExporter
from .exposition import parse_exposition, render_exposition
from .logs import (
    EventLogger,
    TraceContext,
    configure_logging,
    current_trace,
    current_trace_id,
    get_logger,
    logging_enabled,
    new_trace_id,
    reset_logging,
    span,
)
from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    SolverTrace,
    Telemetry,
    TraceEvent,
    coerce_tracer,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLogger",
    "Gauge",
    "Histogram",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SolverTrace",
    "Telemetry",
    "Timer",
    "TraceContext",
    "TraceEvent",
    "coerce_tracer",
    "configure_logging",
    "current_trace",
    "current_trace_id",
    "get_logger",
    "logging_enabled",
    "new_trace_id",
    "parse_exposition",
    "render_exposition",
    "reset_logging",
    "span",
]
