"""Prometheus text-format rendering of a :class:`MetricsRegistry` snapshot.

:func:`render_exposition` turns the canonical
:meth:`~repro.observability.metrics.MetricsRegistry.snapshot` dump into
the Prometheus text exposition format (version 0.0.4):

* counters become ``repro_<name>_total``;
* timers become summaries — ``_sum`` (seconds) and ``_count``;
* histograms become cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` / ``_count``;
* gauges are exported as-is (unset gauges are skipped).

Metric names are sanitized to ``[a-zA-Z0-9_]``, prefixed with
``repro_``, and a trailing ``_s`` duration suffix is spelled out as
``_seconds`` per Prometheus naming conventions.  Labels recorded on the
instrument are rendered inline and merged with the histogram ``le``
label.

:func:`parse_exposition` is the inverse used by ``repro top`` and the
smoke tests: it reads the text format back into a flat
``{name: {labels_tuple: value}}`` mapping, and
:func:`bucket_quantile` interpolates quantiles from cumulative bucket
series so the dashboard can show p50/p99 without raw observations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Prefix stamped on every exported series.
NAMESPACE = "repro"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")
_SERIES_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted metric name onto a Prometheus name.

    ``serving.answer_latency_s`` → ``repro_serving_answer_latency_seconds``.
    """
    flat = _INVALID_CHARS.sub("_", name)
    if flat.endswith("_s"):
        flat = flat[:-2] + "_seconds"
    return f"{NAMESPACE}_{flat}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def render_exposition(snapshot: Mapping) -> str:
    """Render a ``MetricsRegistry.snapshot()`` dump as Prometheus text.

    Rows sharing a metric name (label variants) are grouped under one
    ``# TYPE`` header.  The returned text ends with a newline, as the
    format requires.
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def emit_type(prom_name: str, kind: str) -> None:
        if typed.get(prom_name) != kind:
            typed[prom_name] = kind
            lines.append(f"# TYPE {prom_name} {kind}")

    for row in snapshot.get("counters", ()):
        prom = sanitize_metric_name(row["name"]) + "_total"
        emit_type(prom, "counter")
        lines.append(
            f"{prom}{_render_labels(row['labels'])} "
            f"{_format_value(row['value'])}"
        )

    for row in snapshot.get("gauges", ()):
        if row["value"] is None:
            continue
        prom = sanitize_metric_name(row["name"])
        emit_type(prom, "gauge")
        lines.append(
            f"{prom}{_render_labels(row['labels'])} "
            f"{_format_value(row['value'])}"
        )

    for row in snapshot.get("timers", ()):
        base = sanitize_metric_name(row["name"])
        if not base.endswith("_seconds"):
            base += "_seconds"
        emit_type(base, "summary")
        labels = _render_labels(row["labels"])
        lines.append(f"{base}_sum{labels} {_format_value(row['total_s'])}")
        lines.append(f"{base}_count{labels} {_format_value(row['count'])}")

    for row in snapshot.get("histograms", ()):
        prom = sanitize_metric_name(row["name"])
        emit_type(prom, "histogram")
        for bound, cumulative in row["buckets"]:
            bucket_labels = dict(row["labels"])
            bucket_labels["le"] = _format_value(float(bound))
            lines.append(
                f"{prom}_bucket{_render_labels(bucket_labels)} "
                f"{_format_value(cumulative)}"
            )
        inf_labels = dict(row["labels"])
        inf_labels["le"] = "+Inf"
        lines.append(
            f"{prom}_bucket{_render_labels(inf_labels)} "
            f"{_format_value(row['count'])}"
        )
        labels = _render_labels(row["labels"])
        lines.append(f"{prom}_sum{labels} {_format_value(row['sum'])}")
        lines.append(f"{prom}_count{labels} {_format_value(row['count'])}")

    return "\n".join(lines) + "\n" if lines else "\n"


LabelSet = Tuple[Tuple[str, str], ...]


def parse_exposition(text: str) -> Dict[str, Dict[LabelSet, float]]:
    """Parse Prometheus text back into ``{name: {labels: value}}``.

    ``labels`` keys are sorted ``(key, value)`` tuples (``()`` for the
    unlabeled series).  Comment/``# TYPE`` lines are skipped; malformed
    lines are ignored rather than fatal — the console keeps rendering
    through a partially written scrape.
    """
    series: Dict[str, Dict[LabelSet, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SERIES_LINE.match(line)
        if not match:
            continue
        raw_value = match.group("value")
        try:
            if raw_value == "+Inf":
                value = float("inf")
            elif raw_value == "-Inf":
                value = float("-inf")
            else:
                value = float(raw_value)
        except ValueError:
            continue
        labels: LabelSet = tuple(
            sorted(_LABEL_PAIR.findall(match.group("labels") or ""))
        )
        series.setdefault(match.group("name"), {})[labels] = value
    return series


def bucket_quantile(
    buckets: Sequence[Tuple[float, float]], q: float
) -> Optional[float]:
    """Estimate quantile ``q`` in [0, 1] from cumulative buckets.

    ``buckets`` is ``[(upper_bound, cumulative_count), ...]`` sorted by
    bound, with ``+Inf`` as the final bound (Prometheus convention).
    Linear interpolation inside the target bucket, matching what
    ``histogram_quantile`` does; returns ``None`` when the series is
    empty.
    """
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not buckets:
        return None
    ordered = sorted(buckets, key=lambda pair: pair[0])
    total = ordered[-1][1]
    if total <= 0:
        return None
    target = q * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, cumulative in ordered:
        if cumulative >= target:
            if bound == float("inf"):
                return previous_bound
            span = cumulative - previous_count
            if span <= 0:
                return bound
            fraction = (target - previous_count) / span
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = bound
        previous_count = cumulative
    return previous_bound
