"""Structured JSON-lines logging with context-var trace correlation.

The operations plane needs to answer "what happened to *this* query?"
across the serving frontend's micro-batcher, the service's snapshot
reads, the runtime's retry/breaker episodes and the parallel worker
protocol.  Two pieces make that a single grep:

* **:class:`TraceContext`** — an immutable ``(trace_id, span_id,
  component)`` triple held in a :mod:`contextvars` variable, so it
  follows ``await`` chains for free.  :func:`span` pushes a child
  context (fresh ``span_id``, inherited ``trace_id``); the frontend
  additionally stamps a ``trace_ids`` group on batch-scoped contexts so
  records emitted *for a whole batch* still match every member query.
* **:func:`get_logger` / :class:`EventLogger`** — emits one JSON object
  per line, automatically stamped with the current trace context.

The sink is **off by default** and the disabled path costs one module
attribute check per event, so library users pay nothing.  ``repro
serve --log PATH`` (or the ``REPRO_LOG`` environment variable) turns it
on; ``repro events`` reads the file back.

Record schema (one JSON object per line)::

    {"ts": <unix seconds>, "level": "info", "component": "frontend",
     "event": "batch_seal", "trace_id": "...", "span_id": "...",
     ["trace_ids": [...],] ...event fields...}
"""

from __future__ import annotations

import contextvars
import io
import json
import os
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, TextIO, Tuple

#: Environment variable enabling the structured log sink
#: (path, or ``-``/``stderr`` for standard error).
LOG_ENV = "REPRO_LOG"

_LEVELS = ("debug", "info", "warning", "error")


def new_trace_id() -> str:
    """A fresh 16-hex-character trace (or span) identifier."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """Immutable correlation triple carried through a request's path.

    ``trace_ids`` is the batch fan-in group: when one physical action
    (a sealed micro-batch, a vectorized snapshot read) serves many
    logical queries, records emitted under the batch context list every
    member ``trace_id`` so filtering by any of them finds the shared
    steps too.
    """

    trace_id: str
    span_id: str = field(default_factory=new_trace_id)
    component: str = "repro"
    trace_ids: Tuple[str, ...] = ()

    def child(self, component: Optional[str] = None) -> "TraceContext":
        """A child context: same trace, fresh span."""
        return replace(
            self,
            span_id=new_trace_id(),
            component=component if component is not None else self.component,
        )


_CONTEXT: contextvars.ContextVar[Optional[TraceContext]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_trace() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` outside any span."""
    return _CONTEXT.get()


def current_trace_id() -> Optional[str]:
    """The active trace id, or ``None`` outside any span."""
    context = _CONTEXT.get()
    return context.trace_id if context else None


def activate(context: TraceContext) -> contextvars.Token:
    """Install ``context`` directly; returns the reset token."""
    return _CONTEXT.set(context)


def deactivate(token: contextvars.Token) -> None:
    """Undo a previous :func:`activate`."""
    _CONTEXT.reset(token)


@contextmanager
def span(
    component: str,
    trace_id: Optional[str] = None,
    *,
    trace_ids: Tuple[str, ...] = (),
) -> Iterator[TraceContext]:
    """Enter a traced span for the enclosed block.

    Inherits the surrounding trace when one is active (child span);
    otherwise starts a new trace (``trace_id`` lets callers pin an
    externally supplied id).  ``trace_ids`` attaches a batch fan-in
    group to the span.
    """
    parent = _CONTEXT.get()
    if parent is not None and trace_id is None:
        context = parent.child(component)
        if trace_ids:
            context = replace(context, trace_ids=tuple(trace_ids))
    else:
        context = TraceContext(
            trace_id=trace_id if trace_id else new_trace_id(),
            component=component,
            trace_ids=tuple(trace_ids),
        )
    token = _CONTEXT.set(context)
    try:
        yield context
    finally:
        _CONTEXT.reset(token)


# -- sink ---------------------------------------------------------------

_SINK: Optional["_LogSink"] = None
_SINK_LOCK = threading.Lock()


class _LogSink:
    """Serialized writer of JSON-line records to one stream."""

    __slots__ = ("stream", "level_index", "path", "_lock", "_owns_stream")

    def __init__(
        self, stream: TextIO, level: str, path: Optional[str],
        owns_stream: bool,
    ) -> None:
        self.stream = stream
        self.level_index = _LEVELS.index(level)
        self.path = path
        self._lock = threading.Lock()
        self._owns_stream = owns_stream

    def emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (ValueError, OSError):
                pass  # closed stream — logging must never break serving

    def close(self) -> None:
        if self._owns_stream:
            try:
                self.stream.close()
            except OSError:
                pass


def configure_logging(
    target: Optional[str] = None, level: str = "info"
) -> None:
    """Enable the structured log sink.

    ``target`` is a file path (appended, created if missing) or
    ``"-"``/``"stderr"`` for standard error; ``None`` reads the
    ``REPRO_LOG`` environment variable and is a no-op when that is
    unset too.
    """
    global _SINK
    if target is None:
        target = os.environ.get(LOG_ENV) or None
        if target is None:
            return
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; use one of {_LEVELS}")
    with _SINK_LOCK:
        old = _SINK
        if target in ("-", "stderr"):
            _SINK = _LogSink(sys.stderr, level, None, owns_stream=False)
        else:
            stream = io.open(target, "a", encoding="utf-8")
            _SINK = _LogSink(stream, level, target, owns_stream=True)
        if old is not None:
            old.close()


def reset_logging() -> None:
    """Disable the sink (returns the library to its silent default)."""
    global _SINK
    with _SINK_LOCK:
        if _SINK is not None:
            _SINK.close()
        _SINK = None


def logging_enabled() -> bool:
    """Whether a sink is configured (events are being written)."""
    return _SINK is not None


def log_path() -> Optional[str]:
    """The sink's file path, if it writes to a file."""
    sink = _SINK
    return sink.path if sink else None


class EventLogger:
    """Component-scoped emitter of structured events.

    ``get_logger("frontend").event("batch_seal", size=4)`` writes one
    JSON line stamped with the current :class:`TraceContext`.  With no
    sink configured every method is a single ``None`` check.
    """

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def event(self, name: str, *, level: str = "info", **fields) -> None:
        """Emit one structured record (no-op without a sink)."""
        sink = _SINK
        if sink is None:
            return
        try:
            if _LEVELS.index(level) < sink.level_index:
                return
        except ValueError:
            level = "info"
            if sink.level_index > _LEVELS.index("info"):
                return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": name,
        }
        context = _CONTEXT.get()
        if context is not None:
            record["trace_id"] = context.trace_id
            record["span_id"] = context.span_id
            if context.trace_ids:
                record["trace_ids"] = list(context.trace_ids)
        record.update(fields)
        sink.emit(record)

    def debug(self, name: str, **fields) -> None:
        self.event(name, level="debug", **fields)

    def warning(self, name: str, **fields) -> None:
        self.event(name, level="warning", **fields)

    def error(self, name: str, **fields) -> None:
        self.event(name, level="error", **fields)


def get_logger(component: str) -> EventLogger:
    """The :class:`EventLogger` for ``component``."""
    return EventLogger(component)


def record_matches_trace(record: dict, trace_id: str) -> bool:
    """Whether a parsed log record belongs to ``trace_id``.

    Matches the record's own ``trace_id`` or membership in its batch
    fan-in ``trace_ids`` group — the rule ``repro events --trace-id``
    applies.
    """
    if record.get("trace_id") == trace_id:
        return True
    return trace_id in record.get("trace_ids", ())
