"""Solver trace: an ordered event stream plus the no-op default.

Every solver entry point accepts a ``tracer``.  The default is the
module-level :data:`NULL_TRACER`, whose methods are empty and whose
``enabled`` flag is ``False`` — hot loops guard their event
construction with ``if tracer.enabled:`` so a disabled run pays one
attribute check per iteration and allocates nothing.

:class:`SolverTrace` records :class:`TraceEvent` rows (monotonically
increasing ``seq``, seconds since trace start, an event ``kind`` and a
free-form payload) and owns a
:class:`~repro.observability.metrics.MetricsRegistry` so one object can
be threaded through a whole pipeline run.  The event schema emitted by
the built-in solvers is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .metrics import MetricsRegistry


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        seq: 0-based position in the stream (strictly increasing).
        t: seconds since the trace was created.
        kind: event type (``iteration``, ``span``, ``solve.start``, ...).
        data: event payload (JSON-serializable values expected).
    """

    seq: int
    t: float
    kind: str
    data: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Flat dict form used for JSONL export."""
        return {"seq": self.seq, "t": self.t, "kind": self.kind, **self.data}


class NullTracer:
    """Do-nothing tracer: the zero-cost default for every solver.

    All recording methods are no-ops and :attr:`enabled` is ``False``;
    hot loops use that flag to skip event-payload construction
    entirely.  A single shared instance, :data:`NULL_TRACER`, is used
    everywhere so disabled runs allocate nothing.
    """

    enabled = False
    metrics: Optional[MetricsRegistry] = None

    def event(self, kind: str, **data) -> None:
        """Record an event (no-op)."""

    def iteration(self, iteration: int, **data) -> None:
        """Record one greedy iteration (no-op)."""

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment a metric counter (no-op)."""

    def observe(self, name: str, value: float) -> None:
        """Fold a value into a metric histogram (no-op)."""

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (no-op)."""

    def stash(self, **data) -> None:
        """Attach payload fields to the next iteration event (no-op)."""

    @contextmanager
    def span(self, name: str, **data) -> Iterator[None]:
        """Time a named stage (no-op)."""
        yield


#: Shared do-nothing tracer; solvers default to this.
NULL_TRACER = NullTracer()


def coerce_tracer(tracer: Optional[NullTracer]) -> NullTracer:
    """``None`` -> :data:`NULL_TRACER`; anything else passes through."""
    return NULL_TRACER if tracer is None else tracer


class SolverTrace(NullTracer):
    """Recording tracer: ordered events plus a metrics registry.

    Args:
        metrics: registry to record counters/timers/histograms into;
            a fresh one is created when omitted.
        max_events: safety valve — recording stops (silently, with the
            ``solver.trace_dropped`` counter ticking) once this many
            events are held, so tracing an enormous solve cannot
            exhaust memory.  ``None`` means unbounded.
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        self.events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_events = max_events
        self._t0 = time.perf_counter()
        self._pending: Dict = {}

    # -- recording -----------------------------------------------------
    def event(self, kind: str, **data) -> None:
        """Append one event to the stream."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.metrics.incr("solver.trace_dropped")
            return
        self.events.append(
            TraceEvent(
                seq=len(self.events),
                t=time.perf_counter() - self._t0,
                kind=kind,
                data=data,
            )
        )

    def iteration(self, iteration: int, **data) -> None:
        """Record one greedy iteration (merges any stashed payload)."""
        if self._pending:
            data = {**self._pending, **data}
            self._pending = {}
        self.metrics.incr("solver.iterations")
        self.event("iteration", iteration=iteration, **data)

    def stash(self, **data) -> None:
        """Buffer payload fields for the next :meth:`iteration` event.

        Lets inner helpers (e.g. the accelerated gain-patch step)
        contribute fields to the iteration event emitted by the outer
        loop without changing their return signatures.
        """
        self._pending.update(data)

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` on the attached registry."""
        self.metrics.incr(name, amount)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` on the registry."""
        self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` on the attached registry."""
        self.metrics.set_gauge(name, value)

    @contextmanager
    def span(self, name: str, **data) -> Iterator[None]:
        """Time a named stage: one ``span`` event + a ``span.<name>`` timer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self.metrics.record_time(f"span.{name}", duration)
            self.event("span", name=name, duration_s=duration, **data)

    # -- inspection / export -------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def to_jsonl(self) -> str:
        """The event stream as JSON Lines (one event per line)."""
        return "\n".join(
            json.dumps(event.to_dict(), default=str) for event in self.events
        )

    def write_jsonl(self, path) -> None:
        """Write the event stream to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), default=str))
                handle.write("\n")

    def summary(self) -> str:
        """Event-count digest plus the metrics summary."""
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        header = ", ".join(
            f"{kind}={count}" for kind, count in sorted(kinds.items())
        )
        return (
            f"trace: {len(self.events)} events ({header or 'empty'})\n"
            + self.metrics.summary()
        )

    def __repr__(self) -> str:
        return f"SolverTrace(events={len(self.events)})"


@dataclass(frozen=True)
class Telemetry:
    """Observability payload attached to ``SolveResult.telemetry``.

    Attributes:
        metrics: the run's metrics registry (always present).
        trace: the event stream, when tracing was enabled; ``None`` for
            metrics-only runs.
    """

    metrics: MetricsRegistry
    trace: Optional[SolverTrace] = None

    @property
    def events(self) -> List[TraceEvent]:
        """The trace's events (empty list when tracing was disabled)."""
        return self.trace.events if self.trace is not None else []

    def summary(self) -> str:
        """Human-readable digest of the attached instrumentation."""
        if self.trace is not None:
            return self.trace.summary()
        return self.metrics.summary()
