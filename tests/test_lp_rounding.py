"""Tests for the LP + pipage-rounding VC_k / NPC_k solver."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_solve
from repro.core.cover import cover
from repro.errors import SolverError
from repro.reductions.lp_rounding import (
    LP_ROUNDING_FACTOR,
    lp_round_solve,
    lp_round_vc,
    pipage_round,
    smoothed_objective,
    solve_vc_lp,
)
from repro.reductions.vertex_cover import (
    MaxVertexCoverInstance,
    npc_to_vc,
)
from repro.workloads.graphs import small_dense_graph


def random_vc(n, m, seed) -> MaxVertexCoverInstance:
    rng = np.random.default_rng(seed)
    edges = tuple(
        (int(u), int(v), float(w))
        for u, v, w in zip(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.uniform(0.1, 2.0, m),
        )
    )
    return MaxVertexCoverInstance(n=n, edges=edges)


class TestLpRelaxation:
    def test_lp_upper_bounds_integral_optimum(self):
        graph = small_dense_graph(9, variant="normalized", seed=1)
        instance, _items = npc_to_vc(graph)
        for k in (2, 4, 6):
            _x, lp_value = solve_vc_lp(instance, k)
            optimal = brute_force_solve(graph, k, "normalized").cover
            assert lp_value >= optimal - 1e-9

    def test_fractional_solution_feasible(self):
        instance = random_vc(12, 30, seed=2)
        x, _value = solve_vc_lp(instance, 5)
        assert x.sum() == pytest.approx(5.0, abs=1e-6)
        assert np.all(x >= -1e-9) and np.all(x <= 1 + 1e-9)

    def test_empty_instance(self):
        instance = MaxVertexCoverInstance(n=4, edges=())
        x, value = solve_vc_lp(instance, 2)
        assert value == 0.0

    def test_k_validation(self):
        instance = random_vc(5, 8, seed=3)
        with pytest.raises(SolverError):
            solve_vc_lp(instance, 9)


class TestPipage:
    def test_returns_integral_with_exactly_k(self):
        instance = random_vc(14, 35, seed=4)
        x, _value = solve_vc_lp(instance, 6)
        rounded = pipage_round(instance, x, 6)
        assert set(np.unique(rounded)).issubset({0.0, 1.0})
        assert rounded.sum() == pytest.approx(6.0)

    def test_never_decreases_smoothed_objective(self):
        instance = random_vc(10, 25, seed=5)
        x, _value = solve_vc_lp(instance, 4)
        before = smoothed_objective(instance, x)
        rounded = pipage_round(instance, x, 4)
        after = smoothed_objective(instance, rounded)
        assert after >= before - 1e-9

    def test_integral_input_unchanged(self):
        instance = random_vc(6, 10, seed=6)
        x = np.array([1.0, 1.0, 0.0, 0.0, 0.0, 0.0])
        rounded = pipage_round(instance, x, 2)
        np.testing.assert_array_equal(rounded, x)


class TestGuarantee:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_three_quarters_of_lp_bound(self, seed, k):
        instance = random_vc(10, 28, seed=seed)
        selected, value, lp_bound = lp_round_vc(instance, k)
        assert len(selected) == k
        assert value >= LP_ROUNDING_FACTOR * lp_bound - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_three_quarters_of_optimum_npc(self, seed, k):
        graph = small_dense_graph(10, variant="normalized", seed=seed)
        result = lp_round_solve(graph, k)
        optimal = brute_force_solve(graph, k, "normalized").cover
        assert result.cover >= LP_ROUNDING_FACTOR * optimal - 1e-9
        assert result.cover == pytest.approx(
            cover(graph, result.retained, "normalized"), abs=1e-9
        )

    def test_rejects_independent_variant(self, figure1):
        with pytest.raises(SolverError, match="Normalized"):
            lp_round_solve(figure1, 2, "independent")

    def test_figure1(self, figure1):
        result = lp_round_solve(figure1, 2)
        # On Figure 1 the LP route also finds the optimal pair.
        assert result.cover >= 0.75 * 0.873 - 1e-9
        assert len(result.retained) == 2
