"""Tests for candidate pruning."""

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.greedy import greedy_solve
from repro.core.preprocess import (
    candidate_ceilings,
    prune_candidates,
    pruned_greedy_solve,
)
from repro.errors import SolverError
from repro.workloads.graphs import random_preference_graph


class TestCeilings:
    def test_equal_singleton_gains(self, medium_graph, variant):
        ceilings = candidate_ceilings(medium_graph, variant)
        state = GreedyState(as_csr(medium_graph), variant)
        np.testing.assert_allclose(ceilings, state.gains_all())

    def test_ceiling_bounds_any_marginal(self, small_graph, variant):
        # Submodularity: the singleton gain upper-bounds every later
        # marginal gain of the same item.
        csr = as_csr(small_graph)
        ceilings = candidate_ceilings(csr, variant)
        state = GreedyState(csr, variant)
        for node in (0, 3, 7):
            state.add_node(node)
        for v in range(csr.n_items):
            if not state.in_set[v]:
                assert state.gain(v) <= ceilings[v] + 1e-12


class TestPrune:
    def test_budget_respected(self, medium_graph, variant):
        plan = prune_candidates(medium_graph, variant, epsilon=0.01)
        assert plan.loss_bound <= 0.01 + 1e-12
        assert plan.n_excluded > 0

    def test_zero_epsilon_prunes_nothing_weighted(self, medium_graph, variant):
        plan = prune_candidates(medium_graph, variant, epsilon=0.0)
        # Only ceiling-zero items (none on these graphs) could be cut.
        assert plan.loss_bound == 0.0

    def test_drops_smallest_first(self, medium_graph, variant):
        plan = prune_candidates(medium_graph, variant, epsilon=0.02)
        if plan.n_excluded:
            max_excluded = plan.ceilings[plan.excluded_indices].max()
            survivors = np.setdiff1d(
                np.arange(as_csr(medium_graph).n_items),
                plan.excluded_indices,
            )
            assert max_excluded <= plan.ceilings[survivors].min() + 1e-12

    def test_keep_at_least(self, figure1, variant):
        plan = prune_candidates(
            figure1, variant, epsilon=10.0, keep_at_least=2
        )
        assert plan.n_excluded == 3

    def test_validation(self, figure1):
        with pytest.raises(SolverError, match="epsilon"):
            prune_candidates(figure1, "independent", epsilon=-1)
        with pytest.raises(SolverError, match="keep_at_least"):
            prune_candidates(
                figure1, "independent", keep_at_least=99
            )


class TestPrunedSolve:
    def test_cover_within_bound(self, variant):
        graph = random_preference_graph(2000, seed=30, variant=variant)
        k = 100
        full = greedy_solve(graph, k, variant)
        result, plan = pruned_greedy_solve(
            graph, k, variant, epsilon=0.02
        )
        assert plan.n_excluded > 100  # pruning actually bites
        assert result.cover >= full.cover - plan.loss_bound - 1e-9

    def test_large_epsilon_keeps_feasibility(self, figure1, variant):
        result, plan = pruned_greedy_solve(
            figure1, 3, variant, epsilon=10.0
        )
        assert len(result.retained) == 3

    def test_excluded_items_not_retained(self, medium_graph, variant):
        result, plan = pruned_greedy_solve(
            medium_graph, 30, variant, epsilon=0.01
        )
        retained = set(result.retained_indices.tolist())
        assert not retained & set(plan.excluded_indices.tolist())

    def test_tiny_epsilon_matches_full_solve(self, medium_graph, variant):
        full = greedy_solve(medium_graph, 20, variant)
        result, plan = pruned_greedy_solve(
            medium_graph, 20, variant, epsilon=1e-9
        )
        assert result.retained == full.retained
