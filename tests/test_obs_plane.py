"""Tests for the operations plane: exposition, exporter, logs, traces.

Covers the Prometheus text rendering round-trip, the sidecar HTTP
exporter, labeled-metric plumbing, histogram percentile edge cases,
registry thread-safety under contention, and end-to-end trace
correlation across the serving frontend, the snapshot service, the
runtime's refresh episodes and the parallel worker protocol.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.core.parallel import ParallelGainEvaluator
from repro.observability import (
    COUNT_BUCKETS,
    Histogram,
    MetricsExporter,
    MetricsRegistry,
    logs,
    parse_exposition,
    render_exposition,
)
from repro.observability.console import render_dashboard
from repro.observability.exposition import (
    bucket_quantile,
    sanitize_metric_name,
)
from repro.resilience import FaultInjector, inject_faults
from repro.serving import (
    AssortmentService,
    CircuitBreaker,
    RetryPolicy,
    ServingFrontend,
    ServingRuntime,
)
from repro.workloads.graphs import random_preference_graph


@pytest.fixture(autouse=True)
def _quiet_ambient():
    """Shield deterministic assertions from ambient ``REPRO_FAULTS``."""
    with inject_faults(None):
        yield


@pytest.fixture()
def event_log(tmp_path):
    """Enable the JSON-lines sink for one test; yields the log path."""
    path = tmp_path / "events.jsonl"
    logs.configure_logging(str(path))
    try:
        yield path
    finally:
        logs.reset_logging()


def read_records(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def make_service(n=60, k=8, seed=3):
    graph = random_preference_graph(n, variant="independent", seed=seed)
    return AssortmentService(graph, variant="independent", k=k)


# ---------------------------------------------------------------------
# histogram percentile edge cases


class TestHistogramEdgeCases:
    def test_empty_percentile_is_none(self):
        histogram = Histogram("latency")
        assert histogram.percentile(50.0) is None
        assert histogram.p50 is None
        assert histogram.p99 is None

    def test_invalid_quantile_raises_even_when_empty(self):
        histogram = Histogram("latency")
        with pytest.raises(ValueError):
            histogram.percentile(-1.0)
        with pytest.raises(ValueError):
            histogram.percentile(100.5)
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_extreme_quantiles(self):
        histogram = Histogram("latency")
        for value in (5.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(100.0) == 5.0

    def test_single_observation_every_quantile(self):
        histogram = Histogram("latency")
        histogram.observe(7.0)
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert histogram.percentile(q) == 7.0


# ---------------------------------------------------------------------
# registry thread-safety


class TestRegistryThreadSafety:
    def test_concurrent_hammer_loses_nothing(self):
        registry = MetricsRegistry()
        workers, rounds = 8, 500
        barrier = threading.Barrier(workers)

        def hammer(worker):
            barrier.wait()
            for i in range(rounds):
                registry.incr("hits")
                registry.incr("labeled", labels={"w": str(worker % 2)})
                registry.observe("lat", 0.001 * (i % 17))
                registry.record_time("step", 0.001)
                registry.set_gauge("depth", float(i))

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert registry.counter("hits").value == workers * rounds
        labeled = (
            registry.counter("labeled", labels={"w": "0"}).value
            + registry.counter("labeled", labels={"w": "1"}).value
        )
        assert labeled == workers * rounds
        assert registry.histogram("lat").count == workers * rounds
        assert registry.timer("step").count == workers * rounds
        # Bucket counts must agree with the total despite racing writers.
        histogram = registry.histogram("lat")
        buckets = histogram.cumulative_buckets()
        assert buckets[-1][1] == histogram.count


# ---------------------------------------------------------------------
# exposition rendering and parsing


class TestExposition:
    def test_sanitize_names(self):
        assert (
            sanitize_metric_name("serving.answer_latency_s")
            == "repro_serving_answer_latency_seconds"
        )
        assert sanitize_metric_name("a b/c") == "repro_a_b_c"

    def test_render_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.incr("serving.queries", 42)
        registry.set_gauge("serving.tier", 1)
        registry.observe(
            "serving.answer_latency_s", 0.002, labels={"tier": "fresh"}
        )
        registry.record_time("span.solve", 0.5)
        text = render_exposition(registry.snapshot())
        assert "# TYPE repro_serving_queries_total counter" in text
        assert "repro_serving_queries_total 42" in text
        assert "repro_serving_tier 1" in text
        assert (
            'repro_serving_answer_latency_seconds_bucket{le="+Inf",'
            'tier="fresh"} 1' in text
        )
        assert "repro_span_solve_seconds_sum 0.5" in text
        assert text.endswith("\n")

    def test_round_trip_parse(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.002, 0.004, 0.2):
            registry.observe("lat_s", value)
        registry.incr("hits", 7)
        series = parse_exposition(render_exposition(registry.snapshot()))
        assert series["repro_hits_total"][()] == 7.0
        buckets = [
            (float(dict(labels)["le"]), value)
            for labels, value in series["repro_lat_seconds_bucket"].items()
        ]
        assert max(value for _, value in buckets) == 4.0
        estimate = bucket_quantile(buckets, 0.5)
        assert estimate is not None and 0.0 < estimate < 0.01

    def test_cumulative_buckets_monotone(self):
        registry = MetricsRegistry()
        rng = np.random.default_rng(0)
        for value in rng.exponential(0.01, size=200):
            registry.observe("lat_s", float(value))
        buckets = registry.histogram("lat_s").cumulative_buckets()
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)

    def test_bucket_quantile_edges(self):
        with pytest.raises(ValueError):
            bucket_quantile([(1.0, 1.0)], 1.5)
        assert bucket_quantile([], 0.5) is None
        assert bucket_quantile([(1.0, 0.0), (float("inf"), 0.0)], 0.5) is None

    def test_snapshot_is_the_single_schema(self):
        """Benchmark dumps and exposition serialize the same snapshot."""
        registry = MetricsRegistry()
        registry.incr("x")
        registry.observe("lat_s", 0.5)
        snapshot = registry.snapshot()
        # JSON-serializable as-is (what benchmarks/results/metrics.json
        # now stores) and renderable as Prometheus text.
        dumped = json.loads(json.dumps(snapshot))
        assert dumped == snapshot
        assert "repro_x_total 1" in render_exposition(dumped)


# ---------------------------------------------------------------------
# HTTP exporter


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestExporter:
    def test_metrics_healthz_readyz(self):
        registry = MetricsRegistry()
        registry.incr("serving.queries", 3)
        ready = {"flag": True}
        with MetricsExporter(
            registry,
            readiness=lambda: (ready["flag"], {"tier": "fresh"}),
        ) as exporter:
            status, body = fetch(exporter.url + "/metrics")
            assert status == 200
            assert "repro_serving_queries_total 3" in body
            status, body = fetch(exporter.url + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
            status, body = fetch(exporter.url + "/readyz")
            assert status == 200
            assert json.loads(body) == {
                "status": "ready", "tier": "fresh",
            }
            ready["flag"] = False
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(exporter.url + "/readyz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "unready"

    def test_unknown_path_is_404(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(exporter.url + "/nope")
            assert excinfo.value.code == 404

    def test_crashing_probe_reports_unready(self):
        def probe():
            raise RuntimeError("boom")

        with MetricsExporter(MetricsRegistry(), readiness=probe) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(exporter.url + "/readyz")
            assert excinfo.value.code == 503

    def test_runtime_readiness_wiring(self):
        service = make_service()
        runtime = ServingRuntime(
            service,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            breaker=CircuitBreaker(window=4, min_calls=2,
                                   reset_timeout_s=1000.0),
        )
        runtime.ensure()
        ok, detail = runtime.readiness()
        assert ok and detail["tier"] == "fresh"
        with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
            for step in range(5):
                runtime.apply_delta(_next_delta(service, seed=step))
        ok, detail = runtime.readiness()
        assert not ok and detail["breaker"] == "open"


def _next_delta(service, seed=11):
    from repro.clickstream.drift import random_delta

    return random_delta(
        service.graph, sigma=0.2, seed=seed, sequence=seed + 1
    )


# ---------------------------------------------------------------------
# trace correlation


class TestTraceCorrelation:
    def test_batch_and_service_reads_share_trace(self, event_log):
        service = make_service()
        frontend = ServingFrontend(service, batch_window_s=0.002)

        async def scenario():
            async with frontend:
                items = list(service.graph.items())[:6]
                return await asyncio.gather(*[
                    frontend.covered_probability(item) for item in items
                ])

        answers = asyncio.run(scenario())
        assert len(answers) == 6
        logs.reset_logging()
        records = read_records(event_log)
        seals = [r for r in records if r["event"] == "batch_seal"]
        assert seals, "no batch_seal records written"
        # Every member query's trace finds the shared batch steps and
        # the vectorized snapshot read issued on its behalf.
        member = seals[0]["trace_ids"][0]
        matching = [
            r for r in records if logs.record_matches_trace(r, member)
        ]
        events = {r["event"] for r in matching}
        assert "batch_seal" in events
        assert "batch_answered" in events
        assert "read" in events  # service-level snapshot read

    def test_refresh_episode_correlates_with_span(self, event_log):
        service = make_service()
        runtime = ServingRuntime(
            service,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            breaker=CircuitBreaker(window=4, min_calls=2,
                                   reset_timeout_s=1000.0),
        )
        runtime.ensure()
        with logs.span("test") as context:
            with inject_faults(FaultInjector(refresh_crash=1.0, seed=5)):
                for step in range(5):
                    runtime.apply_delta(_next_delta(service, seed=step))
        logs.reset_logging()
        records = [
            r for r in read_records(event_log)
            if logs.record_matches_trace(r, context.trace_id)
        ]
        events = {r["event"] for r in records}
        assert "refresh_episode" in events
        assert "tier_transition" in events
        assert "breaker_transition" in events
        outcomes = {
            r.get("outcome") for r in records
            if r["event"] == "refresh_episode"
        }
        assert "failed" in outcomes
        assert "short_circuited" in outcomes

    @pytest.mark.parametrize("backend", ["shm", "pipe"])
    def test_worker_rounds_carry_trace(self, event_log, backend):
        graph = random_preference_graph(80, variant="independent", seed=7)
        csr = as_csr(graph)
        with ParallelGainEvaluator(
            csr, "independent", n_workers=2, backend=backend
        ) as pool:
            state = GreedyState(csr, "independent")
            with logs.span("test") as context:
                pool.gains(state)
        logs.reset_logging()
        records = read_records(event_log)
        rounds = [
            r for r in records
            if r["event"] == "round"
            and logs.record_matches_trace(r, context.trace_id)
        ]
        assert rounds and rounds[0]["backend"] == backend
        worker_rounds = [
            r for r in records
            if r["event"] == "worker_round"
            and r.get("trace_id") == context.trace_id
        ]
        # Both workers log the round under the coordinator's trace.
        assert len(worker_rounds) >= 2

    def test_disabled_sink_stays_silent(self, tmp_path):
        assert not logs.logging_enabled()
        service = make_service()
        frontend = ServingFrontend(service, batch_window_s=0.0)

        async def scenario():
            async with frontend:
                item = list(service.graph.items())[0]
                return await frontend.covered_probability(item)

        asyncio.run(scenario())  # must not raise without a sink


# ---------------------------------------------------------------------
# SLO instruments


class TestSloInstruments:
    def test_per_tier_latency_and_staleness(self):
        service = make_service()
        runtime = ServingRuntime(
            service,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
        )
        runtime.ensure()
        runtime.answer(list(service.graph.items())[0])
        fresh = service.metrics.histogram(
            "serving.answer_latency_s", labels={"tier": "fresh"}
        )
        assert fresh.count >= 1
        staleness = service.metrics.gauge("serving.staleness_s")
        assert staleness.value is not None and staleness.value >= 0.0
        episodes = service.metrics.histogram("serving.refresh_episode_s")
        assert episodes.count >= 1
        text = render_exposition(service.metrics.snapshot())
        assert (
            'repro_serving_answer_latency_seconds_bucket{le="+Inf",'
            'tier="fresh"}' in text
        )

    def test_batch_occupancy_histogram(self):
        service = make_service()
        frontend = ServingFrontend(service, batch_window_s=0.002)

        async def scenario():
            async with frontend:
                items = list(service.graph.items())[:5]
                await asyncio.gather(*[
                    frontend.covered_probability(item) for item in items
                ])

        asyncio.run(scenario())
        occupancy = service.metrics.histogram("serving.batch_occupancy")
        assert occupancy.count >= 1
        assert occupancy.total == 5
        bounds = [bound for bound, _ in occupancy.cumulative_buckets()]
        assert bounds == list(COUNT_BUCKETS)

    def test_pool_utilization_observed(self):
        from repro.observability import SolverTrace

        graph = random_preference_graph(80, variant="independent", seed=7)
        csr = as_csr(graph)
        trace = SolverTrace()
        with ParallelGainEvaluator(
            csr, "independent", n_workers=2, backend="shm", tracer=trace
        ) as pool:
            state = GreedyState(csr, "independent")
            pool.gains(state)
        utilization = trace.metrics.histogram("parallel.pool_utilization")
        assert utilization.count >= 1
        assert 0.0 <= utilization.max <= 1.0
        assert trace.metrics.gauge("parallel.pool_size").value == 2


# ---------------------------------------------------------------------
# dashboard rendering (pure function, no terminal needed)


class TestDashboard:
    def test_render_dashboard_from_scrape(self):
        registry = MetricsRegistry()
        registry.incr("serving.queries", 120)
        registry.set_gauge("serving.tier", 1)
        registry.set_gauge("serving.breaker.state", 1)
        registry.set_gauge("serving.staleness_s", 4.2)
        registry.observe(
            "serving.answer_latency_s", 0.003, labels={"tier": "stale"}
        )
        series = parse_exposition(render_exposition(registry.snapshot()))
        frame = render_dashboard(series, interval_s=2.0, color=False)
        assert "stale" in frame
        assert "open" in frame
        assert "120" in frame
