"""Tests for data-driven variant selection (Section 5.2 fitness tests)."""

import pytest

from repro.adaptation.variant_selection import (
    _pair_nmi,
    independence_score,
    normalized_fit,
    recommend_variant,
)
from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.clickstream.models import Clickstream, Session
from repro.core.variants import Variant
from repro.errors import AdaptationError


def stream(*sessions) -> Clickstream:
    return Clickstream(
        Session(f"s{i}", clicks, purchase)
        for i, (clicks, purchase) in enumerate(sessions)
    )


class TestNormalizedFit:
    def test_perfect_fit(self):
        s = stream((("b",), "a"), ((), "a"), (("c",), "a"))
        assert normalized_fit(s) == 1.0

    def test_partial_fit(self):
        s = stream((("b", "c"), "a"), ((), "a"), (("b",), "a"), ((), "a"))
        assert normalized_fit(s) == pytest.approx(0.75)

    def test_browse_only_ignored(self):
        s = stream((("x", "y", "z"), None), ((), "a"))
        assert normalized_fit(s) == 1.0

    def test_no_purchases_raises(self):
        with pytest.raises(AdaptationError):
            normalized_fit(stream((("x",), None)))


class TestPairNmi:
    def test_independent_counts_give_zero(self):
        # Perfectly factorized joint counts.
        assert _pair_nmi(25, 25, 25, 25) == pytest.approx(0.0, abs=1e-12)

    def test_total_dependence_gives_one(self):
        assert _pair_nmi(50, 0, 0, 50) == pytest.approx(1.0)

    def test_degenerate_marginal_gives_zero(self):
        assert _pair_nmi(100, 0, 100, 0) == 0.0  # first always clicked

    def test_empty_counts(self):
        assert _pair_nmi(0, 0, 0, 0) == 0.0

    def test_symmetry(self):
        assert _pair_nmi(30, 10, 20, 40) == pytest.approx(
            _pair_nmi(30, 20, 10, 40)
        )


class TestIndependenceScore:
    def test_independent_behavior_scores_low(self):
        model = ConsumerModel(
            ShopperConfig(n_items=80, behavior="independent"), seed=1
        )
        score = independence_score(model.generate(15_000, seed=2))
        assert score is not None
        assert score < 0.1

    def test_normalized_behavior_scores_higher(self):
        # Mutually exclusive clicks are strongly (negatively) dependent.
        model = ConsumerModel(
            ShopperConfig(n_items=80, behavior="normalized"), seed=3
        )
        score = independence_score(model.generate(15_000, seed=4))
        assert score is not None
        indep_model = ConsumerModel(
            ShopperConfig(n_items=80, behavior="independent"), seed=3
        )
        indep_score = independence_score(indep_model.generate(15_000, seed=4))
        assert score > indep_score

    def test_none_when_no_item_qualifies(self):
        s = stream((("b",), "a"), ((), "a"))
        assert independence_score(s, min_purchases=5) is None

    def test_min_purchases_gate(self):
        sessions = [(("b", "c"), "a")] * 3 + [((), "b"), ((), "c")]
        s = stream(*sessions)
        assert independence_score(s, min_purchases=10) is None
        assert independence_score(s, min_purchases=1) is not None


class TestRecommendVariant:
    def test_normalized_population_detected(self):
        model = ConsumerModel(
            ShopperConfig(n_items=60, behavior="normalized"), seed=5
        )
        rec = recommend_variant(model.generate(5_000, seed=6))
        assert rec.variant is Variant.NORMALIZED
        assert rec.fits
        assert rec.normalized_fit >= 0.9

    def test_independent_population_detected(self):
        model = ConsumerModel(
            ShopperConfig(n_items=60, behavior="independent"), seed=7
        )
        rec = recommend_variant(model.generate(15_000, seed=8))
        assert rec.variant is Variant.INDEPENDENT
        assert rec.fits
        assert rec.independence_score < 0.1

    def test_fallback_when_neither_fits(self):
        # Strongly dependent, multi-click data: b and c are clicked
        # either together or not at all (perfect correlation, NMI = 1).
        sessions = [(("b", "c"), "a")] * 30 + [((), "a")] * 30 + [
            ((), "b"), ((), "c"),
        ]
        rec = recommend_variant(stream(*sessions))
        assert rec.variant is Variant.INDEPENDENT
        assert not rec.fits

    def test_thresholds_configurable(self):
        s = stream(
            *([(("b",), "a")] * 8 + [(("b", "c"), "a")] * 2
              + [((), "b"), ((), "c")])
        )
        default = recommend_variant(s)
        # 10/12 purchasing sessions have <=1 alternative: ~0.83 < 0.9.
        assert default.normalized_fit < 0.9
        relaxed = recommend_variant(s, normalized_threshold=0.8)
        assert relaxed.variant is Variant.NORMALIZED
