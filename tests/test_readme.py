"""Documentation integrity: the README's Python snippets must run.

Extracts every fenced ``python`` block from README.md, stubs the file
inputs they reference, executes them in one shared namespace, and checks
the claimed outputs (the Figure 1 numbers) actually hold.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_blocks() -> list:
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.fixture
def sessions_file(tmp_path, monkeypatch):
    """Provide the sessions.jsonl the README pipeline snippet reads."""
    from repro.clickstream.generator import ConsumerModel, ShopperConfig
    from repro.clickstream.io import write_jsonl

    model = ConsumerModel(ShopperConfig(n_items=50), seed=0)
    write_jsonl(model.generate(3_000, seed=1), tmp_path / "sessions.jsonl")
    monkeypatch.chdir(tmp_path)


class TestReadmeSnippets:
    def test_blocks_exist(self):
        assert len(python_blocks()) >= 3

    def test_all_blocks_execute(self, sessions_file, capsys):
        namespace: dict = {}
        for block in python_blocks():
            # The YooChoose block needs the real dataset; skip the two
            # lines that read it but keep the import under test.
            runnable = "\n".join(
                line for line in block.splitlines()
                # Skip actual read_yoochoose calls (the real dataset is
                # not bundled); mentions in comments are fine.
                if "read_yoochoose(" not in line.split("#")[0]
            )
            exec(compile(runnable, "<README>", "exec"), namespace)
        out = capsys.readouterr().out
        # The quickstart's claimed outputs:
        assert "0.77" in out
        assert "0.873" in out
        assert "'B'" in out and "'D'" in out

    def test_quickstart_numbers_are_correct(self):
        # Independently verify the claims, not just that they print.
        from repro import PreferenceGraph, greedy_solve, top_k_weight_solve

        graph = PreferenceGraph.from_weights(
            {"A": 0.33, "B": 0.22, "C": 0.22, "D": 0.06, "E": 0.17},
            edges=[("A", "B", 2 / 3), ("B", "C", 1.0), ("C", "B", 1.0),
                   ("E", "D", 0.9)],
        )
        naive = top_k_weight_solve(graph, 2, "normalized")
        smart = greedy_solve(graph, 2, "normalized")
        assert naive.cover == pytest.approx(0.77)
        assert smart.retained == ["B", "D"]
        assert smart.cover == pytest.approx(0.873)
