"""Tests for the synthetic consumer model."""

import numpy as np
import pytest

from repro.clickstream.generator import ConsumerModel, ShopperConfig
from repro.errors import ClickstreamFormatError


class TestShopperConfig:
    def test_validation(self):
        with pytest.raises(ClickstreamFormatError):
            ShopperConfig(n_items=0)
        with pytest.raises(ClickstreamFormatError):
            ShopperConfig(n_items=10, behavior="chaotic")
        with pytest.raises(ClickstreamFormatError):
            ShopperConfig(n_items=10, cluster_size=0)
        with pytest.raises(ClickstreamFormatError):
            ShopperConfig(n_items=10, browse_only_rate=1.0)


class TestGroundTruth:
    def test_popularity_is_distribution(self, consumer_model_independent):
        pop = consumer_model_independent.popularity
        assert pop.sum() == pytest.approx(1.0)
        assert np.all(pop > 0)

    def test_true_graph_valid(self, consumer_model_independent):
        graph = consumer_model_independent.true_graph()
        graph.validate("independent")

    def test_normalized_true_graph_valid_for_npc(
        self, consumer_model_normalized
    ):
        graph = consumer_model_normalized.true_graph()
        graph.validate("normalized")  # out-sums <= 1 by construction

    def test_alternatives_stay_in_cluster(self):
        config = ShopperConfig(n_items=40, cluster_size=8)
        model = ConsumerModel(config, seed=0)
        for item in range(40):
            cluster = item // 8
            for alt in model.alternatives[item].tolist():
                assert alt // 8 == cluster
                assert alt != item

    def test_singleton_cluster_has_no_alternatives(self):
        config = ShopperConfig(n_items=9, cluster_size=8)
        model = ConsumerModel(config, seed=0)
        # item 8 forms a singleton trailing cluster.
        assert model.alternatives[8].size == 0

    def test_seed_determinism(self):
        config = ShopperConfig(n_items=30)
        a = ConsumerModel(config, seed=5)
        b = ConsumerModel(config, seed=5)
        np.testing.assert_array_equal(a.popularity, b.popularity)
        for alt_a, alt_b in zip(a.alternatives, b.alternatives):
            np.testing.assert_array_equal(alt_a, alt_b)


class TestGeneration:
    def test_session_count_and_ids(self, consumer_model_independent):
        stream = consumer_model_independent.generate(100, seed=1)
        assert stream.n_sessions == 100
        assert stream[0].session_id == "s0"

    def test_all_purchases_when_no_browse_only(
        self, consumer_model_independent
    ):
        stream = consumer_model_independent.generate(200, seed=1)
        assert stream.n_purchases == 200

    def test_browse_only_rate_respected(self):
        config = ShopperConfig(n_items=50, browse_only_rate=0.5)
        model = ConsumerModel(config, seed=2)
        stream = model.generate(2000, seed=3)
        rate = 1 - stream.n_purchases / stream.n_sessions
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_normalized_behavior_clicks_at_most_one_alternative(
        self, consumer_model_normalized
    ):
        stream = consumer_model_normalized.generate(500, seed=4)
        for session in stream:
            if session.purchase is not None:
                assert len(session.alternatives()) <= 1

    def test_generation_reproducible(self, consumer_model_independent):
        a = consumer_model_independent.generate(50, seed=9)
        b = consumer_model_independent.generate(50, seed=9)
        assert [s.clicks for s in a] == [s.clicks for s in b]
        assert [s.purchase for s in a] == [s.purchase for s in b]

    def test_popular_items_purchased_more(self):
        config = ShopperConfig(n_items=50, zipf_exponent=1.3)
        model = ConsumerModel(config, seed=6)
        stream = model.generate(20_000, seed=7)
        counts = stream.purchase_counts()
        top_true = model.item_ids[int(np.argmax(model.popularity))]
        # The empirically most purchased item is the truly most popular.
        assert counts.most_common(1)[0][0] == top_true

    def test_click_frequencies_match_acceptance(self):
        # Empirical edge estimate converges to the ground truth.
        config = ShopperConfig(
            n_items=6, cluster_size=6, behavior="independent",
            self_click_rate=0.0,
        )
        model = ConsumerModel(config, seed=8)
        stream = model.generate(60_000, seed=9)
        item = 0
        sessions_for_item = [
            s for s in stream if s.purchase == model.item_ids[item]
        ]
        assert len(sessions_for_item) > 500
        for alt, prob in zip(
            model.alternatives[item].tolist(),
            model.acceptance[item].tolist(),
        ):
            alt_id = model.item_ids[alt]
            observed = sum(
                1 for s in sessions_for_item if alt_id in s.clicks
            ) / len(sessions_for_item)
            assert observed == pytest.approx(prob, abs=0.05)
