"""Tests for the metamorphic fuzzer and its invariant-oracle registry."""

import dataclasses
import importlib
import json
import random

import numpy as np
import pytest

from repro import solve
from repro.errors import SolverInterrupted
from repro.evaluation.fuzz import (
    FuzzCase,
    generate_case,
    load_artifact,
    replay_artifact,
    run_case,
    run_fuzz,
    shrink_case,
    write_artifact,
)
from repro.evaluation.invariants import (
    INVARIANTS,
    InvariantViolation,
    SolveRecord,
    check_record,
    register_invariant,
)
from repro.workloads.graphs import random_preference_graph


class TestGeneration:
    def test_deterministic(self):
        a = [generate_case(random.Random(7)).to_dict() for _ in range(10)]
        b = [generate_case(random.Random(7)).to_dict() for _ in range(10)]
        assert a == b

    def test_cases_build_valid_graphs(self):
        rng = random.Random(0)
        for _ in range(50):
            case = generate_case(rng, max_items=16)
            graph = case.build_graph()
            graph.validate(case.variant)

    def test_adversarial_features_appear(self):
        rng = random.Random(0)
        seen = set()
        for _ in range(300):
            case = generate_case(rng, max_items=16)
            ints = [i for i in case.items if isinstance(i, int)]
            if ints and ints != list(range(len(case.items))):
                seen.add("shuffled-ids")
            if any(w == 0.0 for w in case.node_weights):
                seen.add("zero-weight")
            pairs = [(e[0], e[1]) for e in case.edges]
            if len(pairs) != len(set(pairs)):
                seen.add("dup-edges")
            if any(e[2] == 1.0 for e in case.edges):
                seen.add("p1-edge")
            if case.faults:
                seen.add("faults")
            if case.workers:
                seen.add("workers")
        assert seen >= {
            "shuffled-ids", "zero-weight", "dup-edges", "p1-edge",
            "faults", "workers",
        }

    def test_case_json_roundtrip(self):
        case = generate_case(random.Random(11))
        payload = json.loads(json.dumps(case.to_dict()))
        assert FuzzCase.from_dict(payload).to_dict() == case.to_dict()


class TestCleanSweep:
    def test_fuzz_passes_on_fixed_code(self):
        report = run_fuzz(rounds=30, seed=0, max_items=24)
        assert report.ok, report.summary()
        assert report.checks > 0

    def test_summary_mentions_verdict(self):
        report = run_fuzz(rounds=5, seed=1, max_items=12)
        assert "OK" in report.summary() or "FAILURE" in report.summary()


class TestOracles:
    """Direct registry checks on deliberately tampered results."""

    @pytest.fixture
    def record(self):
        graph = random_preference_graph(12, variant="independent", seed=5)
        result = solve(graph, variant="independent", k=5)
        return SolveRecord(
            graph=graph, variant=result.variant, mode="k",
            result=result, params={"k": 5},
        )

    def test_clean_record_passes(self, record):
        assert check_record(record) == []

    def test_tampered_cover_caught(self, record):
        record.result = dataclasses.replace(
            record.result, cover=record.result.cover + 0.25
        )
        names = {v.invariant for v in check_record(record)}
        assert "coverage-accounting" in names

    def test_tampered_coverage_array_caught(self, record):
        coverage = record.result.coverage.copy()
        coverage[0], coverage[-1] = coverage[-1], coverage[0]
        record.result = dataclasses.replace(record.result, coverage=coverage)
        names = {v.invariant for v in check_record(record)}
        assert "coverage-accounting" in names

    def test_inconsistent_interrupt_flag_caught(self, record):
        record.result = dataclasses.replace(record.result, interrupted=True)
        names = {v.invariant for v in check_record(record)}
        assert "result-consistency" in names

    def test_broken_prefix_caught(self, record):
        prefix = record.result.prefix_covers.copy()
        prefix[1] += 0.1  # no longer the recomputed C(S_1)
        record.result = dataclasses.replace(
            record.result, prefix_covers=prefix
        )
        names = {v.invariant for v in check_record(record)}
        assert "greedy-marginals" in names

    def test_crashing_oracle_reports_not_raises(self, record):
        @register_invariant("always-broken")
        def _broken(rec):
            raise RuntimeError("oracle bug")

        try:
            violations = check_record(record, names=["always-broken"])
            assert len(violations) == 1
            assert "oracle crashed" in violations[0].detail
        finally:
            del INVARIANTS["always-broken"]

    def test_registry_descriptions_present(self):
        for invariant in INVARIANTS.values():
            assert invariant.description


class TestCatchesKnownBugs:
    """Re-introduce each fixed bug and prove the fuzzer finds it with a
    shrunken minimal reproduction, as the subsystem's reason to exist."""

    def test_index_ambiguity_bug_caught(self, monkeypatch, tmp_path):
        def buggy_resolve(csr, retained):
            # The pre-fix behavior: any in-range int is a dense index.
            seen, out = set(), []
            for item in retained:
                if isinstance(item, (int, np.integer)) \
                        and 0 <= int(item) < csr.n_items:
                    idx = int(item)
                else:
                    idx = csr.index_of(item)
                if idx not in seen:
                    seen.add(idx)
                    out.append(idx)
            return np.asarray(out, dtype=np.int64)

        # importlib, not a dotted string: ``repro.core.cover`` the
        # attribute is the cover *function*, shadowing the module.
        cover_mod = importlib.import_module("repro.core.cover")
        monkeypatch.setattr(cover_mod, "resolve_indices", buggy_resolve)
        report = run_fuzz(
            rounds=40, seed=0, artifact_dir=tmp_path, max_items=24
        )
        assert not report.ok
        sizes = [len(f.case.items) for f in report.failures]
        assert min(sizes) <= 8  # shrunk to a minimal repro
        assert any(f.artifact for f in report.failures)

    def test_guard_deref_bug_caught(self, monkeypatch, tmp_path):
        def buggy_finish(stop_reason, guard, result):
            # The pre-fix behavior: deref the guard whenever a stop
            # reason exists, even when no guard was configured.
            if stop_reason is not None and guard.on_trigger == "raise":
                raise SolverInterrupted(stop_reason, partial=result)
            return result

        for mod_name in ("repro.core.greedy", "repro.core.threshold"):
            monkeypatch.setattr(
                importlib.import_module(mod_name),
                "finish_interrupted", buggy_finish,
            )
        report = run_fuzz(
            rounds=60, seed=0, artifact_dir=tmp_path, max_items=24
        )
        crashes = [
            f for f in report.failures if f.invariant == "no-crash"
        ]
        assert crashes
        assert min(len(f.case.items) for f in crashes) <= 8
        assert any("on_trigger" in f.detail for f in crashes)


class TestShrinking:
    def test_shrinks_while_preserving_failure(self, monkeypatch):
        # An "oracle" that fails whenever a specific item id survives,
        # so the minimal case is exactly one item.
        @register_invariant("has-marker-item")
        def _marker(record):
            items = list(record.result.item_ids)
            return "marker survived" if "it003" in items else None

        try:
            n = 10
            case = FuzzCase(
                items=[f"it{i:03d}" for i in range(n)],
                node_weights=[1.0 / n] * n,
                edges=[],
                variant="independent",
                mode="k",
                k=1,
            )
            violations, _ = run_case(case)
            assert any(
                v.invariant == "has-marker-item" for v in violations
            )
            shrunk = shrink_case(case, "has-marker-item")
            assert len(shrunk.items) == 1
            assert shrunk.items == ["it003"]
        finally:
            del INVARIANTS["has-marker-item"]


class TestArtifacts:
    def test_write_load_replay_roundtrip(self, tmp_path):
        case = generate_case(random.Random(3), max_items=12)
        violation = InvariantViolation("result-consistency", "synthetic")
        path = write_artifact(
            tmp_path, seed=3, round_no=7, failure=violation, case=case
        )
        loaded, payload = load_artifact(path)
        assert loaded.to_dict() == case.to_dict()
        assert payload["invariant"] == "result-consistency"
        assert payload["round"] == 7
        # The fixed codebase satisfies every oracle on this case.
        assert replay_artifact(path) == []

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "case": {}}))
        with pytest.raises(ValueError, match="version"):
            load_artifact(path)


class TestRunCase:
    def test_shuffled_int_ids_run_clean(self):
        # Integer ids that are a non-identity permutation of the index
        # range: the id/index-collision regime the bugfix untangled.
        items = [4, 0, 2, 5, 1, 3]
        case = FuzzCase(
            items=items,
            node_weights=[0.1, 0.2, 0.15, 0.25, 0.05, 0.25],
            edges=[[4, 0, 0.6], [2, 5, 0.5], [1, 3, 0.4]],
            variant="independent",
            mode="k",
            k=3,
        )
        violations, checks = run_case(case)
        assert violations == []
        assert checks >= 4

    def test_crash_reported_as_violation(self):
        case = FuzzCase(
            items=[0, 1],
            node_weights=[0.5, 0.5],
            edges=[],
            variant="independent",
            mode="k",
            k=5,
            strategy="definitely-not-a-strategy",
        )
        violations, _ = run_case(case)
        assert len(violations) == 1
        assert violations[0].invariant == "no-crash"
