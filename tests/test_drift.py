"""Tests for the drifting-market simulator."""

import numpy as np
import pytest

from repro.clickstream.drift import DriftConfig, DriftingMarket
from repro.clickstream.generator import ShopperConfig
from repro.errors import ClickstreamFormatError


@pytest.fixture
def market() -> DriftingMarket:
    return DriftingMarket(
        ShopperConfig(n_items=50, behavior="independent"),
        DriftConfig(popularity_sigma=0.2, acceptance_churn=0.1),
        seed=5,
    )


class TestDriftConfig:
    def test_validation(self):
        with pytest.raises(ClickstreamFormatError):
            DriftConfig(popularity_sigma=-0.1)
        with pytest.raises(ClickstreamFormatError):
            DriftConfig(acceptance_churn=1.5)


class TestAdvance:
    def test_popularity_stays_distribution(self, market):
        for _ in range(5):
            market.advance()
            assert market.model.popularity.sum() == pytest.approx(1.0)
            assert np.all(market.model.popularity > 0)

    def test_popularity_actually_moves(self, market):
        before = market.model.popularity.copy()
        market.advance()
        assert not np.allclose(before, market.model.popularity)

    def test_acceptance_churn(self):
        market = DriftingMarket(
            ShopperConfig(n_items=100),
            DriftConfig(popularity_sigma=0.0, acceptance_churn=0.5),
            seed=1,
        )
        before = [a.copy() for a in market.model.acceptance]
        market.advance()
        changed = sum(
            1
            for old, new in zip(before, market.model.acceptance)
            if old.size and not np.allclose(old, new)
        )
        assert changed > 10  # roughly half the non-empty items

    def test_zero_drift_is_static(self):
        market = DriftingMarket(
            ShopperConfig(n_items=30),
            DriftConfig(popularity_sigma=0.0, acceptance_churn=0.0),
            seed=2,
        )
        before = market.model.popularity.copy()
        market.advance()
        np.testing.assert_array_equal(before, market.model.popularity)

    def test_period_counter(self, market):
        assert market.period == 0
        market.advance()
        market.advance()
        assert market.period == 2

    def test_structure_is_stable(self, market):
        # Drift never changes which alternatives exist, only weights.
        before = [a.copy() for a in market.model.alternatives]
        for _ in range(3):
            market.advance()
        for old, new in zip(before, market.model.alternatives):
            np.testing.assert_array_equal(old, new)


class TestGeneration:
    def test_session_ids_carry_period(self, market):
        first = market.generate(5)
        market.advance()
        second = market.generate(5)
        assert first[0].session_id.startswith("p0-")
        assert second[0].session_id.startswith("p1-")

    def test_true_graph_valid_every_period(self, market):
        for _ in range(4):
            market.true_graph().validate("independent")
            market.advance()

    def test_run_iterator(self, market):
        periods = list(market.run(3, sessions_per_period=10))
        assert [p for p, _s, _g in periods] == [0, 1, 2]
        assert market.period == 3
        for _p, stream, graph in periods:
            assert stream.n_sessions == 10
            graph.validate("independent")

    def test_deterministic_given_seed(self):
        def collect(seed):
            market = DriftingMarket(
                ShopperConfig(n_items=40), seed=seed
            )
            rows = []
            for _p, stream, _g in market.run(2, 20):
                rows.extend(s.purchase for s in stream)
            return rows

        assert collect(9) == collect(9)
        assert collect(9) != collect(10)


class TestIncrementalAcrossDrift:
    def test_incremental_solver_tracks_market(self):
        """End-to-end: re-solving each period matches fresh greedy."""
        from repro.adaptation import build_preference_graph
        from repro.core.greedy import greedy_solve
        from repro.extensions.incremental import IncrementalSolver

        market = DriftingMarket(
            ShopperConfig(n_items=60),
            DriftConfig(popularity_sigma=0.1, acceptance_churn=0.0),
            seed=11,
        )
        solver = None
        for period, stream, _truth in market.run(3, 8_000):
            graph = build_preference_graph(stream, "independent")
            fresh = greedy_solve(graph, 10, "independent")
            # A new graph object per period: rebuild the solver but the
            # previous order can still be replayed against it.
            if solver is None:
                solver = IncrementalSolver(graph, 10, "independent")
                result = solver.solve()
            else:
                solver.graph = graph
                result = solver.resolve()
            assert result.retained == fresh.retained
