"""Tests for repro.core.variants."""

import pytest

from repro.core.variants import INDEPENDENT, NORMALIZED, Variant


class TestCoerce:
    def test_passthrough(self):
        assert Variant.coerce(Variant.INDEPENDENT) is Variant.INDEPENDENT
        assert Variant.coerce(Variant.NORMALIZED) is Variant.NORMALIZED

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("independent", Variant.INDEPENDENT),
            ("Independent", Variant.INDEPENDENT),
            ("IPC", Variant.INDEPENDENT),
            ("ipc_k", Variant.INDEPENDENT),
            ("normalized", Variant.NORMALIZED),
            ("normalised", Variant.NORMALIZED),
            ("NPC", Variant.NORMALIZED),
            ("npc_k", Variant.NORMALIZED),
            ("  normalized  ", Variant.NORMALIZED),
        ],
    )
    def test_string_aliases(self, name, expected):
        assert Variant.coerce(name) is expected

    @pytest.mark.parametrize("bad", ["", "indep", "both", 3, None])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError, match="unknown"):
            Variant.coerce(bad)


class TestMatchProbability:
    def test_empty_edges_never_match(self):
        assert INDEPENDENT.match_probability([]) == 0.0
        assert NORMALIZED.match_probability([]) == 0.0

    def test_single_edge_equal(self):
        # With one alternative both semantics coincide.
        assert INDEPENDENT.match_probability([0.4]) == pytest.approx(0.4)
        assert NORMALIZED.match_probability([0.4]) == pytest.approx(0.4)

    def test_independent_product_rule(self):
        got = INDEPENDENT.match_probability([0.5, 0.5])
        assert got == pytest.approx(0.75)

    def test_normalized_sum_rule(self):
        got = NORMALIZED.match_probability([0.3, 0.2])
        assert got == pytest.approx(0.5)

    def test_normalized_caps_at_one(self):
        assert NORMALIZED.match_probability([0.8, 0.7]) == 1.0

    def test_independent_dominates_normalized_is_false(self):
        # For the same weights, the sum (normalized) always >= the
        # independent noisy-or: 1 - prod(1-w) <= sum(w).
        weights = [0.2, 0.3, 0.25]
        indep = INDEPENDENT.match_probability(weights)
        norm = NORMALIZED.match_probability(weights)
        assert indep <= norm

    def test_probability_one_edge_forces_match(self):
        assert INDEPENDENT.match_probability([1.0, 0.1]) == pytest.approx(1.0)


class TestShortName:
    def test_names(self):
        assert INDEPENDENT.short_name == "IPC"
        assert NORMALIZED.short_name == "NPC"
