"""Tests for the category-quota (partition matroid) extension."""

import pytest

from repro.core.cover import cover
from repro.core.csr import as_csr
from repro.core.greedy import greedy_solve
from repro.errors import SolverError, UnknownItemError
from repro.extensions.quotas import category_counts, quota_greedy_solve


def make_categories(graph, n_categories=5):
    csr = as_csr(graph)
    return {
        item: f"cat{i % n_categories}" for i, item in enumerate(csr.items)
    }


class TestQuotaGreedy:
    def test_quotas_respected(self, medium_graph, variant):
        categories = make_categories(medium_graph)
        quotas = {f"cat{i}": 4 for i in range(5)}
        result = quota_greedy_solve(
            medium_graph, variant, categories, quotas
        )
        counts = category_counts(result, categories)
        for category, count in counts.items():
            assert count <= quotas[category]
        assert result.k == 20  # all quotas exactly fill

    def test_loose_quotas_match_unconstrained(self, medium_graph, variant):
        categories = make_categories(medium_graph)
        quotas = {f"cat{i}": 10_000 for i in range(5)}
        constrained = quota_greedy_solve(
            medium_graph, variant, categories, quotas, k=25
        )
        free = greedy_solve(medium_graph, 25, variant)
        assert constrained.retained == free.retained
        assert constrained.cover == pytest.approx(free.cover, abs=1e-9)

    def test_cover_consistent(self, medium_graph, variant):
        categories = make_categories(medium_graph)
        quotas = {f"cat{i}": 3 for i in range(5)}
        result = quota_greedy_solve(
            medium_graph, variant, categories, quotas
        )
        assert result.cover == pytest.approx(
            cover(medium_graph, result.retained, variant), abs=1e-9
        )

    def test_binding_quota_changes_selection(self, figure1, variant):
        categories = {"A": "tv", "B": "tv", "C": "tv", "D": "audio",
                      "E": "audio"}
        # Only one TV allowed: greedy keeps B, then must take audio.
        result = quota_greedy_solve(
            figure1, variant, categories, {"tv": 1, "audio": 1}, k=2
        )
        assert result.retained[0] == "B"
        assert categories[result.retained[1]] == "audio"
        assert result.retained[1] == "D"

    def test_unconstrained_category(self, figure1, variant):
        categories = {"A": "tv", "B": "tv", "C": "tv", "D": "audio",
                      "E": "audio"}
        # TVs capped at 0, audio unconstrained.
        result = quota_greedy_solve(
            figure1, variant, categories, {"tv": 0}, k=2
        )
        assert all(categories[i] == "audio" for i in result.retained)

    def test_default_k_from_quotas(self, figure1, variant):
        categories = {item: "all" for item in figure1.items()}
        result = quota_greedy_solve(
            figure1, variant, categories, {"all": 3}
        )
        assert result.k == 3

    def test_quota_zero_everywhere(self, figure1, variant):
        categories = {item: "all" for item in figure1.items()}
        result = quota_greedy_solve(
            figure1, variant, categories, {"all": 0}
        )
        assert result.retained == []
        assert result.cover == 0.0

    def test_missing_category_rejected(self, figure1):
        with pytest.raises(UnknownItemError):
            quota_greedy_solve(
                figure1, "normalized", {"A": "x"}, {"x": 1}
            )

    def test_negative_quota_rejected(self, figure1):
        categories = {item: "all" for item in figure1.items()}
        with pytest.raises(SolverError, match="quota"):
            quota_greedy_solve(
                figure1, "normalized", categories, {"all": -1}
            )

    def test_half_approximation_on_small_instances(self, variant):
        # Matroid greedy >= 1/2 OPT; check against brute force over
        # feasible subsets.
        import itertools

        from repro.workloads.graphs import small_dense_graph

        graph = small_dense_graph(8, variant=variant, seed=3)
        csr = as_csr(graph)
        categories = {item: f"c{i % 2}" for i, item in enumerate(csr.items)}
        quotas = {"c0": 2, "c1": 1}
        result = quota_greedy_solve(graph, variant, categories, quotas)

        best = 0.0
        items = list(csr.items)
        for subset in itertools.combinations(items, 3):
            counts = {}
            for item in subset:
                counts[categories[item]] = counts.get(
                    categories[item], 0
                ) + 1
            if all(counts.get(c, 0) <= q for c, q in quotas.items()):
                best = max(best, cover(graph, subset, variant))
        assert result.cover >= 0.5 * best - 1e-9

    def test_category_counts_helper(self, figure1, variant):
        categories = {"A": "x", "B": "x", "C": "y", "D": "y", "E": "y"}
        result = quota_greedy_solve(
            figure1, variant, categories, {"x": 1, "y": 1}, k=2
        )
        counts = category_counts(result, categories)
        assert sum(counts.values()) == 2
        assert all(v == 1 for v in counts.values())
