"""Tests for GreedyState: the Gain / AddNode procedures (Algorithms 2-5)."""

import numpy as np
import pytest

from repro.core.cover import cover, coverage_vector
from repro.core.csr import as_csr
from repro.core.gain import GreedyState
from repro.errors import SolverError


class TestGainMatchesCoverDelta:
    """gain(v) must equal C(S + v) - C(S) computed from scratch."""

    def test_on_dense_graph(self, small_graph, variant):
        csr = as_csr(small_graph)
        state = GreedyState(csr, variant)
        rng = np.random.default_rng(0)
        retained = []
        for _ in range(6):
            candidates = [v for v in range(csr.n_items) if v not in retained]
            v = int(rng.choice(candidates))
            before = cover(csr, retained, variant)
            after = cover(csr, retained + [v], variant)
            assert state.gain(v) == pytest.approx(after - before, abs=1e-12)
            state.add_node(v)
            retained.append(v)

    def test_gain_of_retained_is_zero(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        state.add_node(0)
        assert state.gain(0) == 0.0


class TestAddNode:
    def test_cover_tracks_exact(self, small_graph, variant):
        csr = as_csr(small_graph)
        state = GreedyState(csr, variant)
        for v in range(8):
            state.add_node(v)
            exact = cover(csr, list(range(v + 1)), variant)
            assert state.cover == pytest.approx(exact, abs=1e-12)

    def test_coverage_array_tracks_exact(self, small_graph, variant):
        csr = as_csr(small_graph)
        state = GreedyState(csr, variant)
        retained = [2, 7, 11]
        for v in retained:
            state.add_node(v)
        expected = coverage_vector(csr, retained, variant)
        np.testing.assert_allclose(state.coverage, expected, atol=1e-12)

    def test_deficit_invariant(self, small_graph, variant):
        csr = as_csr(small_graph)
        state = GreedyState(csr, variant)
        for v in (1, 4, 9):
            state.add_node(v)
        np.testing.assert_allclose(
            state.deficit, csr.node_weight - state.coverage, atol=1e-12
        )

    def test_add_returns_realized_gain(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        predicted = state.gain(5)
        realized = state.add_node(5)
        assert realized == pytest.approx(predicted, abs=1e-12)

    def test_double_add_rejected(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        state.add_node(3)
        with pytest.raises(SolverError, match="already retained"):
            state.add_node(3)

    def test_order_recorded(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        for v in (5, 1, 8):
            state.add_node(v)
        assert list(state.retained_indices()) == [5, 1, 8]


class TestGainsAll:
    def test_matches_scalar_gain(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        state = GreedyState(csr, variant)
        for v in (0, 17, 333):
            state.add_node(v)
        gains = state.gains_all()
        for v in (1, 2, 100, 250, 499):
            assert gains[v] == pytest.approx(state.gain(v), abs=1e-9)

    def test_retained_entries_zero(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        state.add_node(2)
        gains = state.gains_all()
        assert gains[2] == 0.0

    def test_candidates_subset(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        subset = np.array([0, 5, 9])
        np.testing.assert_allclose(
            state.gains_all(subset), state.gains_all()[subset]
        )

    def test_graph_without_edges(self, variant):
        from repro.core.csr import CSRGraph

        csr = CSRGraph.from_arrays(
            np.array([0.6, 0.4]),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        state = GreedyState(csr, variant)
        np.testing.assert_allclose(state.gains_all(), [0.6, 0.4])

    def test_trailing_isolated_nodes(self, variant):
        # Nodes after the last edge destination exercise the reduceat
        # clamping path.
        from repro.core.csr import CSRGraph

        csr = CSRGraph.from_arrays(
            np.array([0.25, 0.25, 0.25, 0.25]),
            np.array([1]),
            np.array([0]),
            np.array([0.5]),
        )
        state = GreedyState(csr, variant)
        gains = state.gains_all()
        assert gains[0] == pytest.approx(0.25 + 0.25 * 0.5)
        assert gains[2] == pytest.approx(0.25)
        assert gains[3] == pytest.approx(0.25)


class TestGainsRange:
    def test_matches_full(self, medium_graph, variant):
        csr = as_csr(medium_graph)
        state = GreedyState(csr, variant)
        for v in (3, 77):
            state.add_node(v)
        full = state.gains_all()
        for lo, hi in [(0, 100), (100, 350), (350, 500), (499, 500)]:
            np.testing.assert_allclose(
                state.gains_range(lo, hi), full[lo:hi], atol=1e-12
            )

    def test_empty_range(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        assert state.gains_range(5, 5).size == 0

    def test_empty_range_after_partial_solve(self, small_graph, variant):
        state = GreedyState(as_csr(small_graph), variant)
        for v in (0, 3):
            state.add_node(v)
        for lo in (0, 7, state.csr.n_items):
            block = state.gains_range(lo, lo)
            assert block.shape == (0,)

    def test_isolated_nodes_block(self, variant):
        # Nodes 2..4 have no in-edges: their gain is exactly their own
        # deficit, and the block evaluation must not read neighboring
        # edge slices.
        from repro.core.csr import CSRGraph

        csr = CSRGraph.from_arrays(
            np.array([0.3, 0.3, 0.2, 0.1, 0.1]),
            np.array([1]),
            np.array([0]),
            np.array([0.5]),
        )
        state = GreedyState(csr, variant)
        np.testing.assert_allclose(state.gains_range(2, 5), [0.2, 0.1, 0.1])
        state.add_node(3)
        np.testing.assert_allclose(state.gains_range(2, 5), [0.2, 0.0, 0.1])

    def test_matches_full_after_partial_solve(self, medium_graph, variant):
        from repro.core.greedy import greedy_solve

        csr = as_csr(medium_graph)
        result = greedy_solve(csr, k=12, variant=variant, strategy="naive")
        state = GreedyState(csr, variant)
        for v in result.retained_indices.tolist():
            state.add_node(v)
        full = state.gains_all()
        n = csr.n_items
        for lo, hi in [(0, n), (0, 1), (n - 1, n), (123, 457)]:
            np.testing.assert_allclose(
                state.gains_range(lo, hi), full[lo:hi], atol=1e-12
            )
