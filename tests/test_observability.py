"""Tests for the observability subsystem (metrics + solver trace)."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.greedy import greedy_solve
from repro.observability import (
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    SolverTrace,
    Telemetry,
    TraceEvent,
    coerce_tracer,
)


class TestMetricsRegistry:
    def test_counter_incr(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        registry.incr("b", 2.5)
        data = registry.to_dict()
        assert data["counters"] == {"a": 5, "b": 2.5}

    def test_timer_records_and_means(self):
        registry = MetricsRegistry()
        registry.record_time("stage", 0.5)
        registry.record_time("stage", 1.5)
        timer = registry.timer("stage")
        assert timer.count == 2
        assert timer.total_s == pytest.approx(2.0)
        assert timer.mean_s == pytest.approx(1.0)

    def test_time_contextmanager(self):
        registry = MetricsRegistry()
        with registry.time("sleepy"):
            time.sleep(0.01)
        timer = registry.timer("sleepy")
        assert timer.count == 1
        assert timer.total_s >= 0.01

    def test_histogram_streaming_stats(self):
        registry = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            registry.observe("width", value)
        hist = registry.histogram("width")
        assert hist.count == 3
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_merge_combines_registries(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.incr("calls", 2)
        right.incr("calls", 3)
        right.record_time("stage", 1.0)
        right.observe("width", 7.0)
        left.merge(right)
        data = left.to_dict()
        assert data["counters"]["calls"] == 5
        assert data["timers"]["stage"]["count"] == 1
        assert data["histograms"]["width"]["max"] == 7.0

    def test_bool_and_json_roundtrip(self):
        registry = MetricsRegistry()
        assert not registry
        registry.incr("x")
        assert registry
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["x"] == 1

    def test_summary_mentions_names(self):
        registry = MetricsRegistry()
        registry.incr("solver.iterations", 12)
        registry.observe("lazy.reevaluations_per_iteration", 3)
        text = registry.summary()
        assert "solver.iterations" in text
        assert "lazy.reevaluations_per_iteration" in text


class TestSolverTrace:
    def test_event_ordering_seq_and_time(self):
        trace = SolverTrace()
        for index in range(5):
            trace.event("tick", index=index)
        seqs = [event.seq for event in trace.events]
        assert seqs == [0, 1, 2, 3, 4]
        times = [event.t for event in trace.events]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_iteration_counts_and_merges_stash(self):
        trace = SolverTrace()
        trace.stash(updated_gains=9)
        trace.iteration(0, item="A", gain=0.5)
        trace.iteration(1, item="B", gain=0.25)
        events = trace.events_of("iteration")
        assert len(events) == 2
        assert events[0].data["updated_gains"] == 9
        assert "updated_gains" not in events[1].data
        assert trace.metrics.counter("solver.iterations").value == 2

    def test_span_times_and_emits_event(self):
        trace = SolverTrace()
        with trace.span("stage", detail="x"):
            time.sleep(0.005)
        spans = trace.events_of("span")
        assert len(spans) == 1
        assert spans[0].data["name"] == "stage"
        assert spans[0].data["duration_s"] >= 0.005
        assert trace.metrics.timer("span.stage").count == 1

    def test_max_events_safety_valve(self):
        trace = SolverTrace(max_events=2)
        for index in range(5):
            trace.event("tick", index=index)
        assert len(trace) == 2
        assert trace.metrics.counter("solver.trace_dropped").value == 3

    def test_jsonl_export(self, tmp_path):
        trace = SolverTrace()
        trace.event("solve.start", solver="greedy")
        trace.iteration(0, item="A")
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "solve.start"
        assert first["seq"] == 0
        second = json.loads(lines[1])
        assert second["kind"] == "iteration"
        assert second["item"] == "A"
        assert trace.to_jsonl() == path.read_text().rstrip("\n")

    def test_to_dict_flattens_payload(self):
        event = TraceEvent(seq=3, t=0.5, kind="iteration", data={"gain": 1.0})
        assert event.to_dict() == {
            "seq": 3, "t": 0.5, "kind": "iteration", "gain": 1.0,
        }


class TestNullTracer:
    def test_disabled_flag_and_noops(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.event("x", a=1)
        tracer.iteration(0, item="A")
        tracer.incr("n")
        tracer.observe("h", 1.0)
        tracer.stash(b=2)
        with tracer.span("stage"):
            pass
        assert tracer.metrics is None

    def test_coerce(self):
        assert coerce_tracer(None) is NULL_TRACER
        trace = SolverTrace()
        assert coerce_tracer(trace) is trace

    def test_disabled_tracer_records_zero_events(self, figure1):
        """A solve without a tracer must leave NULL_TRACER untouched."""
        greedy_solve(figure1, k=3, variant="normalized")
        assert not hasattr(NULL_TRACER, "events")
        assert NULL_TRACER.metrics is None
        assert NULL_TRACER.enabled is False


class TestSolverIntegration:
    def test_one_iteration_event_per_pick(self, figure1, variant):
        for strategy in ("naive", "lazy", "accelerated"):
            trace = SolverTrace()
            result = greedy_solve(
                figure1, k=3, variant=variant, strategy=strategy,
                tracer=trace,
            )
            iterations = trace.events_of("iteration")
            assert len(iterations) == len(result.retained) == 3
            assert [e.data["iteration"] for e in iterations] == [0, 1, 2]
            picked = [e.data["item"] for e in iterations]
            assert picked == list(result.retained)

    def test_iteration_events_carry_gain_and_cover(self, figure1):
        trace = SolverTrace()
        result = greedy_solve(
            figure1, k=3, variant="independent", strategy="lazy",
            tracer=trace,
        )
        events = trace.events_of("iteration")
        covers = [e.data["cover"] for e in events]
        assert covers == sorted(covers)  # monotone under greedy
        assert covers[-1] == pytest.approx(result.cover)
        gains = [e.data["gain"] for e in events]
        assert gains == sorted(gains, reverse=True)  # submodularity

    def test_start_and_end_events_bracket_iterations(self, figure1):
        trace = SolverTrace()
        greedy_solve(figure1, k=2, variant="independent", tracer=trace)
        kinds = [event.kind for event in trace.events]
        assert kinds[0] == "solve.start"
        assert kinds[-1] == "solve.end"
        assert kinds[1:-1] == ["iteration"] * 2

    def test_lazy_counters(self, small_graph, variant):
        trace = SolverTrace()
        greedy_solve(
            small_graph, k=5, variant=variant, strategy="lazy", tracer=trace
        )
        counters = trace.metrics.to_dict()["counters"]
        assert counters["solver.iterations"] == 5
        assert counters["lazy.heap_pops"] >= 5

    def test_accelerated_update_width_recorded(self, small_graph, variant):
        trace = SolverTrace()
        greedy_solve(
            small_graph, k=5, variant=variant, strategy="accelerated",
            tracer=trace,
        )
        hist = trace.metrics.histogram("accelerated.update_width")
        assert hist.count == 5
        assert hist.min >= 1
        for event in trace.events_of("iteration"):
            assert event.data["updated_gains"] >= 1


class TestTelemetry:
    def test_events_property(self):
        trace = SolverTrace()
        trace.event("x")
        telemetry = Telemetry(metrics=trace.metrics, trace=trace)
        assert len(telemetry.events) == 1
        bare = Telemetry(metrics=MetricsRegistry())
        assert bare.events == []

    def test_summary_falls_back_to_metrics(self):
        metrics = MetricsRegistry()
        metrics.incr("facade.calls")
        telemetry = Telemetry(metrics=metrics)
        assert "facade.calls" in telemetry.summary()
