"""Tests for the assortment serving layer (repro.serving).

Covers the acceptance surface of the serving subsystem: snapshot cache
hit/miss and TTL expiry (via an injectable clock, no sleeping), atomic
hot-swap under concurrent queries, micro-batching window correctness,
the differential guarantee that served answers equal offline
``cover``-module recomputation exactly, and chaos-mode degradation —
an injected refresh crash plus a corrupted delta feed must not drop
in-flight queries, which keep being answered from the last good
snapshot.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro.clickstream.drift import GraphDelta, graph_delta, random_delta
from repro.core.cover import cover, item_coverage
from repro.errors import (
    ClickstreamFormatError,
    ServingError,
    SolverError,
    UnknownItemError,
    VariantError,
)
from repro.extensions.incremental import IncrementalSolver
from repro.observability import MetricsRegistry
from repro.resilience.faults import FaultInjector, InjectedCrash, inject_faults
from repro.serving import (
    AssortmentService,
    ServingFrontend,
    SolutionSnapshot,
    SolutionStore,
)
from repro.workloads.graphs import random_preference_graph


def make_service(variant="independent", n=120, k=12, seed=3, **kwargs):
    graph = random_preference_graph(n, variant=variant, seed=seed)
    return AssortmentService(graph, variant=variant, k=k, **kwargs)


# ----------------------------------------------------------------------
# SolutionStore: LRU, TTL, counters
# ----------------------------------------------------------------------
class TestSolutionStore:
    def _snapshot(self, service, key=None):
        snapshot = service.ensure()
        if key is None:
            return snapshot
        import dataclasses

        return dataclasses.replace(snapshot, key=key)

    def test_cache_hit_and_miss_counters(self):
        service = make_service()
        store = service.store
        service.ensure()  # cold solve
        assert store.misses == 1 and store.hits == 0
        service.ensure()
        assert store.hits == 1 and store.misses == 1
        assert store.get("no-such-key") is None
        assert store.misses == 2
        assert 0 < store.hit_ratio < 1

    def test_cache_hit_returns_identical_snapshot_object(self):
        service = make_service()
        first = service.ensure()
        assert service.ensure() is first

    def test_lru_eviction_beyond_capacity(self):
        service = make_service()
        base = service.ensure()
        store = SolutionStore(capacity=2)
        import dataclasses

        for name in ("a", "b", "c"):
            store.put(dataclasses.replace(base, key=name))
        assert len(store) == 2
        assert store.evictions == 1
        assert store.keys() == ["b", "c"]  # "a" was least recently used

    def test_lru_order_updated_by_get(self):
        service = make_service()
        base = service.ensure()
        store = SolutionStore(capacity=2)
        import dataclasses

        store.put(dataclasses.replace(base, key="a"))
        store.put(dataclasses.replace(base, key="b"))
        assert store.get("a") is not None  # refresh "a"
        store.put(dataclasses.replace(base, key="c"))
        assert store.keys() == ["a", "c"]  # "b" evicted, not "a"

    def test_ttl_expiry_with_injectable_clock(self):
        clock = {"now": 0.0}
        store = SolutionStore(capacity=4, ttl_s=10.0,
                              clock=lambda: clock["now"])
        service = make_service(store=store)
        snapshot = service.ensure()
        clock["now"] = 5.0
        assert store.get(snapshot.key) is snapshot  # still fresh
        clock["now"] = 15.1
        assert store.get(snapshot.key) is None      # expired
        assert store.expirations == 1
        # ensure() transparently re-solves after expiry.
        again = service.ensure()
        assert again is not snapshot
        assert again.key == snapshot.key

    def test_ttl_expiry_races_concurrent_get_put(self):
        """TTL expiry must stay consistent under concurrent get/put.

        Writers keep re-inserting snapshots stamped at the current
        clock, readers keep probing, and a third thread jumps the clock
        past the TTL repeatedly.  However the three interleave, no call
        may raise, every hit must return a snapshot for the requested
        key, the hit/miss tally must account for every probe exactly
        once, and entries stamped before a clock jump must actually
        expire (the expiration counter moves).
        """
        import dataclasses
        import time as _time

        service = make_service(n=40, k=6)
        base = service.ensure()
        clock_lock = threading.Lock()
        clock = {"now": 0.0}

        def now() -> float:
            with clock_lock:
                return clock["now"]

        store = SolutionStore(capacity=4, ttl_s=1.0, clock=now)
        keys = ["race-a", "race-b"]
        stop = threading.Event()
        errors: list = []
        probes = [0] * 4

        def writer(key: str) -> None:
            try:
                while not stop.is_set():
                    store.put(dataclasses.replace(
                        base, key=key, created_at=now()))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader(slot: int, key: str) -> None:
            try:
                while not stop.is_set():
                    snapshot = store.get(key)
                    probes[slot] += 1
                    if snapshot is not None and snapshot.key != key:
                        errors.append(
                            AssertionError(f"{key} hit -> {snapshot.key}"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def advancer() -> None:
            # Each jump exceeds the TTL, so everything written before
            # it is expired the moment a reader next probes it.
            for _ in range(60):
                with clock_lock:
                    clock["now"] += 1.5
                _time.sleep(0.002)
            stop.set()

        threads = [threading.Thread(target=writer, args=(k,)) for k in keys]
        threads += [
            threading.Thread(target=reader, args=(slot, keys[slot % 2]))
            for slot in range(4)
        ]
        threads.append(threading.Thread(target=advancer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        # Every probe is tallied exactly once, as a hit or a miss.
        assert store.hits + store.misses == sum(probes)
        assert store.expirations > 0
        assert len(store) <= store.capacity
        # After the dust settles a fresh put is immediately servable.
        final = store.put(dataclasses.replace(
            base, key="race-final", created_at=now()))
        assert store.get("race-final") is final

    def test_store_validation(self):
        with pytest.raises(ValueError):
            SolutionStore(capacity=0)
        with pytest.raises(ValueError):
            SolutionStore(ttl_s=0.0)

    def test_stats_payload(self):
        service = make_service()
        service.ensure()
        stats = service.store.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 0 and stats["misses"] == 1


# ----------------------------------------------------------------------
# AssortmentService: queries, differential guarantee, deltas
# ----------------------------------------------------------------------
class TestAssortmentService:
    def test_requires_exactly_one_stopping_rule(self):
        graph = random_preference_graph(30, seed=0)
        with pytest.raises(ServingError):
            AssortmentService(graph, variant="independent")
        with pytest.raises(ServingError):
            AssortmentService(graph, variant="independent", k=3,
                              threshold=0.5)

    def test_served_answers_match_offline_recomputation_exactly(self, variant):
        service = make_service(variant=variant, n=150, k=15, seed=11)
        snapshot = service.ensure()
        offline = item_coverage(
            snapshot.graph, snapshot.result.retained, variant
        )
        assert np.array_equal(snapshot.conditional, offline)
        for index in (0, 7, 42, 149):
            item = snapshot.graph.items[index]
            assert service.covered_probability(item) == float(offline[index])

    def test_query_reports_membership_and_probability(self):
        service = make_service()
        snapshot = service.ensure()
        retained = set(snapshot.result.retained)
        rows = service.query(snapshot.graph.items[:20])
        assert len(rows) == 20
        for row in rows:
            assert row["retained"] == (row["item"] in retained)
            if row["retained"]:
                assert row["covered_probability"] == 1.0

    def test_top_alternatives_sorted_retained_only(self):
        service = make_service(n=200, k=30, seed=5)
        snapshot = service.ensure()
        retained = set(snapshot.result.retained)
        checked = 0
        for item in snapshot.graph.items:
            alternatives = service.top_alternatives(item, limit=4)
            if item in retained:
                assert alternatives == []
                continue
            weights = [w for _, w in alternatives]
            assert weights == sorted(weights, reverse=True)
            assert all(alt in retained for alt, _ in alternatives)
            checked += len(alternatives)
        assert checked > 0  # the instance produced real alternatives

    def test_unknown_item_raises_typed_error(self):
        service = make_service()
        service.ensure()
        with pytest.raises(UnknownItemError):
            service.covered_probability("no-such-item")
        with pytest.raises(UnknownItemError):
            service.top_alternatives("no-such-item")

    def test_threshold_mode_serves_from_facade_solve(self):
        graph = random_preference_graph(80, seed=9)
        service = AssortmentService(
            graph, variant="independent", threshold=0.6
        )
        snapshot = service.ensure()
        assert snapshot.result.cover >= 0.6
        offline = item_coverage(
            snapshot.graph, snapshot.result.retained, "independent"
        )
        assert np.array_equal(snapshot.conditional, offline)

    def test_apply_delta_refreshes_and_reuses_prefix(self):
        service = make_service(n=150, k=20, seed=21)
        before = service.ensure()
        delta = random_delta(service.graph, sigma=0.05, seed=1, sequence=1)
        after = service.apply_delta(delta)
        assert after is not before
        assert after.key != before.key
        assert service.active is after
        # The incremental solver reused part of the stable prefix.
        assert service._solver.last_reused_prefix >= 0
        offline = item_coverage(
            after.graph, after.result.retained, "independent"
        )
        assert np.array_equal(after.conditional, offline)

    def test_stale_delta_is_dropped(self):
        service = make_service()
        service.ensure()
        first = service.apply_delta(
            random_delta(service.graph, sigma=0.1, seed=2, sequence=5)
        )
        again = service.apply_delta(
            random_delta(service.graph, sigma=0.1, seed=3, sequence=5)
        )
        assert again is first  # same sequence: ignored
        assert service.metrics.counter("serving.deltas_stale").value == 1

    def test_hot_swap_atomicity_under_concurrent_queries(self):
        """Concurrent readers must always see an internally consistent
        snapshot: every batch answer must match one of the snapshots
        that existed during the run, never a mixture."""
        service = make_service(n=100, k=10, seed=8)
        service.ensure()
        items = list(service.graph.items())
        probe = items[:32]
        valid_answers = []  # tuple views of every snapshot ever active

        def snapshot_answer(snapshot):
            return tuple(
                float(x) for x in snapshot.covered_probability_many(probe)
            )

        valid_answers.append(snapshot_answer(service.active))
        errors = []
        seen = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    seen.append(
                        tuple(
                            float(x) for x in
                            service.covered_probability_many(probe)
                        )
                    )
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for sequence in range(1, 6):
            delta = random_delta(
                service.graph, sigma=0.1, seed=sequence, sequence=sequence
            )
            swapped = service.apply_delta(delta)
            valid_answers.append(snapshot_answer(swapped))
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert seen, "readers never completed a query"
        valid = set(valid_answers)
        torn = [answer for answer in seen if answer not in valid]
        assert not torn, f"{len(torn)} torn reads of {len(seen)}"

    def test_shared_store_deduplicates_identical_questions(self):
        graph = random_preference_graph(60, seed=4)
        store = SolutionStore()
        first = AssortmentService(
            graph, variant="independent", k=6, store=store
        )
        second = AssortmentService(
            graph, variant="independent", k=6, store=store
        )
        a = first.ensure()
        b = second.ensure()
        assert a is b  # identical context digest -> one snapshot


# ----------------------------------------------------------------------
# ServingFrontend: batching, admission control, degradation
# ----------------------------------------------------------------------
class TestServingFrontend:
    def run(self, coro):
        return asyncio.run(coro)

    def test_batching_window_coalesces_concurrent_requests(self):
        service = make_service(n=100, k=10)
        service.ensure()
        items = list(service.graph.items())[:40]

        async def main():
            async with ServingFrontend(
                service, batch_window_s=0.05, max_batch=64
            ) as frontend:
                answers = await asyncio.gather(
                    *(frontend.covered_probability(item) for item in items)
                )
            return answers

        answers = self.run(main())
        snapshot = service.active
        expected = snapshot.covered_probability_many(items)
        assert answers == [float(x) for x in expected]
        batches = service.metrics.histogram("serving.batch_size")
        # 40 concurrent requests within a 50ms window must land in far
        # fewer vectorized calls than 40 (typically 1-2 batches).
        assert batches.count < len(items)
        assert batches.max > 1

    def test_max_batch_bounds_each_vectorized_call(self):
        service = make_service(n=80, k=8)
        service.ensure()
        items = list(service.graph.items())[:30]

        async def main():
            async with ServingFrontend(
                service, batch_window_s=0.05, max_batch=10
            ) as frontend:
                await asyncio.gather(
                    *(frontend.covered_probability(item) for item in items)
                )

        self.run(main())
        assert service.metrics.histogram("serving.batch_size").max <= 10

    def test_batch_answers_match_point_reads(self):
        service = make_service(n=90, k=9, seed=13)
        snapshot = service.ensure()
        items = list(service.graph.items())

        async def main():
            async with ServingFrontend(service) as frontend:
                return await frontend.query(items[:25])

        rows = self.run(main())
        for row in rows:
            assert row["covered_probability"] == \
                snapshot.covered_probability(row["item"])

    def test_admission_control_sheds_load_beyond_max_pending(self):
        service = make_service(n=60, k=6)
        service.ensure()
        items = list(service.graph.items())

        async def main():
            frontend = ServingFrontend(
                service, batch_window_s=0.2, max_pending=5
            )
            # Not started: the drain loop never empties the queue, so
            # submissions beyond max_pending must be rejected.
            frontend._queue = asyncio.Queue()
            futures = [
                frontend._submit(items[i % len(items)]) for i in range(5)
            ]
            with pytest.raises(ServingError):
                frontend._submit(items[0])
            for future in futures:
                future.cancel()
            return service.metrics.counter("serving.rejected").value

        assert self.run(main()) == 1

    def test_unknown_item_does_not_poison_batch(self):
        service = make_service(n=50, k=5)
        service.ensure()
        good = list(service.graph.items())[:3]

        async def main():
            async with ServingFrontend(
                service, batch_window_s=0.05
            ) as frontend:
                futures = [
                    frontend.covered_probability(item) for item in good
                ]
                bad = frontend.covered_probability("no-such-item")
                results = await asyncio.gather(
                    *futures, bad, return_exceptions=True
                )
            return results

        results = self.run(main())
        assert all(
            isinstance(value, float) for value in results[:3]
        ), "good items must still be answered"
        assert isinstance(results[3], UnknownItemError)

    def test_serve_forever_consumes_delta_feed_then_stops(self):
        service = make_service(n=80, k=8, seed=17)

        async def main():
            deltas = [
                random_delta(service.graph, sigma=0.05, seed=s, sequence=s)
                for s in (1, 2, 3)
            ]

            async def feed():
                for delta in deltas:
                    yield delta.to_json()

            frontend = ServingFrontend(service, batch_window_s=0.001)
            await frontend.serve_forever(feed())
            return service.stats()

        stats = self.run(main())
        assert stats["sequence"] == 3
        assert service.metrics.counter("serving.deltas_applied").value == 3


# ----------------------------------------------------------------------
# Chaos: injected crash + corrupted feed must degrade, not break
# ----------------------------------------------------------------------
class TestServingDegradation:
    def test_refresh_crash_keeps_last_good_snapshot(self):
        service = make_service(n=90, k=9, seed=23)
        good = service.ensure()
        injector = FaultInjector(kill_round=1)
        with inject_faults(injector):
            with pytest.raises(InjectedCrash):
                service.apply_delta(
                    random_delta(
                        service.graph, sigma=0.1, seed=1, sequence=1
                    )
                )
        assert injector.fired.get("kill_round") == 1
        assert service.refresh_failures == 1
        # Queries keep working off the last good snapshot.
        assert service.active is good
        item = good.graph.items[0]
        assert service.covered_probability(item) == \
            good.covered_probability(item)

    def test_frontend_survives_crash_and_corrupt_feed(self):
        """The acceptance scenario: a FaultInjector spec combining a
        refresh crash with delta-feed corruption; in-flight queries are
        all answered from the last good snapshot."""
        service = make_service(n=100, k=10, seed=29)
        good = service.ensure()
        items = list(service.graph.items())
        injector = FaultInjector(
            seed=7, kill_round=1, malformed_record=1.0
        )

        async def main():
            async with ServingFrontend(
                service, batch_window_s=0.005
            ) as frontend:
                in_flight = [
                    asyncio.ensure_future(
                        frontend.covered_probability(items[i % len(items)])
                    )
                    for i in range(24)
                ]
                # Corrupted line: dropped by the parser, counted.
                corrupt = random_delta(
                    service.graph, sigma=0.1, seed=2, sequence=1
                ).to_json()
                parsed = frontend._parse_delta(corrupt)
                assert parsed is None
                # Structurally valid delta whose refresh crashes.
                crashing = GraphDelta.from_json(
                    random_delta(
                        service.graph, sigma=0.1, seed=3, sequence=2
                    ).to_json()
                )
                applied = await frontend._apply_delta(crashing)
                assert applied is False
                return await asyncio.gather(*in_flight)

        with inject_faults(injector):
            answers = asyncio.run(main())
        assert len(answers) == 24
        assert all(isinstance(value, float) for value in answers)
        # Degraded to the last good snapshot, observably.
        assert service.active is good
        assert service.refresh_failures == 1
        assert service.metrics.counter("serving.deltas_corrupt").value == 1
        assert injector.fired.get("malformed_record", 0) >= 1
        assert injector.fired.get("kill_round") == 1
        expected = good.covered_probability_many(
            [items[i % len(items)] for i in range(24)]
        )
        assert answers == [float(x) for x in expected]


# ----------------------------------------------------------------------
# GraphDelta: diffing, application, wire form
# ----------------------------------------------------------------------
class TestGraphDelta:
    def test_graph_delta_roundtrip(self, line_graph):
        target = line_graph.copy()
        target.add_item("A", 0.4)
        target.add_item("B", 0.4)
        target.add_edge("C", "A", 0.7)
        target.remove_edge("B", "C")
        delta = graph_delta(line_graph, target, sequence=3)
        assert not delta.is_empty
        assert delta.n_changes == 4
        rebuilt = delta.apply_to(line_graph.copy())
        assert graph_delta(rebuilt, target).is_empty

    def test_json_wire_form_roundtrip(self, line_graph):
        delta = GraphDelta(
            node_weights={"A": 0.6},
            edge_updates=(("A", "B", 0.25),),
            edge_removals=(("B", "C"),),
            sequence=9,
        )
        parsed = GraphDelta.from_json(delta.to_json())
        assert parsed.node_weights == {"A": 0.6}
        assert parsed.edge_updates == (("A", "B", 0.25),)
        assert parsed.edge_removals == (("B", "C"),)
        assert parsed.sequence == 9

    def test_corrupt_payloads_raise_typed_error(self):
        with pytest.raises(ClickstreamFormatError):
            GraphDelta.from_json("{not json")
        with pytest.raises(ClickstreamFormatError):
            GraphDelta.from_json('["a", "list"]')
        with pytest.raises(ClickstreamFormatError):
            GraphDelta.from_dict({"node_weights": [["A", "not-a-number"]]})

    def test_random_delta_preserves_validity(self, variant):
        graph = random_preference_graph(
            60, variant=variant, seed=31
        ).to_preference_graph()
        delta = random_delta(graph, sigma=0.3, edge_churn=0.2, seed=1)
        delta.apply_to(graph)
        graph.validate(variant)  # must not raise


# ----------------------------------------------------------------------
# Satellites: SolveResult contract, variant coercion, validated flag
# ----------------------------------------------------------------------
class TestApiSatellites:
    def test_solve_result_stable_contract(self, small_graph, variant):
        result = repro.solve(small_graph, variant=variant, k=3)
        assert result.selected == list(result.retained)
        result.selected.append("mutated")  # a copy, not the field
        assert result.selected == list(result.retained)
        assert result.context_digest is not None
        assert result.telemetry is not None
        assert result.coverage.shape == (small_graph.n_items,)
        assert "context_digest" in result.to_dict()

    def test_context_digest_identifies_the_question(self):
        graph = random_preference_graph(40, variant="normalized", seed=1)
        a = repro.solve(graph, variant="independent", k=3)
        b = repro.solve(graph, variant="independent", k=3)
        c = repro.solve(graph, variant="independent", k=4)
        d = repro.solve(graph, variant="normalized", k=3)
        assert a.context_digest == b.context_digest
        assert a.context_digest != c.context_digest
        assert a.context_digest != d.context_digest

    def test_plain_string_variants_accepted_everywhere(self, small_graph):
        for alias in ("independent", "ipc", "IPC_k"):
            assert repro.Variant.coerce(alias) is repro.Variant.INDEPENDENT
        for alias in ("normalized", "normalised", "npc"):
            assert repro.Variant.coerce(alias) is repro.Variant.NORMALIZED
        result = repro.solve(small_graph, variant="ipc", k=2)
        assert result.variant is repro.Variant.INDEPENDENT

    def test_variant_error_is_solver_and_value_error(self):
        with pytest.raises(VariantError):
            repro.Variant.coerce("bogus")
        assert issubclass(VariantError, SolverError)
        assert issubclass(VariantError, ValueError)
        assert issubclass(ServingError, SolverError)

    def test_facade_validates_by_default_and_skips_when_told(self):
        graph = repro.PreferenceGraph.from_weights(
            {"A": 0.9, "B": 0.9}, edges=[("A", "B", 0.5)]
        )  # weights sum to 1.8: invalid
        with pytest.raises(repro.GraphValidationError):
            repro.solve(graph, variant="independent", k=1)
        # validated=True skips the sweep: the solve itself succeeds.
        result = repro.solve(
            graph, variant="independent", k=1, validated=True
        )
        assert len(result.selected) == 1

    def test_validation_is_memoized_per_graph_object(self, variant):
        graph = random_preference_graph(50, variant=variant, seed=2)
        assert not graph.is_validated(variant)
        graph.validate(variant)
        assert graph.is_validated(variant)

    def test_mutation_invalidates_memoized_validation(self, line_graph):
        line_graph.validate("independent")
        assert line_graph.is_validated("independent")
        line_graph.add_item("D", 0.0)
        assert not line_graph.is_validated("independent")

    def test_incremental_solver_validate_flag(self):
        graph = random_preference_graph(
            40, seed=6
        ).to_preference_graph()
        graph.add_item(list(graph.items())[0], 5.0)  # break the invariant
        with pytest.raises(repro.GraphValidationError):
            IncrementalSolver(graph, k=4, variant="independent").solve()
        result = IncrementalSolver(
            graph, k=4, variant="independent", validate=False
        ).solve()
        assert result.context_digest is not None

    def test_histogram_percentiles(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.observe("latency", float(value))
        histogram = metrics.histogram("latency")
        assert histogram.p50 == 50.0
        assert histogram.p99 == 99.0
        assert histogram.percentile(100.0) == 100.0
        payload = metrics.to_dict()["histograms"]["latency"]
        assert payload["p50"] == 50.0
        assert payload["p99"] == 99.0
        assert metrics.histogram("empty").p50 is None

    def test_histogram_reservoir_is_bounded(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("wide")
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._reservoir) == histogram.RESERVOIR_SIZE
        # The window tracks the most recent values.
        assert histogram.p50 > 9_000


# ----------------------------------------------------------------------
# Offline differential harness plumbing
# ----------------------------------------------------------------------
class TestServingDifferentialHarness:
    def test_smoke_sweep_is_clean(self):
        from repro.evaluation.serving_check import run_serving_differential

        report = run_serving_differential(
            instances=3, max_items=60, seed=0
        )
        assert report.ok, report.summary()
        assert report.checks > 0
        assert "OK" in report.summary()

    def test_failures_are_reported(self):
        from repro.evaluation.serving_check import (
            ServingFailure,
            ServingReport,
        )

        report = ServingReport(instances=1, variants=("independent",))
        report.failures.append(
            ServingFailure(
                variant="independent", instance="x", check="c", detail="d"
            )
        )
        assert not report.ok
        assert "FAILURE" in report.summary()
