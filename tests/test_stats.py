"""Tests for graph statistics."""

import numpy as np
import pytest

from repro.core.graph import PreferenceGraph
from repro.core.stats import GraphStats, gini_coefficient, graph_stats
from repro.workloads.graphs import random_preference_graph


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.ones(100)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_approaches_one(self):
        values = np.zeros(1000)
        values[0] = 1.0
        assert gini_coefficient(values) > 0.99

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_known_value(self):
        # Two values {0, 1}: Gini = 0.5.
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_scale_invariant(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 50)
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(values * 42.0)
        )


class TestGraphStats:
    def test_figure1(self, figure1):
        stats = graph_stats(figure1)
        assert stats.n_items == 5
        assert stats.n_edges == 4
        assert stats.max_in_degree == 2  # B receives edges from A and C
        assert stats.mean_out_degree == pytest.approx(4 / 5)
        # D has no outgoing edges and W=0.06: uncoverable share includes
        # B? B has an edge to C. Nodes without alternatives: B? no.
        # Out-degrees: A->1, B->1, C->1, E->1, D->0.
        assert stats.uncoverable_without_self == pytest.approx(0.06)
        assert stats.isolated_items == 0

    def test_isolated_items_counted(self):
        g = PreferenceGraph.from_weights(
            {"a": 0.5, "b": 0.3, "loner": 0.2},
            edges=[("a", "b", 0.5)],
        )
        stats = graph_stats(g)
        assert stats.isolated_items == 1
        assert stats.uncoverable_without_self == pytest.approx(0.2 + 0.3)

    def test_zipf_graph_is_skewed(self):
        graph = random_preference_graph(2000, seed=1)
        stats = graph_stats(graph)
        assert stats.weight_gini > 0.3
        assert stats.top_10pct_weight_share > 0.2
        assert stats.mean_out_degree > 1.0

    def test_to_dict_json_safe(self, figure1):
        import json

        payload = json.dumps(graph_stats(figure1).to_dict())
        assert "n_items" in payload

    def test_frozen(self, figure1):
        stats = graph_stats(figure1)
        with pytest.raises(AttributeError):
            stats.n_items = 0


class TestCliGraphStats:
    def test_stats_graph_command(self, figure1, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.graphio import write_graph_json

        path = tmp_path / "g.json"
        write_graph_json(figure1, path)
        assert main(["stats", "--graph", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_items"] == 5
        assert payload["n_edges"] == 4
