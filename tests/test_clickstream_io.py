"""Tests for clickstream serialization (JSONL and YooChoose CSV)."""

import pytest

from repro.clickstream.io import (
    read_jsonl,
    read_yoochoose,
    write_jsonl,
    write_yoochoose,
)
from repro.clickstream.models import Clickstream, Session
from repro.errors import ClickstreamFormatError


@pytest.fixture
def stream() -> Clickstream:
    return Clickstream(
        [
            Session("s1", ("a", "b"), purchase="c"),
            Session("s2", ("a",)),
            Session("s3", (), purchase="a"),
        ]
    )


class TestJsonl:
    def test_roundtrip(self, stream, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_jsonl(stream, path)
        loaded = read_jsonl(path)
        assert loaded.n_sessions == 3
        assert loaded[0].clicks == ("a", "b")
        assert loaded[0].purchase == "c"
        assert loaded[1].purchase is None

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            '{"session_id": "s1", "clicks": ["a"]}\n\n'
            '{"session_id": "s2", "clicks": []}\n'
        )
        assert read_jsonl(path).n_sessions == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"session_id": "s1", "clicks": []}\nnot json\n')
        with pytest.raises(ClickstreamFormatError, match=":2"):
            read_jsonl(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"clicks": []}\n')
        with pytest.raises(ClickstreamFormatError, match="session_id"):
            read_jsonl(path)

    def test_string_clicks_rejected(self, tmp_path):
        # tuple("abc") would silently explode into per-character items.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"session_id": "s1", "clicks": "abc"}\n')
        with pytest.raises(ClickstreamFormatError, match=r":1.*list"):
            read_jsonl(path)

    def test_non_scalar_click_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"session_id": "s1", "clicks": [["a", "b"]]}\n'
        )
        with pytest.raises(ClickstreamFormatError, match=r":1.*scalar"):
            read_jsonl(path)

    def test_non_scalar_purchase_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"session_id": "s1", "clicks": [], "purchase": {"id": 1}}\n'
        )
        with pytest.raises(ClickstreamFormatError, match="purchase"):
            read_jsonl(path)

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('["not", "an", "object"]\n')
        with pytest.raises(ClickstreamFormatError, match="object"):
            read_jsonl(path)


class TestLenientJsonl:
    GOOD = '{"session_id": "s%d", "clicks": ["a"], "purchase": "a"}\n'

    def _mixed_file(self, tmp_path, n_good=20, bad_lines=()):
        path = tmp_path / "mixed.jsonl"
        lines = [self.GOOD % i for i in range(n_good)]
        for position, bad in bad_lines:
            lines.insert(position, bad)
        path.write_text("".join(lines))
        return path

    def test_skip_drops_bad_records(self, tmp_path):
        path = self._mixed_file(
            tmp_path, bad_lines=[(3, "not json\n")]
        )
        loaded = read_jsonl(path, on_error="skip")
        assert loaded.n_sessions == 20
        assert loaded.quarantine.quarantined == 1
        assert loaded.quarantine.reasons == {"invalid-json": 1}

    def test_quarantine_keeps_samples(self, tmp_path):
        path = self._mixed_file(
            tmp_path,
            bad_lines=[
                (0, "not json\n"),
                (5, '{"session_id": "x", "clicks": "oops"}\n'),
            ],
        )
        loaded = read_jsonl(path, on_error="quarantine", error_budget=0.5)
        report = loaded.quarantine
        assert report.quarantined == 2
        assert report.reasons == {
            "invalid-json": 1, "clicks-not-a-list": 1,
        }
        assert len(report.samples) == 2
        assert any(":1:" in sample for sample in report.samples)
        assert "quarantined 2/22" in report.summary()

    def test_quarantine_caps_samples_and_counts_suppressed(self, tmp_path):
        path = self._mixed_file(
            tmp_path, bad_lines=[(i, "not json\n") for i in range(8)]
        )
        loaded = read_jsonl(path, on_error="quarantine", error_budget=0.5)
        report = loaded.quarantine
        assert report.quarantined == 8
        assert len(report.samples) == 5  # retention cap
        assert report.suppressed == 3
        assert "... 3 more suppressed" in report.summary()
        assert report.to_dict()["suppressed"] == 3

    def test_skip_mode_retains_no_samples(self, tmp_path):
        path = self._mixed_file(
            tmp_path, bad_lines=[(i, "not json\n") for i in range(8)]
        )
        loaded = read_jsonl(path, on_error="skip", error_budget=0.5)
        report = loaded.quarantine
        assert report.quarantined == 8
        assert report.samples == []
        assert report.suppressed == 0

    def test_error_budget_aborts(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        lines = [self.GOOD % i for i in range(10)]
        lines += ["garbage\n"] * 30
        path.write_text("".join(lines))
        with pytest.raises(ClickstreamFormatError, match="error budget"):
            read_jsonl(path, on_error="skip", error_budget=0.05)

    def test_error_budget_final_check(self, tmp_path):
        # Too few records for the mid-stream check: the final check
        # still fires.
        path = tmp_path / "tiny.jsonl"
        path.write_text(self.GOOD % 0 + "garbage\n")
        with pytest.raises(ClickstreamFormatError, match="error budget"):
            read_jsonl(path, on_error="skip", error_budget=0.1)

    def test_unlimited_budget(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(self.GOOD % 0 + "garbage\n" * 50)
        loaded = read_jsonl(path, on_error="skip", error_budget=None)
        assert loaded.n_sessions == 1
        assert loaded.quarantine.quarantined == 50

    def test_strict_mode_has_no_report(self, tmp_path):
        path = self._mixed_file(tmp_path)
        loaded = read_jsonl(path)
        assert loaded.quarantine is None

    def test_unknown_policy_rejected(self, tmp_path):
        path = self._mixed_file(tmp_path)
        with pytest.raises(ClickstreamFormatError, match="on_error"):
            read_jsonl(path, on_error="ignore")

    def test_report_to_dict(self, tmp_path):
        path = self._mixed_file(tmp_path, bad_lines=[(2, "junk\n")])
        loaded = read_jsonl(path, on_error="quarantine")
        payload = loaded.quarantine.to_dict()
        assert payload["quarantined"] == 1
        assert payload["total"] == 21
        assert payload["reasons"] == {"invalid-json": 1}


class TestYoochoose:
    def test_roundtrip(self, stream, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        write_yoochoose(stream, clicks, buys)
        loaded = read_yoochoose(clicks, buys)
        by_id = {s.session_id: s for s in loaded}
        # Session ids become strings in CSV.
        assert by_id["s1"].clicks == ("a", "b")
        assert by_id["s1"].purchase == "c"
        assert by_id["s2"].purchase is None
        assert by_id["s3"].purchase == "a"  # purchase without click rows

    def test_yoochoose_native_format(self, tmp_path):
        # The real dataset's column layout.
        clicks = tmp_path / "yoochoose-clicks.dat"
        buys = tmp_path / "yoochoose-buys.dat"
        clicks.write_text(
            "1,2014-04-07T10:51:09.277Z,214536502,0\n"
            "1,2014-04-07T10:54:09.868Z,214536500,0\n"
            "2,2014-04-07T13:56:37.614Z,214662742,0\n"
        )
        buys.write_text(
            "1,2014-04-07T10:55:00.000Z,214536500,12462,1\n"
        )
        loaded = read_yoochoose(clicks, buys)
        assert loaded.n_sessions == 2
        assert loaded.n_purchases == 1
        first = [s for s in loaded if s.session_id == "1"][0]
        assert first.purchase == "214536500"
        assert first.alternatives() == ("214536502",)

    def test_multiple_buys_keep_first(self, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t,100,0\n")
        buys.write_text("1,t,100,0,1\n1,t,200,0,1\n")
        loaded = read_yoochoose(clicks, buys)
        assert loaded[0].purchase == "100"

    def test_max_sessions_truncates(self, stream, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        write_yoochoose(stream, clicks, buys)
        loaded = read_yoochoose(clicks, buys, max_sessions=1)
        assert loaded.n_sessions == 1

    def test_short_rows_rejected(self, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t\n")
        buys.write_text("")
        with pytest.raises(ClickstreamFormatError, match="columns"):
            read_yoochoose(clicks, buys)

    def test_truncated_buys_rows_rejected(self, tmp_path):
        # The buys format has 5 columns; a 3-4 column row is a
        # truncated export, not a purchase.
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t,100,0\n")
        buys.write_text("1,t,100\n")
        with pytest.raises(ClickstreamFormatError, match="5 columns"):
            read_yoochoose(clicks, buys)

    def test_truncated_buys_quarantined_not_purchased(self, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t,100,0\n2,t,200,0\n")
        buys.write_text("1,t,100,0\n2,t,200,0,1\n")  # first is 4-col
        loaded = read_yoochoose(
            clicks, buys, on_error="quarantine", error_budget=0.5
        )
        by_id = {s.session_id: s for s in loaded}
        assert by_id["1"].purchase is None  # truncated row: no purchase
        assert by_id["2"].purchase == "200"
        report = loaded.quarantine
        assert report.reasons == {"buys-short-row": 1}
        assert any("buys" in sample for sample in report.samples)

    def test_lenient_short_clicks_row(self, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t\n2,t,200,0\n")
        buys.write_text("")
        loaded = read_yoochoose(
            clicks, buys, on_error="skip", error_budget=0.9
        )
        assert loaded.n_sessions == 1
        assert loaded.quarantine.reasons == {"clicks-short-row": 1}
