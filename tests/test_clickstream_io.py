"""Tests for clickstream serialization (JSONL and YooChoose CSV)."""

import pytest

from repro.clickstream.io import (
    read_jsonl,
    read_yoochoose,
    write_jsonl,
    write_yoochoose,
)
from repro.clickstream.models import Clickstream, Session
from repro.errors import ClickstreamFormatError


@pytest.fixture
def stream() -> Clickstream:
    return Clickstream(
        [
            Session("s1", ("a", "b"), purchase="c"),
            Session("s2", ("a",)),
            Session("s3", (), purchase="a"),
        ]
    )


class TestJsonl:
    def test_roundtrip(self, stream, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_jsonl(stream, path)
        loaded = read_jsonl(path)
        assert loaded.n_sessions == 3
        assert loaded[0].clicks == ("a", "b")
        assert loaded[0].purchase == "c"
        assert loaded[1].purchase is None

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            '{"session_id": "s1", "clicks": ["a"]}\n\n'
            '{"session_id": "s2", "clicks": []}\n'
        )
        assert read_jsonl(path).n_sessions == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"session_id": "s1", "clicks": []}\nnot json\n')
        with pytest.raises(ClickstreamFormatError, match=":2"):
            read_jsonl(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"clicks": []}\n')
        with pytest.raises(ClickstreamFormatError, match="session_id"):
            read_jsonl(path)


class TestYoochoose:
    def test_roundtrip(self, stream, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        write_yoochoose(stream, clicks, buys)
        loaded = read_yoochoose(clicks, buys)
        by_id = {s.session_id: s for s in loaded}
        # Session ids become strings in CSV.
        assert by_id["s1"].clicks == ("a", "b")
        assert by_id["s1"].purchase == "c"
        assert by_id["s2"].purchase is None
        assert by_id["s3"].purchase == "a"  # purchase without click rows

    def test_yoochoose_native_format(self, tmp_path):
        # The real dataset's column layout.
        clicks = tmp_path / "yoochoose-clicks.dat"
        buys = tmp_path / "yoochoose-buys.dat"
        clicks.write_text(
            "1,2014-04-07T10:51:09.277Z,214536502,0\n"
            "1,2014-04-07T10:54:09.868Z,214536500,0\n"
            "2,2014-04-07T13:56:37.614Z,214662742,0\n"
        )
        buys.write_text(
            "1,2014-04-07T10:55:00.000Z,214536500,12462,1\n"
        )
        loaded = read_yoochoose(clicks, buys)
        assert loaded.n_sessions == 2
        assert loaded.n_purchases == 1
        first = [s for s in loaded if s.session_id == "1"][0]
        assert first.purchase == "214536500"
        assert first.alternatives() == ("214536502",)

    def test_multiple_buys_keep_first(self, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t,100,0\n")
        buys.write_text("1,t,100,0,1\n1,t,200,0,1\n")
        loaded = read_yoochoose(clicks, buys)
        assert loaded[0].purchase == "100"

    def test_max_sessions_truncates(self, stream, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        write_yoochoose(stream, clicks, buys)
        loaded = read_yoochoose(clicks, buys, max_sessions=1)
        assert loaded.n_sessions == 1

    def test_short_rows_rejected(self, tmp_path):
        clicks = tmp_path / "clicks.dat"
        buys = tmp_path / "buys.dat"
        clicks.write_text("1,t\n")
        buys.write_text("")
        with pytest.raises(ClickstreamFormatError, match="columns"):
            read_yoochoose(clicks, buys)
