"""Tests for the §5.2 corrective-factor and Laplace shrinkage knobs."""

import pytest

from repro.adaptation.engine import (
    AdaptationConfig,
    DataAdaptationEngine,
)
from repro.adaptation.online import OnlineAdaptationEngine
from repro.clickstream.models import Clickstream, Session
from repro.core.variants import Variant
from repro.errors import AdaptationError


def stream(*sessions) -> Clickstream:
    return Clickstream(
        Session(f"s{i}", clicks, purchase)
        for i, (clicks, purchase) in enumerate(sessions)
    )


@pytest.fixture
def raw_stream() -> Clickstream:
    # a purchased 4 times (b clicked twice), z purchased once (b clicked).
    return stream(
        (("b",), "a"), (("b",), "a"), ((), "a"), ((), "a"),
        (("b",), "z"), ((), "b"),
    )


class TestCorrectionFactor:
    def test_scales_all_edges(self, raw_stream):
        plain = DataAdaptationEngine().build_graph(raw_stream)
        corrected = DataAdaptationEngine(
            AdaptationConfig(correction_factor=0.5)
        ).build_graph(raw_stream)
        for source, target, weight in plain.edges():
            assert corrected.edge_weight(source, target) == pytest.approx(
                weight * 0.5
            )

    def test_node_weights_untouched(self, raw_stream):
        corrected = DataAdaptationEngine(
            AdaptationConfig(correction_factor=0.3)
        ).build_graph(raw_stream)
        assert corrected.node_weight("a") == pytest.approx(4 / 6)

    def test_validation(self):
        with pytest.raises(AdaptationError, match="correction_factor"):
            AdaptationConfig(correction_factor=0.0)
        with pytest.raises(AdaptationError, match="correction_factor"):
            AdaptationConfig(correction_factor=1.5)

    def test_preserves_normalized_invariant(self, raw_stream):
        graph = DataAdaptationEngine(
            AdaptationConfig(
                variant=Variant.NORMALIZED, correction_factor=0.8
            )
        ).build_graph(raw_stream)
        graph.validate("normalized")


class TestLaplaceShrinkage:
    def test_shrinks_low_support_more(self, raw_stream):
        graph = DataAdaptationEngine(
            AdaptationConfig(laplace_alpha=2.0)
        ).build_graph(raw_stream)
        # a: 2 clicks / (4 + 2) = 1/3 (raw was 1/2).
        assert graph.edge_weight("a", "b") == pytest.approx(1 / 3)
        # z: 1 click / (1 + 2) = 1/3 (raw was 1.0) — shrunk much harder.
        assert graph.edge_weight("z", "b") == pytest.approx(1 / 3)

    def test_zero_alpha_is_raw(self, raw_stream):
        graph = DataAdaptationEngine(
            AdaptationConfig(laplace_alpha=0.0)
        ).build_graph(raw_stream)
        assert graph.edge_weight("z", "b") == pytest.approx(1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(AdaptationError, match="laplace_alpha"):
            AdaptationConfig(laplace_alpha=-1.0)

    def test_large_alpha_can_prune_via_min_weight(self, raw_stream):
        graph = DataAdaptationEngine(
            AdaptationConfig(laplace_alpha=50.0, min_edge_weight=0.03)
        ).build_graph(raw_stream)
        assert not graph.has_edge("z", "b")  # 1/51 < 0.03


class TestOnlineParity:
    @pytest.mark.parametrize("config", [
        AdaptationConfig(correction_factor=0.6),
        AdaptationConfig(laplace_alpha=1.5),
        AdaptationConfig(correction_factor=0.7, laplace_alpha=2.0,
                         variant=Variant.NORMALIZED),
    ])
    def test_online_matches_batch_with_smoothing(self, raw_stream, config):
        batch = DataAdaptationEngine(config).build_graph(raw_stream)
        online = OnlineAdaptationEngine(config)
        online.observe_all(raw_stream)
        snapshot = online.snapshot()
        assert sorted(snapshot.edges()) == sorted(batch.edges())
